"""Record the sharded-serving speedup baseline (``BENCH_serving.json``).

Measures :meth:`STMaker.summarize_many` serial versus the
:mod:`repro.serving` worker pool at 2 / 4 / 8 workers on the smoke corpus,
in two regimes:

* **latency-bound** (the headline) — a deterministic
  :class:`~repro.resilience.FaultSpec` injects a fixed per-item stage
  latency (no error), modelling the I/O waits of a real serving stack
  (feature stores, map-matching RPCs, storage reads).  Sleeps release the
  GIL, so pool workers overlap them and the speedup reflects the
  scheduling quality of the shard pool itself.
* **cpu-bound** — the bare pipeline, recorded transparently for both
  executors.  Thread pools cannot beat ~1.0× here (pure Python + NumPy
  under the GIL); the process executor (``executor="process"``, serving
  from a city-model artifact) is the one that can, and its speedup is
  recorded against the >1.5×-at-4-workers target — *advisory-skipped*
  when the container has a single CPU, where no process count helps and
  the honest expectation is ≤1.0× (pool + artifact overhead included,
  so the regression gate still watches the overhead).

A third block records the **request front-end's hot query caches**
(:mod:`repro.server.cache`): the same batch served serially through an
uncached model, a cold-cache view (caches cleared before every round, so
population cost is included), and a warm-cache view (popular-route and
anchor-history lookups answered from the LRUs).  Caching is algorithmic
— it avoids recomputing Dijkstra runs and feature-map reads — so unlike
process parallelism it can pay off even on a 1-CPU container; how much
depends on how often the corpus repeats landmark hops, which is recorded
(hit rates included) rather than assumed.

All regimes run the *same* interleaved harness rounds, and every
configuration produces byte-identical summaries (checked each run — a
benchmark that quietly changed results would be measuring a different
program).  Results go to ``BENCH_serving.json`` at the repo root and the
run is appended to ``BENCH_history.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/record_serving_baseline.py [--rounds 3]
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import harness
from repro.resilience import FaultInjector, FaultSpec
from repro.simulate import CityScenario, ScenarioConfig

WORKER_COUNTS = (2, 4, 8)

#: Injected per-item latency (seconds) at the extract stage boundary for
#: the latency-bound regime.  Large against the per-item CPU cost of the
#: smoke corpus, so the measured ratio isolates sleep overlap.
STAGE_LATENCY_S = 0.2


def build_corpus(training: int, trips: int):
    scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=training))
    batch = [
        scenario.simulate_trip(depart_time=(8.0 + 0.25 * i) * 3600.0).raw
        for i in range(trips)
    ]
    return scenario.stmaker, batch


def texts(result) -> list[str]:
    return [s.text for s in result.summaries]


def run(rounds: int, training: int, trips: int) -> dict:
    stmaker, batch = build_corpus(training, trips)
    expected = texts(stmaker.summarize_many(batch, k=2))

    def serial() -> int:
        result = stmaker.summarize_many(batch, k=2)
        assert texts(result) == expected, "serial run changed results"
        return len(batch)

    def pooled(workers: int):
        def fn() -> int:
            result = stmaker.summarize_many(batch, k=2, workers=workers)
            assert texts(result) == expected, f"workers={workers} changed results"
            return len(batch)

        return fn

    def with_latency(fn):
        def wrapped() -> int:
            injector = FaultInjector(
                [FaultSpec(stage="extract", error=None,
                           latency_s=STAGE_LATENCY_S, times=None)]
            )
            with injector.installed(stmaker):
                return fn()

        return wrapped

    def process_pooled(workers: int):
        def fn() -> int:
            result = stmaker.summarize_many(
                batch, k=2, workers=workers, executor="process"
            )
            assert texts(result) == expected, (
                f"process workers={workers} changed results"
            )
            return len(batch)

        return fn

    # Hot-cache regime: serial serving through a cached view of the same
    # model (repro.server).  Cold clears the caches before every round
    # (so the measured cost includes populating them); warm is pre-warmed
    # once and then served from hits.  Byte identity is asserted per
    # round, same as every other configuration.
    from repro.server import HotQueryCaches, cached_view

    cold_caches = HotQueryCaches.for_model(stmaker)
    cold_view = cached_view(stmaker, cold_caches)

    def cached_cold() -> int:
        cold_caches.routes.clear()
        cold_caches.anchors.clear()
        result = cold_view.summarize_many(batch, k=2)
        assert texts(result) == expected, "cold cached view changed results"
        return len(batch)

    warm_caches = HotQueryCaches.for_model(stmaker)
    warm_view = cached_view(stmaker, warm_caches)
    warm_view.summarize_many(batch, k=2)  # populate before measuring

    def cached_warm() -> int:
        result = warm_view.summarize_many(batch, k=2)
        assert texts(result) == expected, "warm cached view changed results"
        return len(batch)

    configs = {"serving.latency.serial_ms": with_latency(serial)}
    for workers in WORKER_COUNTS:
        configs[f"serving.latency.workers{workers}_ms"] = with_latency(
            pooled(workers)
        )
    configs["serving.cpu.serial_ms"] = serial
    for workers in WORKER_COUNTS:
        configs[f"serving.cpu.workers{workers}_ms"] = pooled(workers)
    for workers in WORKER_COUNTS:
        configs[f"serving.cpu.process.workers{workers}_ms"] = process_pooled(
            workers
        )
    configs["server.cache.cold_ms"] = cached_cold
    configs["server.cache.warm_ms"] = cached_warm

    stats = harness.measure_interleaved(configs, repeats=rounds, warmup=1)
    harness.append_history(stats, mode="serving_baseline")

    def section(prefix: str) -> dict:
        base = stats[f"{prefix}.serial_ms"]
        out = {
            "serial_per_item_ms": {
                "median": base.median_ms, "rounds": list(base.samples_ms),
            },
            "workers": {},
            "speedup": {},
        }
        for workers in WORKER_COUNTS:
            pool = stats[f"{prefix}.workers{workers}_ms"]
            out["workers"][str(workers)] = {
                "median": pool.median_ms, "rounds": list(pool.samples_ms),
            }
            out["speedup"][str(workers)] = (
                base.median_ms / pool.median_ms if pool.median_ms else 0.0
            )
        return out

    latency = section("serving.latency")
    cpu = section("serving.cpu")

    # Process-executor regime: same serial base, workers served by
    # ProcessPoolExecutor from the auto-published city-model artifact.
    base = stats["serving.cpu.serial_ms"]
    process = {
        "serial_per_item_ms": {
            "median": base.median_ms, "rounds": list(base.samples_ms),
        },
        "workers": {},
        "speedup": {},
    }
    for workers in WORKER_COUNTS:
        pool = stats[f"serving.cpu.process.workers{workers}_ms"]
        process["workers"][str(workers)] = {
            "median": pool.median_ms, "rounds": list(pool.samples_ms),
        }
        process["speedup"][str(workers)] = (
            base.median_ms / pool.median_ms if pool.median_ms else 0.0
        )
    cpu_count = os.cpu_count() or 1
    multicore = cpu_count > 1
    process["multicore_criterion"] = {
        "target_speedup_at_4_workers": 1.5,
        "measured_speedup_at_4_workers": process["speedup"]["4"],
        "cpu_count": cpu_count,
        "met": multicore and process["speedup"]["4"] > 1.5,
        "advisory_skipped": not multicore,
        "note": (
            "met on multi-core runners only; on a 1-CPU container process "
            "parallelism cannot exceed 1.0x and the criterion is "
            "advisory-skipped (recorded honestly, not faked)"
            if not multicore
            else "evaluated on a multi-core runner"
        ),
    }

    # Hot-cache regime: cold (population included) and warm cached views
    # against the same uncached serial base as the other cpu sections.
    cold = stats["server.cache.cold_ms"]
    warm = stats["server.cache.warm_ms"]
    hot_cache = {
        "uncached_per_item_ms": {
            "median": base.median_ms, "rounds": list(base.samples_ms),
        },
        "cold_per_item_ms": {
            "median": cold.median_ms, "rounds": list(cold.samples_ms),
        },
        "warm_per_item_ms": {
            "median": warm.median_ms, "rounds": list(warm.samples_ms),
        },
        "speedup_warm_vs_uncached": (
            base.median_ms / warm.median_ms if warm.median_ms else 0.0
        ),
        "speedup_warm_vs_cold": (
            cold.median_ms / warm.median_ms if warm.median_ms else 0.0
        ),
        "warm_cache_stats": warm_caches.stats(),
        "note": (
            "popular-route + anchor-history lookups served from the "
            "repro.server LRU caches; byte identity asserted every round. "
            "The gain is algorithmic (skipped Dijkstra runs and feature-map "
            "reads), so it is honest on a 1-CPU container too — its size "
            "depends on how much of the per-item cost those lookups are "
            "and how often the corpus repeats landmark hops (see "
            "warm_cache_stats hit rates), not on core count."
        ),
    }

    return {
        "benchmark": (
            "summarize_many serial vs sharded worker pool "
            "(mean ms per trajectory, smoke corpus)"
        ),
        "rounds": rounds,
        "n_trips": trips,
        "stage_latency_s": STAGE_LATENCY_S,
        "cpu_count": os.cpu_count(),
        "latency_bound": latency,
        "cpu_bound": cpu,
        "cpu_bound_process": process,
        "hot_cache": hot_cache,
        "speedup_at_4_workers": latency["speedup"]["4"],
        "process_speedup_at_4_workers": process["speedup"]["4"],
        "note": (
            "latency_bound injects a deterministic 200 ms stage latency per "
            "item (FaultSpec, no error) so the pool's sleep overlap — the "
            "serving-stack shape the thread pool exists for — is measurable; "
            "cpu_bound is the bare GIL-bound pipeline where ~1.0x is the "
            "honest thread-pool ceiling; cpu_bound_process serves the same "
            "batch with executor='process' from the city-model artifact on "
            f"a {os.cpu_count()}-CPU container — see its multicore_criterion "
            "block for the >1.5x-at-4-workers acceptance status."
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--training", type=int, default=40)
    parser.add_argument("--trips", type=int, default=8)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
    )
    args = parser.parse_args()
    payload = run(args.rounds, args.training, args.trips)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {args.out}")
    speedup = payload["speedup_at_4_workers"]
    print(f"latency-bound speedup at 4 workers: {speedup:.2f}x")
    criterion = payload["cpu_bound_process"]["multicore_criterion"]
    status = (
        "advisory-skipped (1 CPU)" if criterion["advisory_skipped"]
        else ("met" if criterion["met"] else "NOT met")
    )
    print(
        f"process cpu-bound speedup at 4 workers: "
        f"{payload['process_speedup_at_4_workers']:.2f}x "
        f"(target >1.5x on multi-core: {status})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
