"""Ablation — calibration makes summaries sampling-invariant (Sec. II-A).

The paper motivates anchor-based calibration with Fig. 2: the same route
recorded under different sampling strategies must yield the same summary.
This ablation resamples each trip at several rates and measures the
Jaccard agreement of the symbolic-trajectory landmark sets against the
densely sampled original.
"""

import numpy as np

from repro.exceptions import CalibrationError
from repro.trajectory import downsample_by_time, take_every

N_TRIPS = 20


def _run(scenario):
    rng = np.random.default_rng(41)
    trips = scenario.simulate_trips(N_TRIPS, depart_time=11 * 3600.0, rng=rng)
    calibrator = scenario.stmaker.calibrator
    agreements: dict[str, list[float]] = {"t=15s": [], "t=25s": [], "every 4th": []}
    for trip in trips:
        try:
            base = set(calibrator.calibrate(trip.raw).landmark_ids())
        except CalibrationError:
            continue
        variants = {
            "t=15s": downsample_by_time(trip.raw, 15.0),
            "t=25s": downsample_by_time(trip.raw, 25.0),
            "every 4th": take_every(trip.raw, 4),
        }
        for label, variant in variants.items():
            try:
                other = set(calibrator.calibrate(variant).landmark_ids())
            except CalibrationError:
                agreements[label].append(0.0)
                continue
            agreements[label].append(len(base & other) / len(base | other))
    return {label: float(np.mean(vals)) for label, vals in agreements.items()}


def test_ablation_sampling_invariance(benchmark, scenario):
    result = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)
    print("\n=== Ablation — symbolic-trajectory agreement across sampling ===")
    for label, agreement in result.items():
        print(f"resampled {label:10s}: Jaccard {agreement:.3f}")

    # Calibration must keep the landmark skeleton stable across sampling.
    assert all(agreement > 0.75 for agreement in result.values())
