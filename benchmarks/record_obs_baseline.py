"""Record the observability no-op overhead baseline (``BENCH_obs.json``).

Runs the Fig. 12 efficiency workload over the same scenario and trips —
once fully disabled, once with tracing + metrics enabled, once with the
full always-on production stack (tracing + metrics + events + flight
recorder), and once with that stack plus a subscribed SLO engine — and
writes the paired per-trajectory means plus the relative overheads to
``BENCH_obs.json`` at the repository root.  The acceptance bars: the
disabled ("no-op") path costs < 5 % relative to a build without any
instrumentation, and both the flight-recorder stack and the SLO stack
cost < 5 % relative to the disabled path, so they are safe to leave on
in serving.

Timing goes through :mod:`harness` (``measure_interleaved``): the two
configurations run round-robin and the median of several rounds is
reported, so scheduler noise does not masquerade as instrumentation
overhead.  The run is also appended to ``BENCH_history.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/record_obs_baseline.py [--rounds 5]
"""

from __future__ import annotations

import argparse
import json
import statistics
from pathlib import Path

import harness
from repro import obs
from repro.experiments import run_efficiency
from repro.simulate import CityScenario, ScenarioConfig


def _mean_ms(result) -> float:
    """Overall mean per-trajectory summarization cost of one run."""
    times = [ms for _, ms in result.by_size]
    return float(statistics.fmean(times))


def run(rounds: int, n_trips: int) -> dict:
    scenario = CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=400, training_days=5)
    )

    def disabled() -> float:
        obs.disable_tracing()
        obs.disable_metrics()
        return _mean_ms(run_efficiency(scenario, n_trips=n_trips))

    def enabled() -> float:
        obs.enable_tracing(max_spans=500_000)
        obs.enable_metrics()
        try:
            return _mean_ms(run_efficiency(scenario, n_trips=n_trips))
        finally:
            obs.disable_tracing()
            obs.disable_metrics()

    def flight() -> float:
        # The always-on serving stack: tracing + metrics + the event bus
        # with a flight recorder subscribed (ring appends on every event).
        obs.enable_tracing(max_spans=500_000)
        obs.enable_metrics()
        obs.enable_flight_recorder(capacity=512)
        try:
            return _mean_ms(run_efficiency(scenario, n_trips=n_trips))
        finally:
            obs.disable_flight_recorder()
            obs.disable_events()
            obs.disable_tracing()
            obs.disable_metrics()

    def slo() -> float:
        # The flight stack plus an SLO engine on the bus.  This workload
        # summarizes trajectories one call at a time (no batch), so no
        # ``item_end`` events fire — what is measured is the engine's
        # standing cost on the hot event stream: one extra subscriber
        # dispatched and filtered per stage event, which is exactly the
        # price of leaving it enabled in serving.
        obs.enable_tracing(max_spans=500_000)
        obs.enable_metrics()
        obs.enable_flight_recorder(capacity=512)
        obs.enable_slo([
            obs.SLObjective(name="latency", kind="latency_p95", threshold_ms=500.0),
        ])
        try:
            return _mean_ms(run_efficiency(scenario, n_trips=n_trips))
        finally:
            obs.disable_slo()
            obs.disable_flight_recorder()
            obs.disable_events()
            obs.disable_tracing()
            obs.disable_metrics()

    # The harness interleaves the configurations round-by-round; warmup
    # faults in caches and lazy structures on both paths before timing.
    stats = harness.measure_interleaved(
        {
            "obs.disabled_mean_ms": disabled,
            "obs.enabled_mean_ms": enabled,
            "obs.flight_mean_ms": flight,
            "obs.slo_mean_ms": slo,
        },
        repeats=rounds, warmup=1, sample="returned",
    )
    harness.append_history(stats, mode="obs_baseline")

    disabled_stats = stats["obs.disabled_mean_ms"]
    enabled_stats = stats["obs.enabled_mean_ms"]
    flight_stats = stats["obs.flight_mean_ms"]
    slo_stats = stats["obs.slo_mean_ms"]
    return {
        "benchmark": "bench_fig12_efficiency (run_efficiency mean ms per trajectory)",
        "rounds": rounds,
        "n_trips": n_trips,
        "disabled_ms": {
            "median": disabled_stats.median_ms,
            "rounds": list(disabled_stats.samples_ms),
        },
        "enabled_ms": {
            "median": enabled_stats.median_ms,
            "rounds": list(enabled_stats.samples_ms),
        },
        "flight_ms": {
            "median": flight_stats.median_ms,
            "rounds": list(flight_stats.samples_ms),
        },
        "slo_ms": {
            "median": slo_stats.median_ms,
            "rounds": list(slo_stats.samples_ms),
        },
        "enabled_overhead_pct": 100.0
        * (enabled_stats.median_ms - disabled_stats.median_ms)
        / disabled_stats.median_ms,
        "flight_overhead_pct": 100.0
        * (flight_stats.median_ms - disabled_stats.median_ms)
        / disabled_stats.median_ms,
        "slo_overhead_pct": 100.0
        * (slo_stats.median_ms - disabled_stats.median_ms)
        / disabled_stats.median_ms,
        "note": (
            "'disabled' is the default no-op observability path; the < 5 % "
            "acceptance bound applies to it versus an uninstrumented build. "
            "'enabled' has tracing + metrics fully on; 'flight' adds the "
            "event bus with a subscribed flight recorder (the always-on "
            "serving stack); 'slo' further subscribes an SLO engine to the "
            "bus.  Both stacks are bounded at < 5 % versus disabled."
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--trips", type=int, default=60)
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_obs.json")
    )
    args = parser.parse_args()
    payload = run(args.rounds, args.trips)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
