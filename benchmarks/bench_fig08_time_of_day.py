"""Fig. 8 — feature frequency (FF) of the six features across 12 two-hour
time bins.

Paper expectation (Sec. VII-C.2): features have conspicuously higher FF
during daytime than at (late) night; the speed feature peaks in the rush
bins 6-10 and 16-20.
"""

import numpy as np

from repro.experiments import format_ff_table, run_time_of_day
from repro.features import SPEED, STAY_POINTS

TRIPS_PER_BIN = 40


def test_fig08_time_of_day(benchmark, scenario):
    result = benchmark.pedantic(
        run_time_of_day, args=(scenario,),
        kwargs={"trips_per_bin": TRIPS_PER_BIN}, rounds=1, iterations=1,
    )

    print("\n=== Fig. 8 — feature frequency across the day ===")
    print(format_ff_table(
        result.bin_labels, result.ff_by_bin, result.feature_keys, "time bin",
    ))
    print("\nday (06-18) vs night (18-06) means:")
    for key in result.feature_keys:
        print(f"  {key:18s} day={result.daytime_mean(key):.3f}  "
              f"night={result.night_mean(key):.3f}")

    # Shape assertions.
    ff = result.ff_by_bin
    # Speed peaks in the rush bins (08-10, 16-18, 18-20) relative to the
    # late-night bins (22-24, 00-02, 02-04).
    rush_speed = np.mean([ff[i][SPEED] for i in (4, 8, 9)])
    late_night_speed = np.mean([ff[i][SPEED] for i in (11, 0, 1)])
    assert rush_speed > late_night_speed
    # Stay points: daytime busier than deep night.
    day_stay = np.mean([ff[i][STAY_POINTS] for i in range(3, 10)])
    night_stay = np.mean([ff[i][STAY_POINTS] for i in (11, 0, 1, 2)])
    assert day_stay > night_stay
