"""Fig. 6 — case study: one trajectory summarized at k = 1, 2, 3.

Paper expectation: more detail appears as k grows; the k=1 summary reports
only the most significant behaviours of the whole trip, finer k reveals
per-part behaviours (stay points, the U-turn) and additional landmarks.
"""

from repro.experiments import run_case_study


def test_fig06_case_study(benchmark, scenario):
    result = benchmark.pedantic(run_case_study, args=(scenario,), rounds=1, iterations=1)

    print("\n=== Fig. 6 — case study (k = 1, 2, 3) ===")
    print(
        f"ground truth: {len(result.trip.stops)} stop(s), "
        f"{len(result.trip.u_turns)} U-turn(s)\n"
    )
    for k, summary in sorted(result.summaries.items()):
        print(f"k = {k} ({summary.partition_count} partition(s)):")
        print(f"  {summary.text}\n")

    # Shape assertions mirroring the paper's narrative.
    assert result.summaries[1].partition_count == 1
    assert result.summaries[2].partition_count == 2
    assert result.summaries[3].partition_count == 3
    # Growing k never mentions fewer landmarks.
    landmark_counts = [
        len(set(result.summaries[k].mentioned_landmark_names())) for k in (1, 2, 3)
    ]
    assert landmark_counts[0] <= landmark_counts[1] <= landmark_counts[2]
