"""Shared scenario fixtures for the benchmark harness.

Each bench regenerates one table/figure of the paper's evaluation section
(see DESIGN.md for the experiment index).  The scenario is built once per
session; per-figure workload sizes are chosen so the whole harness runs in
a few minutes on a laptop.
"""

from __future__ import annotations

import pytest

from repro.simulate import CityScenario, ScenarioConfig

#: Training-corpus size: large enough for dense feature-map coverage.
TRAINING_TRIPS = 1_200


@pytest.fixture(scope="session")
def scenario() -> CityScenario:
    """The standard evaluation scenario (6 paper features)."""
    return CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=TRAINING_TRIPS, training_days=5)
    )


@pytest.fixture(scope="session")
def scenario_with_spec() -> CityScenario:
    """Scenario whose registry includes the SpeC extension feature
    (Fig. 10(b) reports seven features)."""
    return CityScenario.build(
        ScenarioConfig(
            seed=7,
            n_training_trips=TRAINING_TRIPS,
            training_days=5,
            include_speed_change_feature=True,
        )
    )
