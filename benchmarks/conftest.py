"""Shared scenario fixtures for the benchmark harness.

Each bench regenerates one table/figure of the paper's evaluation section
(see DESIGN.md for the experiment index).  The scenario is built once per
session; per-figure workload sizes are chosen so the whole harness runs in
a few minutes on a laptop.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.simulate import CityScenario, ScenarioConfig

#: Training-corpus size: large enough for dense feature-map coverage.
TRAINING_TRIPS = 1_200


@pytest.fixture(autouse=True)
def stage_breakdown(request):
    """Trace every bench and print a per-figure stage-time breakdown.

    Each bench test runs with a fresh trace collector; on teardown the
    spans are aggregated by stage name (``calibrate``, ``extract_features``,
    ``partition``, ``select``, ``realize``, ...) so every figure reports
    where its wall time went.  The collector is capped so week-long
    workloads cannot exhaust memory.
    """
    collector = obs.enable_tracing(max_spans=200_000)
    try:
        yield
    finally:
        totals = collector.stage_totals()
        obs.disable_tracing()
    if totals:
        print(f"\n--- stage-time breakdown: {request.node.name} ---")
        print(f"{'stage':<24} {'calls':>8} {'total ms':>12} {'mean ms':>10}")
        for stage in totals:
            print(
                f"{stage.name:<24} {stage.count:>8} "
                f"{stage.total_ms:>12.2f} {stage.mean_ms:>10.3f}"
            )
        if collector.dropped:
            print(f"(+{collector.dropped} spans dropped at the collector cap)")


@pytest.fixture(scope="session")
def scenario() -> CityScenario:
    """The standard evaluation scenario (6 paper features)."""
    return CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=TRAINING_TRIPS, training_days=5)
    )


@pytest.fixture(scope="session")
def scenario_with_spec() -> CityScenario:
    """Scenario whose registry includes the SpeC extension feature
    (Fig. 10(b) reports seven features)."""
    return CityScenario.build(
        ScenarioConfig(
            seed=7,
            n_training_trips=TRAINING_TRIPS,
            training_days=5,
            include_speed_change_feature=True,
        )
    )
