"""Dataset description (paper Sec. VII-A equivalents).

The paper describes its substrates: a commercial Beijing map, ~32k turning
points + ~17k POI clusters as landmarks, and 100k+ taxi trajectories split
into training and testing.  This bench prints the equivalent numbers of
the simulated scenario, so every experiment report starts from a known
dataset card.
"""

import numpy as np

from repro.experiments import format_table
from repro.simulate.stats import (
    corpus_statistics,
    landmark_statistics,
    network_statistics,
)

N_SAMPLE_TRIPS = 50


def _run(scenario):
    net = network_statistics(scenario.network)
    lms = landmark_statistics(scenario.landmarks)
    rng = np.random.default_rng(71)
    trips = scenario.simulate_trips(N_SAMPLE_TRIPS, rng=rng)
    corpus = corpus_statistics(trips, scenario.network)
    return net, lms, corpus


def test_dataset_description(benchmark, scenario):
    net, lms, corpus = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)

    print("\n=== Dataset card (paper Sec. VII-A equivalent) ===")
    print(format_table(
        ["road network", "value"],
        [
            ["intersections", net.nodes],
            ["road segments", net.edges],
            ["total length (km)", net.total_length_km],
            ["one-way share", net.one_way_share],
        ],
    ))
    print()
    print(format_table(
        ["landmarks", "value"],
        [
            ["total", lms["total"]],
            ["POI clusters", lms["poi_clusters"]],
            ["turning points", lms["turning_points"]],
            ["significance median", lms["significance_median"]],
        ],
    ))
    print()
    print(format_table(
        ["trip corpus (sample)", "value"],
        [
            ["trips", corpus.trips],
            ["mean samples/trip", corpus.mean_samples_per_trip],
            ["mean duration (s)", corpus.mean_duration_s],
            ["mean length (km)", corpus.mean_length_km],
            ["mean speed (km/h)", corpus.mean_speed_kmh],
            ["trips with stops", corpus.trips_with_stops],
            ["trips with U-turns", corpus.trips_with_u_turns],
        ],
    ))

    # Sanity: the simulated city is city-shaped.
    assert net.nodes > 100
    assert lms["total"] > 100
    assert 10.0 < corpus.mean_speed_kmh < 90.0
    assert 1.0 < corpus.mean_length_km < 10.0
