"""Record the resilience-layer overhead baseline (``BENCH_resilience.json``).

Measures what the robustness machinery costs on the happy path, where it
should be nearly free:

* **sanitizer** — :func:`repro.trajectory.sanitize_trajectory` on clean
  input (nothing to repair, the input object is returned as-is);
* **batch** — :meth:`STMaker.summarize_many` (per-item error isolation,
  retry bookkeeping, deadline checks, sanitize on) versus a plain loop of
  :meth:`STMaker.summarize` calls over the same trajectories.

The two configurations are interleaved round-by-round and the median of
several rounds is reported, so scheduler noise does not masquerade as
resilience overhead.  Results are written to ``BENCH_resilience.json`` at
the repository root.

Usage::

    PYTHONPATH=src python benchmarks/record_resilience_baseline.py [--rounds 5]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import sanitize_trajectory


def _time_ms(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


def run(rounds: int, n_trips: int) -> dict:
    scenario = CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=400, training_days=5)
    )
    stmaker = scenario.stmaker
    trips = [
        scenario.simulate_trip(depart_time=(8.0 + 0.25 * i) * 3600.0).raw
        for i in range(n_trips)
    ]

    # Warm-up: fault in caches on both paths.
    stmaker.summarize_many(trips[:5], k=2)
    for raw in trips[:5]:
        stmaker.summarize(raw, k=2)

    loop_ms: list[float] = []
    batch_ms: list[float] = []
    sanitize_us: list[float] = []
    for _ in range(rounds):
        loop_ms.append(
            _time_ms(lambda: [stmaker.summarize(raw, k=2) for raw in trips])
            / len(trips)
        )
        batch_ms.append(
            _time_ms(lambda: stmaker.summarize_many(trips, k=2)) / len(trips)
        )
        sanitize_us.append(
            _time_ms(lambda: [sanitize_trajectory(raw) for raw in trips])
            / len(trips)
            * 1000.0
        )

    loop = statistics.median(loop_ms)
    batch = statistics.median(batch_ms)
    sanitize = statistics.median(sanitize_us)
    return {
        "benchmark": (
            "summarize loop vs summarize_many (mean ms per trajectory), "
            "plus clean-input sanitizer cost"
        ),
        "rounds": rounds,
        "n_trips": n_trips,
        "loop_summarize_ms": {"median": loop, "rounds": loop_ms},
        "batch_summarize_many_ms": {"median": batch, "rounds": batch_ms},
        "batch_overhead_pct": 100.0 * (batch - loop) / loop,
        "sanitize_clean_us": {"median": sanitize, "rounds": sanitize_us},
        "note": (
            "summarize_many runs with sanitize=True, so its overhead column "
            "already includes the sanitizer pass; 'sanitize_clean_us' is the "
            "standalone cost of cleaning an already-clean trajectory."
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--trips", type=int, default=40)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
        ),
    )
    args = parser.parse_args()
    payload = run(args.rounds, args.trips)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
