"""Record the resilience-layer overhead baseline (``BENCH_resilience.json``).

Measures what the robustness machinery costs on the happy path, where it
should be nearly free:

* **sanitizer** — :func:`repro.trajectory.sanitize_trajectory` on clean
  input (nothing to repair, the input object is returned as-is);
* **batch** — :meth:`STMaker.summarize_many` (per-item error isolation,
  retry bookkeeping, deadline checks, sanitize on) versus a plain loop of
  :meth:`STMaker.summarize` calls over the same trajectories;
* **crash recovery** — a supervised ``executor="process"`` batch with one
  injected worker-killing item versus the same batch fault-free: what a
  real worker death (pool respawn, bisection, quarantine) costs end to
  end.  The recorded ratio carries an **advisory** gate
  (``within_advisory``) rather than a hard threshold — pool-respawn cost
  is machine-dependent.

Timing goes through :mod:`harness` (``measure_interleaved``): the
configurations run round-robin and the median of several rounds is
reported, so scheduler noise does not masquerade as resilience overhead.
Results are written to ``BENCH_resilience.json`` at the repository root
and the run is appended to ``BENCH_history.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/record_resilience_baseline.py [--rounds 5]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import harness
from repro.resilience import FaultInjector, FaultSpec
from repro.serving import ShardRetryPolicy
from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import RawTrajectory, sanitize_trajectory

#: Advisory ceiling on crashed-vs-clean wall clock.  A contained crash
#: costs pool respawns and a bisection cascade, so it is legitimately
#: several times slower than a clean run — but an order of magnitude
#: means containment is thrashing.
CRASH_OVERHEAD_ADVISORY_RATIO = 10.0


def run(rounds: int, n_trips: int) -> dict:
    scenario = CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=400, training_days=5)
    )
    stmaker = scenario.stmaker
    trips = [
        scenario.simulate_trip(depart_time=(8.0 + 0.25 * i) * 3600.0).raw
        for i in range(n_trips)
    ]

    def loop_summarize() -> int:
        for raw in trips:
            stmaker.summarize(raw, k=2)
        return len(trips)

    def batch_summarize_many() -> int:
        stmaker.summarize_many(trips, k=2)
        return len(trips)

    def sanitize_clean() -> int:
        for raw in trips:
            sanitize_trajectory(raw)
        return len(trips)

    # Crash-recovery overhead: the same supervised process batch, clean
    # versus with one item that kills its worker on every attempt.  The
    # corpus is re-id'd so the poison's trajectory_id is unique, and the
    # retry policy skips backoff so the measurement is containment work
    # (pool respawn, bisection, quarantine), not sleeping.
    crash_corpus = [
        RawTrajectory(raw.points, f"bench-{i:02d}")
        for i, raw in enumerate(trips[: min(12, n_trips)])
    ]
    poison_id = crash_corpus[len(crash_corpus) // 2].trajectory_id
    crash_policy = ShardRetryPolicy(max_retries=0, backoff_base_s=0.0)

    def process_clean() -> int:
        stmaker.summarize_many(
            crash_corpus, k=2, workers=2, shard_size=3,
            executor="process", shard_retry=crash_policy,
        )
        return len(crash_corpus)

    def process_crashed() -> int:
        injector = FaultInjector([FaultSpec(
            stage="extract", kind="crash", times=None,
            trajectory_id=poison_id,
        )])
        with injector.installed(stmaker):
            stmaker.summarize_many(
                crash_corpus, k=2, workers=2, shard_size=3,
                executor="process", shard_retry=crash_policy,
            )
        return len(crash_corpus)

    # Interleaved rounds; the harness warmup faults in caches on all paths.
    stats = harness.measure_interleaved(
        {
            "resilience.loop_summarize_ms": loop_summarize,
            "resilience.batch_summarize_many_ms": batch_summarize_many,
            "resilience.sanitize_clean_ms": sanitize_clean,
            "resilience.process_clean_ms": process_clean,
            "resilience.process_crashed_ms": process_crashed,
        },
        repeats=rounds, warmup=1,
    )
    harness.append_history(stats, mode="resilience_baseline")

    loop = stats["resilience.loop_summarize_ms"]
    batch = stats["resilience.batch_summarize_many_ms"]
    sanitize = stats["resilience.sanitize_clean_ms"]
    clean = stats["resilience.process_clean_ms"]
    crashed = stats["resilience.process_crashed_ms"]
    overhead_ratio = (
        crashed.median_ms / clean.median_ms if clean.median_ms > 0.0 else 0.0
    )
    return {
        "benchmark": (
            "summarize loop vs summarize_many (mean ms per trajectory), "
            "plus clean-input sanitizer cost"
        ),
        "rounds": rounds,
        "n_trips": n_trips,
        "loop_summarize_ms": {
            "median": loop.median_ms, "rounds": list(loop.samples_ms),
        },
        "batch_summarize_many_ms": {
            "median": batch.median_ms, "rounds": list(batch.samples_ms),
        },
        "batch_overhead_pct": 100.0
        * (batch.median_ms - loop.median_ms) / loop.median_ms,
        "sanitize_clean_us": {
            "median": sanitize.median_ms * 1000.0,
            "rounds": [s * 1000.0 for s in sanitize.samples_ms],
        },
        "crash_recovery": {
            "n_trips": len(crash_corpus),
            "process_clean_ms": {
                "median": clean.median_ms, "rounds": list(clean.samples_ms),
            },
            "process_crashed_ms": {
                "median": crashed.median_ms,
                "rounds": list(crashed.samples_ms),
            },
            "overhead_ratio": overhead_ratio,
            "advisory_ratio_ceiling": CRASH_OVERHEAD_ADVISORY_RATIO,
            "within_advisory": overhead_ratio <= CRASH_OVERHEAD_ADVISORY_RATIO,
        },
        "note": (
            "summarize_many runs with sanitize=True, so its overhead column "
            "already includes the sanitizer pass; 'sanitize_clean_us' is the "
            "standalone cost of cleaning an already-clean trajectory. "
            "'crash_recovery' compares a supervised process batch with one "
            "worker-killing item against the same batch fault-free; its "
            "gate is advisory (pool-respawn cost is machine-dependent)."
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--trips", type=int, default=40)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
        ),
    )
    args = parser.parse_args()
    payload = run(args.rounds, args.trips)
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
