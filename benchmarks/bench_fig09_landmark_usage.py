"""Fig. 9 — usage frequency of landmarks by significance decile.

Paper expectation: a long-tail distribution — the top-10 %-significance
landmarks account for ~40 % of all landmark mentions and the top 30 % for
~60 %, i.e. summaries anchor on places people actually know.
"""

from repro.experiments import format_table, run_landmark_usage

N_TRIPS = 200


def test_fig09_landmark_usage(benchmark, scenario):
    result = benchmark.pedantic(
        run_landmark_usage, args=(scenario,),
        kwargs={"n_trips": N_TRIPS}, rounds=1, iterations=1,
    )

    rows = [
        [f"top {i * 10}-{(i + 1) * 10}%", share]
        for i, share in enumerate(result.decile_share)
    ]
    print("\n=== Fig. 9 — landmark usage by significance decile ===")
    print(format_table(["significance group", "usage share"], rows))
    print(f"\ntop decile share:  {result.top_decile_share():.3f} (paper: ~0.40)")
    print(f"top-3 decile share: {result.top3_share():.3f} (paper: ~0.60)")

    # Shape assertions: long tail (the paper's magnitudes are stronger —
    # ~0.40/0.60 — because real Beijing landmarks are far more
    # differentiated than a synthetic city's; the shape is what carries).
    assert result.top_decile_share() > 0.15
    assert result.top3_share() > 0.40
    # The head dominates the tail.
    assert sum(result.decile_share[:3]) > sum(result.decile_share[7:])
    assert result.decile_share[0] >= max(result.decile_share[5:])
