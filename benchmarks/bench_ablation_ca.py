"""Ablation — sensitivity to the landmark-significance weight Ca (Eq. 2).

The paper fixes Ca = 0.5 for its experiments.  This ablation sweeps Ca and
measures how many partitions the *unconstrained* optimum produces: with
the Eq. 3 similarity bounded below by 0.5, small Ca never cuts (the k = 1
default behaviour the paper's Fig. 6(a) shows), and raising Ca makes cuts
appear exactly at the most significant landmarks first.
"""

import numpy as np

from repro.core import SummarizerConfig
from repro.exceptions import CalibrationError
from repro.experiments import format_table

CAS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
N_TRIPS = 25


def _run(scenario):
    rng = np.random.default_rng(83)
    trips = scenario.simulate_trips(N_TRIPS, rng=rng)
    rows = []
    for ca in CAS:
        stmaker = scenario.summarizer_with(SummarizerConfig(ca=ca))
        counts = []
        boundary_sigs = []
        for trip in trips:
            try:
                symbolic = stmaker.calibrator.calibrate(trip.raw)
            except CalibrationError:
                continue
            features = stmaker.pipeline.extract(trip.raw, symbolic)
            spans = stmaker.partition(symbolic, features)
            counts.append(len(spans))
            for span in spans[:-1]:
                lid = symbolic[span.end_landmark_index].landmark
                boundary_sigs.append(scenario.landmarks.get(lid).significance)
        mean_sig = float(np.mean(boundary_sigs)) if boundary_sigs else float("nan")
        rows.append((ca, float(np.mean(counts)), mean_sig))
    return rows


def test_ablation_ca_sensitivity(benchmark, scenario):
    rows = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)

    print("\n=== Ablation — Ca sweep (unconstrained partition) ===")
    print(format_table(
        ["Ca", "mean partitions", "mean boundary significance"],
        [[ca, count, sig] for ca, count, sig in rows],
    ))

    counts = [count for _, count, _ in rows]
    # At the paper's Ca = 0.5 the optimum is (near-)single-partition ...
    assert counts[1] < 1.5
    # ... and partition count is non-decreasing in Ca, with real cuts
    # appearing at the top of the sweep.
    assert all(a <= b + 1e-9 for a, b in zip(counts, counts[1:]))
    assert counts[-1] > counts[0]
