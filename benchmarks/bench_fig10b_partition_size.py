"""Fig. 10(b) — effect of the partition size k (seven features incl. SpeC).

Paper expectation: as k grows from 1 to 7, the FF of routing features
(GR, RW, TD) decreases — short partitions follow the popular route more —
while the FF of moving features (Spe, Stay, U-turn, SpeC) increases —
local anomalies stop being diluted over long partitions.
"""

from repro.experiments import format_ff_table, run_partition_size_sweep

N_TRIPS = 120
KS = (1, 2, 3, 4, 5, 6, 7)


def test_fig10b_partition_size(benchmark, scenario_with_spec):
    result = benchmark.pedantic(
        run_partition_size_sweep, args=(scenario_with_spec,),
        kwargs={"ks": KS, "n_trips": N_TRIPS}, rounds=1, iterations=1,
    )

    print("\n=== Fig. 10(b) — FF vs partition size k ===")
    print(format_ff_table(
        [f"k={k}" for k in result.ks], result.ff_by_k, result.feature_keys, "k",
    ))
    routing = [result.routing_mean(i) for i in range(len(KS))]
    moving = [result.moving_mean(i) for i in range(len(KS))]
    print(f"\nrouting mean by k: {[round(v, 3) for v in routing]}")
    print(f"moving  mean by k: {[round(v, 3) for v in moving]}")

    # Shape assertions: compare the coarse end against the fine end.
    assert routing[0] > routing[-1]
    assert moving[-1] > moving[0]
