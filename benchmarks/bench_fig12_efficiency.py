"""Fig. 12 — average time cost for summarizing one trajectory.

Paper expectation: most trajectories summarize within tens of
milliseconds; the cost grows mildly with the trajectory size |T| and with
the requested partition count k.

This bench reports two views: the experiment-runner tables (means vs |T|
and vs k, as in the paper's two subfigures) and a pytest-benchmark timing
of the end-to-end ``summarize`` call.
"""

import numpy as np

from repro.experiments import format_table, run_efficiency

N_TRIPS = 60


def test_fig12_time_cost_tables(benchmark, scenario):
    result = benchmark.pedantic(
        run_efficiency, args=(scenario,),
        kwargs={"n_trips": N_TRIPS}, rounds=1, iterations=1,
    )

    print("\n=== Fig. 12(a) — mean time vs |T| (landmark count) ===")
    print(format_table(["|T| bucket", "mean ms"], result.by_size))
    print("\n=== Fig. 12(b) — mean time vs k ===")
    print(format_table(["k", "mean ms"], result.by_k))

    # Shape assertions: laptop-scale milliseconds, mild growth.
    assert all(ms < 500.0 for _, ms in result.by_size)
    assert all(ms < 500.0 for _, ms in result.by_k)
    # Larger trajectories cost more than the smallest bucket on average.
    if len(result.by_size) >= 2:
        assert result.by_size[-1][1] >= result.by_size[0][1] * 0.5


def test_fig12_single_summarize_benchmark(benchmark, scenario):
    """pytest-benchmark statistics for one end-to-end summarization."""
    rng = np.random.default_rng(99)
    trip = scenario.simulate_trips(1, depart_time=10 * 3600.0, rng=rng)[0]

    result = benchmark(scenario.stmaker.summarize, trip.raw)
    assert result.text
