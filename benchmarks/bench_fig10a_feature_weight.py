"""Fig. 10(a) — effect of the feature weight.

Paper expectation: raising the weight of the Spe feature from 0.5 to 4
gradually increases FF(Spe); the other features stay roughly flat.
"""

from repro.experiments import format_ff_table, run_feature_weight_sweep
from repro.features import SPEED

N_TRIPS = 120
WEIGHTS = (0.5, 1.0, 2.0, 3.0, 4.0)


def test_fig10a_feature_weight(benchmark, scenario):
    result = benchmark.pedantic(
        run_feature_weight_sweep, args=(scenario,),
        kwargs={"weights": WEIGHTS, "n_trips": N_TRIPS}, rounds=1, iterations=1,
    )

    print("\n=== Fig. 10(a) — FF vs weight of Spe ===")
    print(format_ff_table(
        [f"w(Spe)={w}" for w in result.weights], result.ff_by_weight,
        result.feature_keys, "weight",
    ))

    spe = [row[SPEED] for row in result.ff_by_weight]
    # FF(Spe) grows with its weight (non-strictly, as in the paper's plot).
    assert spe[0] <= spe[2] <= spe[-1]
    assert spe[-1] > spe[0]
    # FF(Spe) at the top weight saturates near 1.
    assert spe[-1] > 0.8
