"""Ablation — partition quality and dynamic-program scaling.

Two design checks DESIGN.md calls out:

* the k-partition DP must actually beat naive alternatives (equal-width
  splitting) on the chain potential it optimizes;
* the DP must scale linearly enough that Fig. 12's per-trajectory cost
  stays in the tens of milliseconds (the DP is O(n·k)).
"""

import numpy as np

from repro.core import optimal_k_partition, partition_potential, spans_from_boundaries


def _random_instance(rng, n):
    similarities = rng.uniform(0.5, 1.0, n - 1).tolist()
    boundaries = (0.5 * rng.uniform(0.0, 1.0, n - 1)).tolist()
    return similarities, boundaries


def _equal_width(n_segments, k):
    cuts = [((i + 1) * n_segments) // k - 1 for i in range(k - 1)]
    return spans_from_boundaries(n_segments, cuts)


def test_ablation_dp_beats_equal_width(benchmark, scenario):
    rng = np.random.default_rng(53)

    def run():
        dp_wins = 0
        margin = 0.0
        trials = 200
        for _ in range(trials):
            n = int(rng.integers(8, 30))
            k = int(rng.integers(2, min(8, n)))
            sims, bounds = _random_instance(rng, n)
            dp = partition_potential(optimal_k_partition(sims, bounds, k), sims, bounds)
            naive = partition_potential(_equal_width(n, k), sims, bounds)
            if dp <= naive + 1e-12:
                dp_wins += 1
            margin += naive - dp
        return dp_wins / trials, margin / trials

    win_rate, mean_margin = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation — k-partition DP vs equal-width splitting ===")
    print(f"DP no worse than equal-width: {win_rate:.1%} of instances")
    print(f"mean potential improvement:   {mean_margin:.3f}")
    assert win_rate == 1.0  # the DP is optimal; it can never lose
    assert mean_margin > 0.0


def test_ablation_dp_scaling(benchmark):
    """DP runtime on a 200-segment trajectory with k=7 (pytest-benchmark)."""
    rng = np.random.default_rng(54)
    sims, bounds = _random_instance(rng, 200)

    spans = benchmark(optimal_k_partition, sims, bounds, 7)
    assert len(spans) == 7
