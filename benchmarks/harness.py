"""Shared statistical benchmark runner with history and a regression gate.

Every benchmark in this repo funnels through the same measurement core:

* :func:`measure` — warmup + repeated runs of a callable, reporting
  median / IQR / min / max / mean in milliseconds (per unit of work when
  the callable returns how many units it processed);
* :func:`measure_interleaved` — several configurations timed round-robin,
  round by round, so scheduler drift hits all of them equally (the
  technique the obs/resilience overhead baselines rely on);
* :func:`append_history` — each run appends one JSON line (timestamp,
  environment fingerprint, stats per benchmark, gate outcome) to
  ``BENCH_history.jsonl`` at the repo root, growing a perf trajectory
  instead of overwriting one-off snapshots;
* :func:`check_regressions` — compares medians against the committed
  ``benchmarks/BENCH_baseline.json`` with a tolerance threshold.  CI runs
  this in smoke mode as an **advisory** gate: it warns (and can exit
  non-zero with ``--gate``) when a median regresses, but hardware varies,
  so the default is to report, not to block.

Two built-in suites share the machinery:

* ``--smoke`` (default) — small end-to-end pipeline workloads;
* ``--figures`` — miniature versions of the per-figure experiment
  runners behind ``benchmarks/bench_fig*.py``, so a perf regression in
  any figure pipeline trips the same history/trend gate without anyone
  re-running the full figure harness.  Each suite records history under
  its own ``mode``, so trends never mix the two.

Run directly::

    PYTHONPATH=src python benchmarks/harness.py --smoke
    PYTHONPATH=src python benchmarks/harness.py --figures
    PYTHONPATH=src python benchmarks/harness.py --smoke --update-baseline
    PYTHONPATH=src python benchmarks/harness.py --smoke --gate  # exit 1 on regress
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
DEFAULT_TOLERANCE_PCT = 20.0


@dataclass(frozen=True, slots=True)
class BenchStats:
    """Summary statistics of one benchmark's repeated samples (ms)."""

    name: str
    samples_ms: tuple[float, ...]
    warmup: int

    @property
    def repeats(self) -> int:
        return len(self.samples_ms)

    @property
    def median_ms(self) -> float:
        return statistics.median(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        return statistics.fmean(self.samples_ms)

    @property
    def min_ms(self) -> float:
        return min(self.samples_ms)

    @property
    def max_ms(self) -> float:
        return max(self.samples_ms)

    @property
    def iqr_ms(self) -> float:
        if len(self.samples_ms) < 2:
            return 0.0
        q1, _, q3 = statistics.quantiles(self.samples_ms, n=4)
        return q3 - q1

    def to_dict(self) -> dict[str, object]:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "median_ms": self.median_ms,
            "iqr_ms": self.iqr_ms,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            "mean_ms": self.mean_ms,
            "samples_ms": list(self.samples_ms),
        }


def stats_from_samples(name: str, samples_ms, warmup: int = 0) -> BenchStats:
    """Wrap already-collected samples (ms) in a :class:`BenchStats`."""
    if not samples_ms:
        raise ValueError(f"benchmark {name!r} produced no samples")
    return BenchStats(name, tuple(float(s) for s in samples_ms), warmup)


def _run_once(fn: Callable[[], object], sample: str) -> float:
    start = time.perf_counter()
    out = fn()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    if sample == "returned":
        return float(out)  # type: ignore[arg-type]
    units = out if isinstance(out, int) and out > 0 else 1
    return elapsed_ms / units


def measure(
    fn: Callable[[], object],
    *,
    name: str,
    repeats: int = 5,
    warmup: int = 1,
    sample: str = "wall",
) -> BenchStats:
    """Time ``fn()`` *repeats* times after *warmup* unmeasured runs.

    With ``sample="wall"`` (default) each sample is the wall time in ms,
    divided by the number of work units when ``fn`` returns a positive
    int — so callables that loop over a batch report per-item cost.  With
    ``sample="returned"`` the callable measures itself and returns the
    sample in ms (used by workloads whose cost metric is not plain wall
    time, e.g. the Fig. 12 per-trajectory means).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    return stats_from_samples(
        name, [_run_once(fn, sample) for _ in range(repeats)], warmup
    )


def measure_interleaved(
    fns: dict[str, Callable[[], object]],
    *,
    repeats: int = 5,
    warmup: int = 1,
    sample: str = "wall",
) -> dict[str, BenchStats]:
    """Measure several configurations round-robin, one round at a time.

    Round *i* runs every configuration once before round *i+1* starts, so
    slow drift (thermal throttling, background load) biases all
    configurations equally instead of whichever ran last.
    """
    for _ in range(warmup):
        for fn in fns.values():
            fn()
    samples: dict[str, list[float]] = {name: [] for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            samples[name].append(_run_once(fn, sample))
    return {
        name: stats_from_samples(name, rounds, warmup)
        for name, rounds in samples.items()
    }


# -- history + regression gate ------------------------------------------------


def append_history(
    results: dict[str, BenchStats],
    *,
    path=DEFAULT_HISTORY,
    mode: str = "smoke",
    gate: list[dict[str, object]] | None = None,
    extra: dict[str, object] | None = None,
) -> dict[str, object]:
    """Append one JSONL record of this run; returns the record."""
    from repro.obs.report import environment_fingerprint

    record: dict[str, object] = {
        "ts_unix": time.time(),
        "mode": mode,
        "environment": environment_fingerprint(),
        "results": {name: stats.to_dict() for name, stats in results.items()},
    }
    if gate is not None:
        record["gate"] = gate
    if extra:
        record.update(extra)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, default=str) + "\n")
    return record


def load_baseline(path=DEFAULT_BASELINE) -> dict[str, object] | None:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def write_baseline(
    results: dict[str, BenchStats],
    *,
    path=DEFAULT_BASELINE,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> dict[str, object]:
    from repro.obs.report import environment_fingerprint

    payload = {
        "recorded_unix": time.time(),
        "tolerance_pct": tolerance_pct,
        "environment": environment_fingerprint(),
        "medians_ms": {name: stats.median_ms for name, stats in results.items()},
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8"
    )
    return payload


def check_regressions(
    results: dict[str, BenchStats],
    baseline: dict[str, object] | None,
    tolerance_pct: float | None = None,
) -> list[dict[str, object]]:
    """Compare medians against the baseline; one finding per benchmark.

    ``status`` is ``"ok"`` (within tolerance, or faster), ``"regressed"``
    (median more than ``tolerance_pct`` slower than baseline), or
    ``"new"`` (no baseline entry to compare against).
    """
    findings: list[dict[str, object]] = []
    medians: dict[str, float] = {}
    if baseline:
        medians = dict(baseline.get("medians_ms", {}))  # type: ignore[arg-type]
        if tolerance_pct is None:
            tolerance_pct = float(baseline.get("tolerance_pct", DEFAULT_TOLERANCE_PCT))
    if tolerance_pct is None:
        tolerance_pct = DEFAULT_TOLERANCE_PCT
    for name, stats in results.items():
        base = medians.get(name)
        if base is None:
            findings.append({
                "name": name, "status": "new",
                "median_ms": stats.median_ms, "baseline_ms": None,
                "delta_pct": None,
            })
            continue
        delta_pct = 100.0 * (stats.median_ms - base) / base if base else 0.0
        findings.append({
            "name": name,
            "status": "regressed" if delta_pct > tolerance_pct else "ok",
            "median_ms": stats.median_ms,
            "baseline_ms": base,
            "delta_pct": delta_pct,
        })
    return findings


def load_history(path=DEFAULT_HISTORY, *, mode: str | None = "smoke") -> list[dict]:
    """The parsed ``BENCH_history.jsonl`` records (oldest first).

    Unparseable lines are skipped — the history survives interrupted runs
    and hand edits.  *mode* filters to records of one benchmark mode
    (``None`` keeps everything).
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if mode is not None and record.get("mode") != mode:
            continue
        records.append(record)
    return records


def check_trend(
    results: dict[str, BenchStats],
    history: list[dict],
    *,
    window: int = 5,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> list[dict[str, object]]:
    """Judge this run against the *trend* of the last *window* history runs.

    The reference for each benchmark is the median of its last *window*
    recorded medians — so one noisy historical run cannot poison the gate
    the way a single-sample baseline can.  ``status`` is ``"regressed"``
    when this run's median is more than *tolerance_pct* above the trend,
    ``"ok"`` when within it, and ``"new"`` with fewer than two prior runs
    (a trend needs history to exist).
    """
    findings: list[dict[str, object]] = []
    for name, stats in results.items():
        prior = [
            record["results"][name]["median_ms"]
            for record in history
            if name in record.get("results", {})
        ][-window:]
        if len(prior) < 2:
            findings.append({
                "name": name, "status": "new",
                "median_ms": stats.median_ms, "trend_ms": None,
                "delta_pct": None, "window": len(prior),
            })
            continue
        trend = statistics.median(prior)
        delta_pct = 100.0 * (stats.median_ms - trend) / trend if trend else 0.0
        findings.append({
            "name": name,
            "status": "regressed" if delta_pct > tolerance_pct else "ok",
            "median_ms": stats.median_ms,
            "trend_ms": trend,
            "delta_pct": delta_pct,
            "window": len(prior),
        })
    return findings


# -- regression attribution ----------------------------------------------------


def profile_stages(fn: Callable[[], object]) -> dict[str, float]:
    """One traced run of *fn*: per-stage span totals, in ms.

    Uses a private :class:`~repro.obs.TraceCollector` so the profiling
    pass never mixes with a collector the caller may have enabled; the
    prior collector (if any) is restored afterwards.
    """
    from repro import obs

    collector = obs.TraceCollector()
    prior = obs.get_collector()
    obs.enable_tracing(collector)
    try:
        fn()
    finally:
        if prior is not None:
            obs.enable_tracing(prior)
        else:
            obs.disable_tracing()
    return {total.name: total.total_ms for total in collector.stage_totals()}


def attribute_trend_regression(
    name: str,
    profile: dict[str, float],
    history: list[dict],
) -> list[dict[str, object]]:
    """Per-stage diff of this run's span profile vs the last recorded one.

    When the trend gate trips, "the median got slower" is the *what*; this
    is the *where* — which pipeline stages account for the movement.  The
    reference is the most recent history record carrying a
    ``stage_profile`` for *name* (each gated run appends its own, so the
    comparison is run-over-run).  Rows are sorted by absolute delta,
    biggest contributor first; empty when no prior profile exists.
    """
    prior_profile: dict[str, object] | None = None
    for record in reversed(history):
        profiles = record.get("stage_profile")
        if isinstance(profiles, dict) and isinstance(profiles.get(name), dict):
            prior_profile = profiles[name]
            break
    if not prior_profile:
        return []
    rows: list[dict[str, object]] = []
    for stage in sorted(set(profile) | set(prior_profile)):
        now = float(profile.get(stage, 0.0))
        then = float(prior_profile.get(stage, 0.0))  # type: ignore[arg-type]
        rows.append({
            "stage": stage, "now_ms": now, "then_ms": then,
            "delta_ms": now - then,
        })
    rows.sort(key=lambda row: -abs(row["delta_ms"]))  # type: ignore[arg-type]
    return rows


# -- smoke suite --------------------------------------------------------------


def smoke_suite(training: int = 40, trips: int = 8) -> dict[str, Callable[[], object]]:
    """Small end-to-end workloads that finish in seconds (the CI gate)."""
    from repro.simulate import CityScenario, ScenarioConfig
    from repro.trajectory import sanitize_trajectory

    scenario = CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=training)
    )
    stmaker = scenario.stmaker
    batch = [
        scenario.simulate_trip(depart_time=(8.0 + 0.25 * i) * 3600.0).raw
        for i in range(trips)
    ]

    def summarize_single() -> int:
        stmaker.summarize(batch[0], k=2)
        return 1

    def summarize_many_batch() -> int:
        stmaker.summarize_many(batch, k=2)
        return len(batch)

    def summarize_many_pooled() -> int:
        # Pool-path smoke: guards the sharding/reassembly overhead, not
        # parallel throughput (see benchmarks/record_serving_baseline.py
        # for the latency-bound speedup measurement).
        stmaker.summarize_many(batch, k=2, workers=4)
        return len(batch)

    def sanitize_clean() -> int:
        for raw in batch:
            sanitize_trajectory(raw)
        return len(batch)

    return {
        "smoke.summarize_single_ms": summarize_single,
        "smoke.summarize_many_per_item_ms": summarize_many_batch,
        "smoke.summarize_many_workers4_per_item_ms": summarize_many_pooled,
        "smoke.sanitize_clean_per_item_ms": sanitize_clean,
    }


# -- figures suite ------------------------------------------------------------


def figures_suite(training: int = 40) -> dict[str, Callable[[], object]]:
    """Miniature versions of the per-figure experiment workloads.

    Each callable drives the same :mod:`repro.experiments.runners`
    function that the corresponding ``benchmarks/bench_fig*.py`` pytest
    benchmark wraps, at sizes small enough for CI (seconds, not minutes).
    The point is coverage, not fidelity: a regression anywhere in a
    figure's pipeline — feature frequency, user study grading, sweep
    loops — moves its median here and trips the history/trend gate long
    before anyone reruns the full figure harness.  Samples are per work
    unit (trips summarized, or sweep cells), like the smoke suite.
    """
    from repro.experiments import runners
    from repro.simulate import CityScenario, ScenarioConfig

    scenario = CityScenario.build(
        ScenarioConfig(seed=7, n_training_trips=training)
    )

    def case_study() -> int:
        runners.run_case_study(scenario, ks=(1, 2, 3))
        return 3

    def time_of_day() -> int:
        runners.run_time_of_day(scenario, trips_per_bin=2)
        return 24  # 12 bins x 2 trips

    def landmark_usage() -> int:
        runners.run_landmark_usage(scenario, n_trips=10)
        return 10

    def feature_weight() -> int:
        runners.run_feature_weight_sweep(
            scenario, weights=(0.5, 2.0), n_trips=6
        )
        return 12  # 2 weights x 6 trips

    def partition_size() -> int:
        runners.run_partition_size_sweep(scenario, ks=(1, 3), n_trips=6)
        return 12  # 2 ks x 6 trips

    def user_study() -> int:
        runners.run_user_study_experiment(
            scenario, n_summaries=12, n_readers=5
        )
        return 12

    def efficiency() -> int:
        runners.run_efficiency(scenario, n_trips=8, ks=(1, 3))
        return 8

    return {
        "figures.fig06_case_study_per_k_ms": case_study,
        "figures.fig08_time_of_day_per_trip_ms": time_of_day,
        "figures.fig09_landmark_usage_per_trip_ms": landmark_usage,
        "figures.fig10a_feature_weight_per_cell_ms": feature_weight,
        "figures.fig10b_partition_size_per_cell_ms": partition_size,
        "figures.fig11_user_study_per_summary_ms": user_study,
        "figures.fig12_efficiency_per_trip_ms": efficiency,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the small end-to-end CI suite (the default)",
    )
    parser.add_argument(
        "--figures", action="store_true",
        help="run miniature per-figure experiment workloads (combinable "
        "with --smoke; each suite keeps its own history mode)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--training", type=int, default=40)
    parser.add_argument("--trips", type=int, default=8)
    parser.add_argument("--history", default=str(DEFAULT_HISTORY))
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured medians as the new committed baseline",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any benchmark regressed beyond tolerance "
        "(default: advisory — warn and exit 0)",
    )
    parser.add_argument(
        "--trend-window", type=int, default=0, metavar="K",
        help="also judge each median against the median of its last K "
        "history runs (0 = off); regressions count toward --gate",
    )
    args = parser.parse_args(argv)

    run_smoke = args.smoke or not args.figures
    suite: dict[str, Callable[[], object]] = {}
    if run_smoke:
        suite.update(smoke_suite(training=args.training, trips=args.trips))
    if args.figures:
        suite.update(figures_suite(training=args.training))
    # History records are tagged by suite so trends compare like with like.
    mode = "+".join(
        name for name, on in (("smoke", run_smoke), ("figures", args.figures)) if on
    )
    results: dict[str, BenchStats] = {}
    for name, fn in suite.items():
        results[name] = measure(
            fn, name=name, repeats=args.repeats, warmup=args.warmup
        )
        stats = results[name]
        print(
            f"{name:<40} median={stats.median_ms:9.3f} ms  "
            f"iqr={stats.iqr_ms:8.3f}  min={stats.min_ms:9.3f}  "
            f"(n={stats.repeats})"
        )

    baseline = load_baseline(args.baseline)
    findings = check_regressions(results, baseline)
    regressed = [f for f in findings if f["status"] == "regressed"]
    for finding in findings:
        if finding["status"] == "new":
            print(f"gate: {finding['name']}: no baseline entry (new)", file=sys.stderr)
        elif finding["status"] == "regressed":
            print(
                f"gate: REGRESSION {finding['name']}: "
                f"{finding['median_ms']:.3f} ms vs baseline "
                f"{finding['baseline_ms']:.3f} ms "
                f"({finding['delta_pct']:+.1f}%)",
                file=sys.stderr,
            )
    if not regressed and baseline is not None:
        print("gate: all benchmarks within tolerance", file=sys.stderr)

    trend_findings: list[dict[str, object]] = []
    stage_profiles: dict[str, dict[str, float]] = {}
    if args.trend_window > 0:
        # Judge against the recent history trend, not just the committed
        # one-shot baseline — the history file persists across CI runs.
        # One traced pass per benchmark records where the time went, so a
        # tripped gate can name the stages that moved, not just the total.
        history = load_history(args.history, mode=mode)
        stage_profiles = {name: profile_stages(fn) for name, fn in suite.items()}
        trend_findings = check_trend(
            results, history, window=args.trend_window
        )
        for finding in trend_findings:
            if finding["status"] == "new":
                print(
                    f"trend: {finding['name']}: only {finding['window']} "
                    f"prior run(s), need 2+ for a trend",
                    file=sys.stderr,
                )
            elif finding["status"] == "regressed":
                print(
                    f"trend: REGRESSION {finding['name']}: "
                    f"{finding['median_ms']:.3f} ms vs trend "
                    f"{finding['trend_ms']:.3f} ms over last "
                    f"{finding['window']} run(s) "
                    f"({finding['delta_pct']:+.1f}%)",
                    file=sys.stderr,
                )
                name = str(finding["name"])
                rows = attribute_trend_regression(
                    name, stage_profiles.get(name, {}), history
                )
                if not rows:
                    print(
                        "trend:   (no prior stage profile to attribute "
                        "against)",
                        file=sys.stderr,
                    )
                for row in rows[:5]:
                    print(
                        f"trend:   stage {row['stage']}: "
                        f"{row['now_ms']:.3f} ms vs {row['then_ms']:.3f} ms "
                        f"({row['delta_ms']:+.3f})",
                        file=sys.stderr,
                    )
        trend_regressed = [
            f for f in trend_findings if f["status"] == "regressed"
        ]
        if not trend_regressed and any(
            f["status"] == "ok" for f in trend_findings
        ):
            print(
                f"trend: all benchmarks within tolerance of the last "
                f"{args.trend_window}-run trend",
                file=sys.stderr,
            )
        regressed.extend(trend_regressed)

    if not args.no_history:
        append_history(
            results, path=args.history, mode=mode,
            gate=findings + trend_findings,
            extra=(
                {"stage_profile": stage_profiles} if stage_profiles else None
            ),
        )
        print(f"history appended to {args.history}", file=sys.stderr)
    if args.update_baseline:
        write_baseline(results, path=args.baseline)
        print(f"baseline written to {args.baseline}", file=sys.stderr)
    if regressed and args.gate:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
