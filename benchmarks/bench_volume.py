"""Data-volume comparison (paper Sec. I, "Data volume").

The paper motivates summaries as lightweight alternatives to raw and
semantic trajectories: "the output text is lightweight and easy to store
and communicate."  This bench quantifies that claim on the simulated
corpus: bytes of the raw CSV representation, of a semantic-trajectory
proxy (every sample annotated with its road attributes, as in the
annotated-trajectory literature), and of the generated summary.
"""

import json

import numpy as np

from repro.exceptions import CalibrationError
from repro.mapmatch import HMMMapMatcher
from repro.trajectory import format_timestamp

N_TRIPS = 30


def _raw_csv_bytes(raw) -> int:
    lines = ["latitude,longitude,timestamp"]
    lines += [
        f"{p.point.lat:.6f},{p.point.lon:.6f},{format_timestamp(p.t)}" for p in raw
    ]
    return len("\n".join(lines).encode("utf-8"))


def _semantic_bytes(network, matcher, raw) -> int:
    """Size of a semantic trajectory: each sample + its road annotation."""
    result = matcher.match(raw.points)
    edge_of_point = {m.point_index: m.edge_id for m in result.matched}
    rows = []
    for i, p in enumerate(raw):
        row = {"lat": p.point.lat, "lon": p.point.lon, "t": p.t}
        edge_id = edge_of_point.get(i)
        if edge_id is not None:
            edge = network.edge(edge_id)
            row.update(
                road=edge.name,
                grade=edge.grade.display_name,
                width=edge.width_m,
                direction=edge.direction.display_name,
            )
        rows.append(row)
    return len(json.dumps(rows).encode("utf-8"))


def _run(scenario):
    rng = np.random.default_rng(61)
    trips = scenario.simulate_trips(N_TRIPS, rng=rng)
    matcher = HMMMapMatcher(scenario.network)
    raw_total = semantic_total = summary_total = 0
    counted = 0
    for trip in trips:
        try:
            summary = scenario.stmaker.summarize(trip.raw, k=2)
        except CalibrationError:
            continue
        raw_total += _raw_csv_bytes(trip.raw)
        semantic_total += _semantic_bytes(scenario.network, matcher, trip.raw)
        summary_total += len(summary.text.encode("utf-8"))
        counted += 1
    return raw_total / counted, semantic_total / counted, summary_total / counted


def test_volume_summary_is_lightweight(benchmark, scenario):
    raw_bytes, semantic_bytes, summary_bytes = benchmark.pedantic(
        _run, args=(scenario,), rounds=1, iterations=1
    )
    print("\n=== Data volume per trajectory (mean bytes) ===")
    print(f"raw CSV:             {raw_bytes:10.0f}")
    print(f"semantic trajectory: {semantic_bytes:10.0f}")
    print(f"summary text:        {summary_bytes:10.0f}")
    print(f"\nsummary vs raw:      {raw_bytes / summary_bytes:6.1f}x smaller")
    print(f"summary vs semantic: {semantic_bytes / summary_bytes:6.1f}x smaller")

    # The paper's qualitative ordering: semantic > raw >> summary.
    assert semantic_bytes > raw_bytes
    assert raw_bytes > 5 * summary_bytes
