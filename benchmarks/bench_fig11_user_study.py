"""Fig. 11 — user feedback (simulated readers; see DESIGN.md).

Paper expectation: ~55 % of 450 summaries graded at understanding level 4
and ~80 % at levels 3-4; level 1 is rare.  Our readers are simulated
against the trip simulator's ground truth (the paper used 30 volunteers),
but they grade the same construct: does the summary convey where and how
the object travelled?
"""

from repro.experiments import format_table, run_user_study_experiment

N_SUMMARIES = 450
N_READERS = 30


def test_fig11_user_study(benchmark, scenario):
    result = benchmark.pedantic(
        run_user_study_experiment, args=(scenario,),
        kwargs={"n_summaries": N_SUMMARIES, "n_readers": N_READERS},
        rounds=1, iterations=1,
    )

    rows = [
        [f"level {level}", share] for level, share in sorted(result.histogram.items())
    ]
    print("\n=== Fig. 11 — simulated user study ===")
    print(format_table(["understanding level", "fraction"], rows))
    top2 = result.histogram[3] + result.histogram[4]
    print(f"\nlevel 4: {result.histogram[4]:.3f} (paper: ~0.55)")
    print(f"levels 3+4: {top2:.3f} (paper: ~0.80)")

    # Shape assertions.
    assert result.histogram[4] == max(result.histogram.values())
    assert top2 >= 0.6
    assert result.histogram[1] < 0.2
