"""Ablation — HMM map matching vs. the nearest-edge baseline.

DESIGN.md calls out HMM map matching as the routing-feature substrate.
This ablation quantifies the choice: on noisy GPS, the nearest-edge
matcher flip-flops between parallel roads, misattributing travelled
length, while the HMM stays on the driven route.  Accuracy is measured as
the fraction of travelled length attributed to ground-truth route edges.
"""

import numpy as np

from repro.mapmatch import HMMMapMatcher, NearestEdgeMatcher
from repro.simulate import TripConfig, TripSimulator

N_TRIPS = 15
NOISE_M = 12.0  # harsher than the default simulator noise


def _route_accuracy(matcher, network, trip) -> float:
    truth_edges = set()
    for u, v in zip(trip.route_nodes, trip.route_nodes[1:]):
        edge = network.edge_between(u, v)
        if edge is not None:
            truth_edges.add(edge.edge_id)
    result = matcher.match(trip.raw.points)
    on_route = 0.0
    total = 0.0
    for edge, travelled in result.edge_traversals(network):
        total += travelled
        if edge.edge_id in truth_edges:
            on_route += travelled
    return on_route / total if total > 0 else 0.0


def _run(scenario):
    simulator = TripSimulator(
        scenario.network, scenario.traffic,
        TripConfig(gps_noise_m=NOISE_M, u_turn_probability=0.0),
    )
    rng = np.random.default_rng(31)
    hmm = HMMMapMatcher(scenario.network)
    nearest = NearestEdgeMatcher(scenario.network)
    hmm_scores = []
    nearest_scores = []
    for _ in range(N_TRIPS):
        origin, destination = scenario.fleet.sample_od(rng)
        trip = simulator.simulate(origin, destination, 11 * 3600.0, rng)
        hmm_scores.append(_route_accuracy(hmm, scenario.network, trip))
        nearest_scores.append(_route_accuracy(nearest, scenario.network, trip))
    return float(np.mean(hmm_scores)), float(np.mean(nearest_scores))


def test_ablation_hmm_vs_nearest_edge(benchmark, scenario):
    hmm_acc, nearest_acc = benchmark.pedantic(
        _run, args=(scenario,), rounds=1, iterations=1
    )
    print("\n=== Ablation — map matching accuracy (noisy GPS) ===")
    print(f"HMM (Viterbi):       {hmm_acc:.3f} of travelled length on route")
    print(f"nearest-edge:        {nearest_acc:.3f}")

    assert hmm_acc > 0.85
    assert hmm_acc >= nearest_acc
