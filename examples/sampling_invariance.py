"""Sampling invariance (the paper's Fig. 2 motivation, Sec. II-A).

"Despite of different sampling strategies, different trajectories sampled
from the same route should result in the same or similar summarization."

This example records the same simulated route under four sampling
strategies, shows how differently the *raw* data looks (sample counts,
pairwise DTW distance), and then shows that calibration collapses all four
onto the same symbolic trajectory and nearly identical summaries.
"""

from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import downsample_by_time, dtw_distance, take_every


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=99, n_training_trips=400))
    trip = scenario.simulate_trip(depart_time=10 * 3600.0)

    variants = {
        "dense (5 s)": trip.raw,
        "sparse (15 s)": downsample_by_time(trip.raw, 15.0),
        "very sparse (30 s)": downsample_by_time(trip.raw, 30.0),
        "every 4th sample": take_every(trip.raw, 4),
    }

    projector = scenario.network.projector
    print("raw representations of the SAME route:")
    base = trip.raw.coordinates()
    for label, variant in variants.items():
        d = dtw_distance(base, variant.coordinates(), projector)
        print(f"  {label:18s} {len(variant):4d} samples, DTW vs dense = {d:8.0f} m")

    print("\ncalibrated symbolic trajectories:")
    calibrator = scenario.stmaker.calibrator
    base_ids = calibrator.calibrate(trip.raw).landmark_ids()
    for label, variant in variants.items():
        ids = calibrator.calibrate(variant).landmark_ids()
        overlap = len(set(base_ids) & set(ids)) / len(set(base_ids) | set(ids))
        print(f"  {label:18s} {len(ids):3d} landmarks, Jaccard vs dense = {overlap:.2f}")

    print("\nsummaries (k = 1):")
    for label, variant in variants.items():
        summary = scenario.stmaker.summarize(variant, k=1)
        print(f"  [{label}]")
        print(f"    {summary.text}")


if __name__ == "__main__":
    main()
