"""Infraction reminder (a motivating application from the paper's intro).

"By embedding the trajectory summarization technique in GPS modules of
cars, an infraction reminder can be created.  Every time some driving
infractions occur, the driver can receive the infraction travel summary."

This example watches a stream of simulated trips and emits a reminder for
every trip whose summary reports a U-turn or heavy stop-and-go behaviour.
"""

import numpy as np

from repro.features import STAY_POINTS, U_TURNS
from repro.simulate import CityScenario, ScenarioConfig, TripConfig, TripSimulator


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=21, n_training_trips=400))

    # A fleet with careless drivers: frequent wrong turns.
    careless = TripSimulator(
        scenario.network, scenario.traffic, TripConfig(u_turn_probability=0.5)
    )
    rng = np.random.default_rng(3)

    reminders = 0
    for trip_no in range(12):
        origin, destination = scenario.fleet.sample_od(rng)
        trip = careless.simulate(origin, destination, 17.5 * 3600.0, rng,
                                 trajectory_id=f"cab-{trip_no}")
        summary = scenario.stmaker.summarize(trip.raw, k=4)
        flagged = summary.selected_feature_keys() & {U_TURNS, STAY_POINTS}
        if not flagged:
            continue
        reminders += 1
        print(f"=== infraction reminder for {trip.raw.trajectory_id} ===")
        for partition in summary.partitions:
            if any(a.key in flagged for a in partition.selected):
                print(" ", partition.sentence)
        print()
    print(f"{reminders} reminder(s) issued out of 12 trips")


if __name__ == "__main__":
    main()
