"""Traffic overview by clustering summaries (paper Sec. VI-C).

"Applying the text clustering method on summaries of all the trajectories
in a certain region at a specific time period, we can have a quick
overview about the traffic condition."

This example summarizes a rush-hour fleet and a night fleet, clusters all
the texts with TF-IDF + k-means, and prints the dominant vocabulary of
each cluster — congested-driving clusters separate from smooth-driving
clusters.  It also demonstrates ranked search over the summary corpus.
"""

import numpy as np

from repro.simulate import CityScenario, ScenarioConfig
from repro.textproc import InvertedIndex, TfidfVectorizer, kmeans, top_terms


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=33, n_training_trips=400))
    rng = np.random.default_rng(5)

    rush = scenario.simulate_trips(20, depart_time=8 * 3600.0, rng=rng)
    night = scenario.simulate_trips(20, depart_time=2 * 3600.0, rng=rng)
    labels = ["rush"] * len(rush) + ["night"] * len(night)
    texts = [
        scenario.stmaker.summarize(trip.raw, k=2).text for trip in rush + night
    ]

    # Cluster the summary corpus.
    vectorizer = TfidfVectorizer(min_df=2)
    matrix = vectorizer.fit_transform(texts)
    result = kmeans(matrix, 4, np.random.default_rng(0))
    print("clusters over", len(texts), "summaries:")
    for cluster in range(4):
        members = result.members(cluster)
        if not members:
            continue
        times = [labels[i] for i in members]
        vocabulary = ", ".join(top_terms(result.centroids[cluster], vectorizer.vocabulary))
        share_rush = times.count("rush") / len(times)
        print(
            f"  cluster {cluster}: {len(members)} summaries "
            f"({share_rush:.0%} rush-hour) — {vocabulary}"
        )

    # Search the corpus like any text collection.
    index = InvertedIndex()
    for i, text in enumerate(texts):
        index.add(f"{labels[i]}-{i}", text)
    print('\nranked search for "slower staying":')
    for doc_id, score in index.search_ranked("slower staying", limit=5):
        print(f"  {doc_id}: {score:.3f}")

    # Text categorization (Sec. VI-C): triage new trips by text alone.
    from repro.textproc import NaiveBayesClassifier

    split = int(0.75 * len(rush))
    train_docs = texts[:split] + texts[len(rush):len(rush) + split]
    train_labels = labels[:split] + labels[len(rush):len(rush) + split]
    test_docs = texts[split:len(rush)] + texts[len(rush) + split:]
    test_labels = labels[split:len(rush)] + labels[len(rush) + split:]
    classifier = NaiveBayesClassifier().fit(train_docs, train_labels)
    accuracy = classifier.accuracy(test_docs, test_labels)
    print(f"\nrush-vs-night classifier accuracy on held-out summaries: {accuracy:.0%}")


if __name__ == "__main__":
    main()
