"""Flow report: summarizing a *group* of trajectories.

The paper closes with "summarization of trajectory group" as future work
(Sec. IX); this library implements it (`repro.core.GroupSummarizer`).
A dispatcher watching the morning flow between two places gets one
paragraph instead of a stack of GPS files — including which cabs behaved
unlike the rest.
"""

import numpy as np

from repro.core import GroupSummarizer
from repro.simulate import CityScenario, ScenarioConfig, TripConfig, TripSimulator


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=5, n_training_trips=400))
    rng = np.random.default_rng(8)
    origin, destination = scenario.fleet.sample_od(rng)

    # The morning flow: ten ordinary trips plus one lost driver.
    ordinary = TripSimulator(
        scenario.network, scenario.traffic, TripConfig(u_turn_probability=0.0)
    )
    lost = TripSimulator(
        scenario.network, scenario.traffic, TripConfig(u_turn_probability=1.0)
    )
    trips = [
        ordinary.simulate(origin, destination, 8 * 3600.0, rng, f"cab-{i}")
        for i in range(10)
    ]
    trips.append(lost.simulate(origin, destination, 8 * 3600.0, rng, "cab-lost"))

    summarizer = GroupSummarizer(scenario.stmaker)
    report = summarizer.summarize_group([t.raw for t in trips])

    print("=== morning flow report ===")
    print(report.text)
    print()
    print(f"members: {report.member_count}, route consensus: {report.consensus_share:.0%}")
    print(f"group-level irregular features: "
          f"{', '.join(a.key for a in report.selected) or '(none)'}")
    print(f"outliers: {', '.join(report.outliers) or '(none)'}")

    # Drill into one outlier with a normal single-trajectory summary.
    for trip in trips:
        if trip.raw.trajectory_id in report.outliers:
            detail = scenario.stmaker.summarize(trip.raw, k=3)
            print(f"\n--- detail for {trip.raw.trajectory_id} ---")
            print(detail.text)
            break


if __name__ == "__main__":
    main()
