"""Extending STMaker with a user-defined feature (paper Sec. VI-B).

The paper's three-step recipe: (1) declare the feature's type, (2) provide
its regular values, (3) provide a phrase template.  Here we add a *night
driving* moving feature — the fraction of a segment driven between 23:00
and 05:00 — whose regular values are learned into the historical feature
map automatically during training.
"""

import numpy as np

from repro.core import SummarizerConfig, STMaker
from repro.features import (
    ExtractionContext,
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    default_registry,
)
from repro.simulate import CityScenario, ScenarioConfig
from repro.simulate.traffic import SECONDS_PER_DAY


def night_fraction(context: ExtractionContext) -> float:
    """Fraction of the segment's samples recorded between 23:00 and 05:00."""
    if not context.points:
        return 0.0
    night = 0
    for sample in context.points:
        hour = (sample.t % SECONDS_PER_DAY) / 3600.0
        if hour >= 23.0 or hour < 5.0:
            night += 1
    return night / len(context.points)


def night_phrase(assessment) -> str:
    share = assessment.observed
    return f"driving {share:.0%} of the way in deep night hours"


def main() -> None:
    # Step 1 + 3: declare the feature and its template.
    registry = default_registry()
    registry.register(
        FeatureDefinition(
            key="night_driving",
            short_label="Night",
            kind=FeatureKind.MOVING,
            dtype=FeatureDtype.NUMERIC,
            description="fraction of the segment driven between 23:00-05:00",
            extractor=night_fraction,
            phrase=night_phrase,
        )
    )

    # Step 2: regular values are collected automatically when the feature
    # map is trained with the extended registry.
    base = CityScenario.build(ScenarioConfig(seed=77, n_training_trips=300))
    training = base.fleet.generate(
        300, np.random.default_rng(1), days=3, id_prefix="ext-train"
    )
    stmaker = STMaker.train(
        base.network, base.landmarks, (t.raw for t in training),
        config=SummarizerConfig(), registry=registry,
    )

    # A 3 a.m. trip: the night-driving feature is wildly irregular compared
    # with the (mostly daytime) historical corpus, so it gets narrated.
    trip = base.simulate_trip(depart_time=3 * 3600.0)
    summary = stmaker.summarize(trip.raw, k=2)
    print(summary.text)
    print()
    for partition in summary.partitions:
        for assessment in partition.assessments:
            if assessment.key == "night_driving":
                print(
                    f"night_driving: observed={assessment.observed:.2f} "
                    f"regular={assessment.regular:.2f} "
                    f"irregular rate={assessment.irregular_rate:.2f}"
                )


if __name__ == "__main__":
    main()
