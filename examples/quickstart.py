"""Quickstart: build a city, simulate a trip, summarize it (Fig. 6 style).

Run with::

    python examples/quickstart.py

Everything is deterministic given the seed: the synthetic city, the
landmark dataset, the training corpus the summarizer learns from, and the
test trip itself.
"""

from repro.simulate import CityScenario, ScenarioConfig


def main() -> None:
    # Build the whole substrate: road network, POIs, landmarks (with HITS
    # significance), check-ins, taxi training corpus, trained STMaker.
    scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=400))
    print(
        f"city: {scenario.network.node_count} intersections, "
        f"{scenario.network.edge_count} road segments, "
        f"{len(scenario.landmarks)} landmarks"
    )

    # Simulate one fresh morning trip (not part of the training data).
    trip = scenario.simulate_trip(depart_time=8.5 * 3600.0)
    print(
        f"trip: {len(trip.raw)} GPS samples over {trip.raw.duration_s:.0f} s, "
        f"ground truth: {len(trip.stops)} stop(s), {len(trip.u_turns)} U-turn(s)\n"
    )

    # The paper's Fig. 6: the same trajectory at growing granularity.
    for k in (1, 2, 3):
        summary = scenario.stmaker.summarize(trip.raw, k=k)
        print(f"--- k = {k} ---")
        print(summary.text)
        print()

    # The structured result carries everything the text was built from.
    summary = scenario.stmaker.summarize(trip.raw, k=2)
    for partition in summary.partitions:
        selected = ", ".join(a.key for a in partition.selected) or "(none)"
        print(
            f"partition {partition.span.start_seg}..{partition.span.end_seg}: "
            f"{partition.source_name} -> {partition.destination_name}; "
            f"selected features: {selected}"
        )


if __name__ == "__main__":
    main()
