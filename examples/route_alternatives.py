"""Route alternatives: popular route vs. shortest paths.

Demonstrates the historical-knowledge substrate directly: for an
origin/destination pair, compare

* the *most popular route* mined from the training corpus (what STMaker's
  feature selection compares every trajectory against, Sec. V-A), with
* the top-3 shortest road paths (Yen's algorithm on the road network).

When the two disagree, a driver following the shortest path gets routing
features flagged as irregular — exactly the situation summarized as
"through feeder road while most drivers choose express road".
"""

import numpy as np

from repro.roadnet import k_shortest_paths
from repro.simulate import CityScenario, ScenarioConfig


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=13, n_training_trips=600))
    rng = np.random.default_rng(2)

    miner = scenario.stmaker.popular_routes
    landmarks = scenario.landmarks
    network = scenario.network

    shown = 0
    for _ in range(50):
        if shown >= 3:
            break
        origin, destination = scenario.fleet.sample_od(rng)
        # Popular route operates on landmarks: anchor the OD nodes.
        src = landmarks.nearest(network.node(origin).point)
        dst = landmarks.nearest(network.node(destination).point)
        if src is None or dst is None:
            continue
        route = miner.popular_route(src[1].landmark_id, dst[1].landmark_id)
        if route is None or len(route) < 3:
            continue
        shown += 1
        print(f"=== {src[1].name}  ->  {dst[1].name} ===")
        names = [landmarks.get(lid).name for lid in route]
        print(f"popular route ({len(route)} landmarks, "
              f"popularity {miner.route_popularity(route):.2e}):")
        print("  " + "  ->  ".join([names[0], "...", names[-1]]))

        for rank, (cost, path) in enumerate(
            k_shortest_paths(network, origin, destination, k=3), start=1
        ):
            grades = {e.grade.display_name for e in network.path_edges(path)}
            print(
                f"shortest path #{rank}: {cost / 1000.0:.2f} km over "
                f"{len(path) - 1} segments ({', '.join(sorted(grades))})"
            )
        print()


if __name__ == "__main__":
    main()
