"""Travel diary (a motivating application from the paper's intro).

"During traveling, an automatically generated trajectory summary is a good
travel diary, which can be shared to friends via Twitter or Facebook."

This example follows one simulated taxi through a working day and renders
its trips as a diary, one entry per trip, with timestamps formatted like
the paper's Table I.  It also round-trips one trip through the CSV format
to show the pipeline runs off plain ``lat,lon,timestamp`` files.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import format_timestamp, read_trajectory_csv, write_trajectory_csv


def main() -> None:
    scenario = CityScenario.build(ScenarioConfig(seed=55, n_training_trips=400))
    rng = np.random.default_rng(9)

    print("=== travel diary, one simulated day ===\n")
    for hour in (7.5, 12.25, 18.75):
        trip = scenario.simulate_trip(depart_time=hour * 3600.0, rng=rng)
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        start = format_timestamp(trip.raw.start_time)
        end = format_timestamp(trip.raw.end_time)
        print(f"[{start} – {end[-8:]}]")
        print(f"  {summary.text}\n")

    # The same pipeline runs off plain CSV files (Table I format).
    trip = scenario.simulate_trip(depart_time=15 * 3600.0, rng=rng)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trip.csv"
        write_trajectory_csv(trip.raw, path)
        loaded = read_trajectory_csv(path)
        summary = scenario.stmaker.summarize(loaded)
        print("=== summarized from CSV ===")
        print(f"  file: {path.name}, {len(loaded)} rows")
        print(f"  {summary.text}")


if __name__ == "__main__":
    main()
