"""Chaos suite: worker death is contained, attributed, and bounded.

The acceptance contract for shard supervision: a process-executor batch
with a poison item that *kills its worker* (``os._exit``, simulated OOM
SIGKILL, or a hang) must still complete — every healthy item summarized
exactly as serial would, the poison quarantined with a typed
``WorkerCrashError``, input order preserved, and the batch never hangs
or aborts with ``BrokenProcessPool``.

The differential half runs under the ``SERVING_TEST_EXECUTOR`` matrix:
for the thread executor crash-grade faults raise ``WorkerCrashError``
in-parent (process death would take the test runner), so both executors
must reach the *same verdicts* — same indices, same trajectory ids, same
error type — as the serial reference.  Crash **messages** legitimately
differ (serial sees the injected raise, the supervisor synthesizes a
post-mortem), so verdict comparisons use ``(index, trajectory_id,
error_type)``, not full entry equality.

Everything here is deterministic: faults target explicit trajectory ids
(``FaultSpec.trajectory_id``), so scheduling order and worker re-arming
cannot change which items die.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.exceptions import WorkerCrashError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultSpec
from repro.serving import ShardRetryPolicy
from repro.trajectory import RawTrajectory

#: Worker count of the parallel side (CI matrix 1/4).
WORKERS = int(os.environ.get("SERVING_TEST_WORKERS", "4"))

#: Pool backend of the matrix-differential tests (CI matrix thread/process).
EXECUTOR = os.environ.get("SERVING_TEST_EXECUTOR", "thread")

#: No-backoff policy so containment tests converge fast; retries/bisection
#: still run, they just don't sleep.
FAST_RETRY = ShardRetryPolicy(max_retries=1, backoff_base_s=0.0)

#: Quarantine-quickly policy for tests where retries are not the point.
NO_RETRY = ShardRetryPolicy(max_retries=0, backoff_base_s=0.0)


@pytest.fixture(scope="module")
def corpus(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(88)
    sims = [
        scenario.simulate_trips(1, depart_time=(6.5 + 0.7 * i) * 3600.0, rng=rng)[0]
        for i in range(8)
    ]
    return [
        RawTrajectory(s.raw.points, f"ct-{i:02d}") for i, s in enumerate(sims)
    ]


@pytest.fixture(scope="module")
def stmaker(scenario):
    return scenario.stmaker


@pytest.fixture()
def clean_obs():
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_events()


def _crash_specs(*trajectory_ids: str, kind: str = "crash", stage: str = "extract"):
    return [
        FaultSpec(stage=stage, kind=kind, times=None, trajectory_id=tid)
        for tid in trajectory_ids
    ]


def _verdicts(batch) -> set[tuple[int, str, str]]:
    """What failed and why — the cross-executor comparable projection."""
    return {
        (e.index, e.trajectory_id, e.error_type) for e in batch.quarantined
    }


def _assert_healthy_match_serial(serial, chaotic, poison_ids: set[str]) -> None:
    """Every non-poison item must come out exactly as the serial run's."""
    serial_by_id = {s.trajectory_id: s for s in serial.summaries}
    chaotic_ids = [s.trajectory_id for s in chaotic.summaries]
    assert chaotic_ids == [
        s.trajectory_id for s in serial.summaries if s.trajectory_id not in poison_ids
    ], "input order must be preserved among survivors"
    for summary in chaotic.summaries:
        reference = serial_by_id[summary.trajectory_id]
        assert summary.text == reference.text
        assert summary.partitions == reference.partitions
        assert summary.degradation.to_dict() == reference.degradation.to_dict()


# -- the acceptance proof: a worker-killing item cannot take the batch --------


class TestCrashContainment:
    def test_poison_crash_is_quarantined_batch_completes(
        self, stmaker, corpus, clean_obs
    ):
        """workers=4, one item calls ``os._exit`` in its worker: the batch
        completes, survivors match serial, the poison is quarantined with
        a typed ``WorkerCrashError``, and order is preserved."""
        serial = stmaker.summarize_many(corpus, k=2)

        registry = obs.enable_metrics(MetricsRegistry())
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        poison = corpus[3].trajectory_id
        injector = FaultInjector(_crash_specs(poison))
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(
                corpus, k=2, workers=4, shard_size=2, executor="process",
                shard_retry=FAST_RETRY,
            )

        assert batch.ok_count == len(corpus) - 1
        [entry] = batch.quarantined
        assert entry.index == 3
        assert entry.trajectory_id == poison
        assert entry.error_type == "WorkerCrashError"
        assert "worker process died" in entry.error
        assert entry.attempts >= 1
        assert entry.shard_id is not None  # forensics: which shard served it
        _assert_healthy_match_serial(serial, batch, {poison})

        # The containment machinery visibly did its job.
        assert registry.counter("serving.crashes").value >= 1.0
        assert registry.counter("serving.retried_shards").value >= 1.0
        actions = {e.payload["action"] for e in log.events("shard_retry")}
        assert "quarantine" in actions

    def test_oom_sim_is_contained_identically(self, stmaker, corpus, clean_obs):
        """SIGKILL (the OOM killer's signature) gets the same containment."""
        poison = corpus[5].trajectory_id
        injector = FaultInjector(_crash_specs(poison, kind="oom-sim"))
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(
                corpus, k=2, workers=2, shard_size=2, executor="process",
                shard_retry=NO_RETRY,
            )
        assert batch.ok_count == len(corpus) - 1
        [entry] = batch.quarantined
        assert entry.trajectory_id == poison
        assert entry.error_type == "WorkerCrashError"

    def test_bisection_rescues_healthy_shardmates(
        self, stmaker, corpus, clean_obs
    ):
        """With big shards the poison's shardmates must not be collateral:
        the supervisor bisects the crashing shard down to the single
        poison item and only that one is quarantined."""
        registry = obs.enable_metrics(MetricsRegistry())
        poison = corpus[2].trajectory_id
        injector = FaultInjector(_crash_specs(poison))
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(
                corpus, k=2, workers=2, shard_size=4, executor="process",
                shard_retry=NO_RETRY,
            )
        assert batch.ok_count == len(corpus) - 1
        assert _verdicts(batch) == {(2, poison, "WorkerCrashError")}
        assert registry.counter("serving.bisected_shards").value >= 1.0

    def test_multiple_poison_items(self, stmaker, corpus, clean_obs):
        poisons = {corpus[1].trajectory_id, corpus[6].trajectory_id}
        injector = FaultInjector(_crash_specs(*sorted(poisons)))
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(
                corpus, k=2, workers=4, shard_size=2, executor="process",
                shard_retry=NO_RETRY,
            )
        assert batch.ok_count == len(corpus) - 2
        assert {e.trajectory_id for e in batch.quarantined} == poisons
        assert all(
            e.error_type == "WorkerCrashError" for e in batch.quarantined
        )

    def test_strict_mode_raises_typed_worker_crash(self, stmaker, corpus):
        """``strict=True`` still never surfaces ``BrokenProcessPool``: the
        proven poison aborts the batch with ``WorkerCrashError``."""
        injector = FaultInjector(_crash_specs(corpus[0].trajectory_id))
        with injector.installed(stmaker):
            with pytest.raises(WorkerCrashError, match="worker process died"):
                stmaker.summarize_many(
                    corpus, k=2, workers=2, shard_size=2, executor="process",
                    shard_retry=NO_RETRY, strict=True,
                )


class TestHangContainment:
    def test_hung_worker_is_killed_and_quarantined(
        self, stmaker, corpus, clean_obs
    ):
        """A worker that stops making progress (sleeps "forever") is
        detected by the progress window, killed, and its item quarantined
        — the batch returns instead of parking on a dead future."""
        poison = corpus[4].trajectory_id
        small = corpus[:6]
        injector = FaultInjector(_crash_specs(poison, kind="hang"))
        policy = ShardRetryPolicy(
            max_retries=0, backoff_base_s=0.0, hang_timeout_s=1.0
        )
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(
                small, k=2, workers=2, shard_size=1, executor="process",
                shard_retry=policy,
            )
        assert batch.ok_count == len(small) - 1
        [entry] = batch.quarantined
        assert entry.trajectory_id == poison
        assert entry.error_type == "WorkerCrashError"
        assert "(hang)" in entry.error


# -- the differential half: both executors reach the serial verdicts ---------


class TestChaosDifferential:
    def test_crash_verdicts_match_serial(self, stmaker, corpus, clean_obs):
        """Serial, thread, and process executors must quarantine the same
        items for the same typed reason under the same crash faults."""
        poisons = {corpus[2].trajectory_id, corpus[5].trajectory_id}

        def run(workers: int):
            injector = FaultInjector(_crash_specs(*sorted(poisons)))
            with injector.installed(stmaker):
                if workers == 1:
                    return stmaker.summarize_many(corpus, k=2)
                return stmaker.summarize_many(
                    corpus, k=2, workers=workers, shard_size=2,
                    executor=EXECUTOR, shard_retry=FAST_RETRY,
                )

        serial, parallel = run(1), run(WORKERS)
        assert _verdicts(serial) == {
            (i, raw.trajectory_id, "WorkerCrashError")
            for i, raw in enumerate(corpus)
            if raw.trajectory_id in poisons
        }
        assert _verdicts(parallel) == _verdicts(serial)
        assert parallel.ok_count == serial.ok_count
        _assert_healthy_match_serial(serial, parallel, poisons)
        # Sanitization reports match wherever an item actually ran.
        for i, raw in enumerate(corpus):
            if raw.trajectory_id not in poisons:
                assert parallel.sanitization[i] == serial.sanitization[i]
        if EXECUTOR == "thread":
            # In-parent crash faults raise, so even the messages agree.
            assert parallel.quarantined == serial.quarantined

    def test_fault_free_supervised_run_matches_serial_exactly(
        self, stmaker, corpus, clean_obs
    ):
        """Supervision must be invisible when nothing crashes: full
        element-wise equality, including batch telemetry totals."""
        serial_registry = obs.enable_metrics(MetricsRegistry())
        serial = stmaker.summarize_many(corpus, k=2)
        obs.disable_metrics()

        registry = obs.enable_metrics(MetricsRegistry())
        parallel = stmaker.summarize_many(
            corpus, k=2, workers=WORKERS, shard_size=2, executor=EXECUTOR,
            shard_retry=FAST_RETRY,
        )
        assert parallel.ok_count == serial.ok_count
        assert parallel.quarantined == serial.quarantined
        assert parallel.sanitization == serial.sanitization
        for ours, theirs in zip(parallel.summaries, serial.summaries, strict=True):
            assert ours.trajectory_id == theirs.trajectory_id
            assert ours.text == theirs.text
            assert ours.partitions == theirs.partitions
        for name in ("resilience.batch.items", "resilience.batch.quarantined"):
            ours = registry.get(name)
            theirs = serial_registry.get(name)
            assert (ours.value if ours else 0.0) == (
                theirs.value if theirs else 0.0
            )
        # No containment machinery fired on a healthy batch.
        assert registry.get("serving.crashes") is None
        assert registry.get("serving.retried_shards") is None
