"""Tests for the per-segment feature pipeline on the simulated city."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features import (
    ExtractionContext,
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    FeaturePipeline,
    default_registry,
)
from repro.trajectory import RawTrajectory, TrajectoryPoint


@pytest.fixture(scope="module")
def calibrated_trip(scenario):
    rng = np.random.default_rng(17)
    trip = scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]
    symbolic = scenario.stmaker.calibrator.calibrate(trip.raw)
    return trip, symbolic


class TestExtract:
    def test_one_row_per_segment(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        rows = scenario.stmaker.pipeline.extract(trip.raw, symbolic)
        assert len(rows) == symbolic.segment_count

    def test_all_registry_keys_present(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        rows = scenario.stmaker.pipeline.extract(trip.raw, symbolic)
        keys = set(scenario.registry.keys())
        for row in rows:
            assert set(row.values) == keys

    def test_values_sane(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        rows = scenario.stmaker.pipeline.extract(trip.raw, symbolic)
        for row in rows:
            assert 1 <= row.values["grade_of_road"] <= 7
            assert row.values["road_width"] > 0
            assert row.values["traffic_direction"] in (1.0, 2.0)
            assert 0 <= row.values["speed"] < 150.0
            assert row.values["stay_points"] >= 0
            assert row.values["u_turns"] >= 0

    def test_segment_alignment(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        rows = scenario.stmaker.pipeline.extract(trip.raw, symbolic)
        for i, row in enumerate(rows):
            assert row.segment.index == i

    def test_extract_moving_matches_full_extraction(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        pipeline = scenario.stmaker.pipeline
        full = pipeline.extract(trip.raw, symbolic)
        for segment, row in zip(symbolic.segments(), full):
            values, moving = pipeline.extract_moving(trip.raw, segment)
            for key in ("speed", "stay_points", "u_turns"):
                assert values[key] == row.values[key]
            assert moving.stay_count == row.moving.stay_count

    def test_sparse_segment_fallback(self, scenario):
        # A segment window with fewer than 2 raw samples must still produce
        # features (landmark endpoints stand in; routing via hop path).
        landmarks = scenario.landmarks
        ids = landmarks.ids()
        a, b = landmarks.get(ids[0]), None
        hit = landmarks.within(a.point, 1_500.0)
        b = next(lm for d, lm in hit if lm.landmark_id != a.landmark_id and d > 200.0)
        from repro.trajectory import SymbolicEntry, SymbolicTrajectory

        symbolic = SymbolicTrajectory(
            [SymbolicEntry(a.landmark_id, 1000.0), SymbolicEntry(b.landmark_id, 1060.0)]
        )
        # Raw trajectory whose samples fall entirely outside the window.
        raw = RawTrajectory(
            [TrajectoryPoint(a.point, 0.0), TrajectoryPoint(b.point, 10.0)]
        )
        rows = scenario.stmaker.pipeline.extract(raw, symbolic)
        assert len(rows) == 1
        assert rows[0].values["speed"] > 0.0


class TestCustomFeatures:
    def test_custom_extractor_used(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        registry = default_registry()
        registry.register(
            FeatureDefinition(
                "sample_density", "SD", FeatureKind.MOVING, FeatureDtype.NUMERIC,
                extractor=lambda ctx: float(len(ctx.points)),
            )
        )
        pipeline = FeaturePipeline(scenario.network, scenario.landmarks, registry)
        rows = pipeline.extract(trip.raw, symbolic)
        assert all(row.values["sample_density"] >= 2 for row in rows)

    def test_missing_extractor_rejected(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        registry = default_registry()
        registry.register(
            FeatureDefinition("ghost", "G", FeatureKind.MOVING, FeatureDtype.NUMERIC)
        )
        pipeline = FeaturePipeline(scenario.network, scenario.landmarks, registry)
        with pytest.raises(FeatureError):
            pipeline.extract(trip.raw, symbolic)

    def test_extraction_context_fields(self, scenario, calibrated_trip):
        trip, symbolic = calibrated_trip
        seen: list[ExtractionContext] = []

        def spy(ctx: ExtractionContext) -> float:
            seen.append(ctx)
            return 0.0

        registry = default_registry()
        registry.register(
            FeatureDefinition("spy", "S", FeatureKind.MOVING, FeatureDtype.NUMERIC,
                              extractor=spy)
        )
        pipeline = FeaturePipeline(scenario.network, scenario.landmarks, registry)
        pipeline.extract(trip.raw, symbolic)
        assert seen
        assert seen[0].network is scenario.network
        assert seen[0].routing is not None
        assert len(seen[0].points) >= 2


class TestHopFeatures:
    def test_hop_features_for_neighbouring_landmarks(self, scenario):
        ids = scenario.landmarks.ids()
        origin = scenario.landmarks.get(ids[0])
        near = scenario.landmarks.within(origin.point, 1_000.0)
        target = next(lm for d, lm in near if d > 100.0)
        hop = scenario.stmaker.pipeline.hop_features(
            origin.landmark_id, target.landmark_id
        )
        assert hop.width_m > 0
        assert hop.road_name
