"""Tests for haversine, the local projector, and point-segment distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import GeoPoint, LocalProjector, haversine_m, point_segment_distance_m

CENTER = GeoPoint(39.91, 116.40)

city_offset = st.floats(min_value=-15_000.0, max_value=15_000.0, allow_nan=False)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


class TestHaversine:
    def test_zero_for_identical_points(self):
        assert haversine_m(CENTER, CENTER) == 0.0

    def test_one_degree_latitude(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(1.0, 0.0)
        # One degree of latitude is ~111.2 km on the sphere.
        assert haversine_m(a, b) == pytest.approx(111_195, rel=1e-3)

    def test_symmetry(self):
        a = GeoPoint(39.9383, 116.339)
        b = GeoPoint(39.9253, 116.310)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))

    def test_known_city_distance(self):
        # Two points from Table I of the paper; roughly 2.9 km apart.
        a = GeoPoint(39.9383, 116.339)
        b = GeoPoint(39.9253, 116.310)
        assert 2_500 < haversine_m(a, b) < 3_200


class TestLocalProjector:
    def test_origin_maps_to_zero(self, projector):
        assert projector.to_xy(CENTER) == (0.0, 0.0)

    def test_roundtrip(self, projector):
        p = GeoPoint(39.95, 116.45)
        x, y = projector.to_xy(p)
        back = projector.to_point(x, y)
        assert back.lat == pytest.approx(p.lat, abs=1e-9)
        assert back.lon == pytest.approx(p.lon, abs=1e-9)

    def test_axes_orientation(self, projector):
        north = GeoPoint(CENTER.lat + 0.01, CENTER.lon)
        east = GeoPoint(CENTER.lat, CENTER.lon + 0.01)
        assert projector.to_xy(north)[1] > 0
        assert projector.to_xy(north)[0] == pytest.approx(0.0)
        assert projector.to_xy(east)[0] > 0
        assert projector.to_xy(east)[1] == pytest.approx(0.0)

    @given(city_offset, city_offset, city_offset, city_offset)
    def test_matches_haversine_at_city_scale(self, x1, y1, x2, y2):
        projector = LocalProjector(CENTER)
        a = projector.to_point(x1, y1)
        b = projector.to_point(x2, y2)
        fast = projector.distance_m(a, b)
        exact = haversine_m(a, b)
        # Equirectangular error at <= ~40 km scale must stay below 0.2 %.
        assert fast == pytest.approx(exact, rel=2e-3, abs=0.5)

    @given(city_offset, city_offset)
    def test_distance_zero_iff_same_point(self, x, y):
        projector = LocalProjector(CENTER)
        p = projector.to_point(x, y)
        assert projector.distance_m(p, p) == 0.0


class TestPointSegmentDistance:
    def test_point_on_segment(self, projector):
        a = projector.to_point(0.0, 0.0)
        b = projector.to_point(100.0, 0.0)
        mid = projector.to_point(50.0, 0.0)
        dist, frac = point_segment_distance_m(mid, a, b, projector)
        assert dist == pytest.approx(0.0, abs=1e-6)
        assert frac == pytest.approx(0.5, abs=1e-6)

    def test_perpendicular_distance(self, projector):
        a = projector.to_point(0.0, 0.0)
        b = projector.to_point(100.0, 0.0)
        p = projector.to_point(50.0, 30.0)
        dist, frac = point_segment_distance_m(p, a, b, projector)
        assert dist == pytest.approx(30.0, abs=1e-3)
        assert frac == pytest.approx(0.5, abs=1e-3)

    def test_clamps_before_start(self, projector):
        a = projector.to_point(0.0, 0.0)
        b = projector.to_point(100.0, 0.0)
        p = projector.to_point(-40.0, 30.0)
        dist, frac = point_segment_distance_m(p, a, b, projector)
        assert frac == 0.0
        assert dist == pytest.approx(50.0, abs=1e-3)

    def test_clamps_after_end(self, projector):
        a = projector.to_point(0.0, 0.0)
        b = projector.to_point(100.0, 0.0)
        p = projector.to_point(140.0, 30.0)
        dist, frac = point_segment_distance_m(p, a, b, projector)
        assert frac == 1.0
        assert dist == pytest.approx(50.0, abs=1e-3)

    def test_degenerate_segment(self, projector):
        a = projector.to_point(10.0, 10.0)
        p = projector.to_point(13.0, 14.0)
        dist, frac = point_segment_distance_m(p, a, a, projector)
        assert dist == pytest.approx(5.0, abs=1e-3)
        assert frac == 0.0

    @given(city_offset, city_offset, city_offset, city_offset, city_offset, city_offset)
    def test_distance_never_exceeds_endpoint_distance(self, px, py, ax, ay, bx, by):
        projector = LocalProjector(CENTER)
        p = projector.to_point(px, py)
        a = projector.to_point(ax, ay)
        b = projector.to_point(bx, by)
        dist, frac = point_segment_distance_m(p, a, b, projector)
        assert 0.0 <= frac <= 1.0
        assert dist <= projector.distance_m(p, a) + 1e-6
        assert dist <= projector.distance_m(p, b) + 1e-6
