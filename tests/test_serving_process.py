"""Process-executor specifics: telemetry relay, artifact wiring, pre-checks.

The differential suite (``test_serving_differential.py``) already proves
``executor="process"`` element-wise identical to serial when run with
``SERVING_TEST_EXECUTOR=process``; this file pins what is *unique* to the
process path — worker telemetry merged across the pickle boundary, the
explicit-artifact workflow, and the fail-fast checks for state that
cannot cross a process boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.serving import EXECUTORS, run_sharded


@pytest.fixture()
def stmaker(scenario):
    return scenario.stmaker


@pytest.fixture()
def trips(scenario):
    rng = np.random.default_rng(4321)
    return [
        t.raw
        for t in scenario.simulate_trips(8, depart_time=9 * 3600.0, rng=rng)
    ]


@pytest.fixture()
def clean_obs():
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_events()


def _deterministic_view(snapshot: dict) -> dict:
    """Counters and non-timing histogram buckets — the series that must be
    bit-identical between serial and process-sharded runs (same filter as
    the thread-mode merge differential in ``test_obs_aggregate.py``)."""
    out = {}
    for name, data in snapshot.items():
        if name.startswith("serving.") or name.startswith("artifact."):
            continue  # pool/artifact bookkeeping only exists when sharded
        if data["type"] == "counter":
            out[name] = ("counter", data["value"])
        elif data["type"] == "histogram":
            if "latency" in name or name.endswith("_ms"):
                out[name] = ("histogram", data["count"])
            else:
                out[name] = ("histogram", data["count"], dict(data["buckets"]))
    return out


class TestMergedTelemetry:
    def test_merged_metrics_equal_serial_registry(self, stmaker, trips, clean_obs):
        serial = obs.enable_metrics(MetricsRegistry())
        stmaker.summarize_many(trips, k=2)
        serial_view = _deterministic_view(serial.snapshot())
        obs.disable_metrics()

        merged = obs.enable_metrics(MetricsRegistry())
        stmaker.summarize_many(trips, k=2, workers=3, executor="process")
        merged_view = _deterministic_view(merged.snapshot())

        assert merged_view == serial_view
        assert merged_view["summarize.calls"] == ("counter", float(len(trips)))

    def test_worker_events_relayed_with_source(self, stmaker, trips, clean_obs):
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        stmaker.summarize_many(trips, k=2, workers=2, shard_size=4,
                               executor="process")

        shard_ends = log.events("shard_end")
        assert len(shard_ends) == 2
        # Worker-emitted events arrive through EventBus.relay: re-sequenced
        # on the parent bus, provenance preserved in relay_* payload keys.
        for event in shard_ends:
            assert event.payload["relay_source"].startswith("shard-")
        # Item-level pipeline events made the crossing too.
        assert len(log.events("stage_start")) > 0
        # Parent-side lifecycle events are emitted locally, not relayed.
        (batch_start,) = log.events("batch_start")
        assert "relay_source" not in batch_start.payload
        assert len(log.events("progress")) == len(trips)

    def test_worker_spans_grafted_into_parent_trace(self, stmaker, trips, clean_obs):
        collector = obs.enable_tracing()
        stmaker.summarize_many(trips, k=2, workers=2, shard_size=4,
                               executor="process")
        spans = collector.to_dicts()
        names = [s["name"] for s in spans]
        assert names.count("shard") == 2
        assert names.count("summarize") == len(trips)
        assert "summarize_many" in names
        # Grafted span ids were remapped into the parent's id space: unique,
        # and every shard span's children resolve within the batch.
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))


class TestExplicitArtifact:
    def test_explicit_artifact_path_equals_serial(self, stmaker, trips, tmp_path):
        from repro.artifact import save_artifact

        info = save_artifact(stmaker, tmp_path / "model.stm")
        serial = stmaker.summarize_many(trips, k=2)
        parallel = stmaker.summarize_many(
            trips, k=2, workers=2, executor="process",
            artifact=str(tmp_path / "model.stm"),
        )
        assert [s.text for s in parallel.summaries] == [
            s.text for s in serial.summaries
        ]
        assert info.fingerprint  # the file the workers actually served from

    def test_artifact_with_thread_executor_rejected(self, stmaker, trips, tmp_path):
        with pytest.raises(ConfigError, match="executor='process'"):
            stmaker.summarize_many(
                trips, k=2, workers=2, artifact=str(tmp_path / "m.stm")
            )

    def test_unknown_executor_rejected(self, stmaker, trips):
        with pytest.raises(ConfigError, match="unknown executor"):
            stmaker.summarize_many(trips, k=2, workers=2, executor="ray")
        assert EXECUTORS == ("thread", "process")


class TestProcessPreChecks:
    def test_unpicklable_sleeper_rejected_fast(self, stmaker, trips):
        with pytest.raises(ConfigError, match="picklable sleeper"):
            run_sharded(
                stmaker, trips, 2, workers=2, executor="process",
                sleeper=lambda s: None,
            )

    def test_custom_feature_registry_rejected(self, scenario, trips):
        from repro.features import (
            FeatureDefinition,
            FeatureDtype,
            FeatureKind,
            default_registry,
        )

        registry = default_registry()
        registry.register(FeatureDefinition(
            key="custom_zeros",
            short_label="zeros",
            kind=FeatureKind.MOVING,
            dtype=FeatureDtype.NUMERIC,
            description="a custom extractor that cannot cross processes",
            extractor=lambda ctx: 0.0,
        ))
        custom = scenario.stmaker
        sibling = type(custom)(
            custom.network, custom.landmarks, custom.transfers,
            custom.feature_map, config=custom.config, registry=registry,
            calibrator=custom.calibrator,
        )
        with pytest.raises(ConfigError, match="custom feature"):
            sibling.summarize_many(trips, k=2, workers=2, executor="process")
