"""Tests for turning-point extraction and landmark dataset assembly."""

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, LocalProjector
from repro.landmarks import (
    LandmarkConfig,
    LandmarkKind,
    POIConfig,
    build_landmarks,
    extract_turning_points,
    generate_pois,
    noise_ratio,
)
from repro.roadnet import RoadGrade, RoadNetwork, TrafficDirection

CENTER = GeoPoint(39.91, 116.40)


def straight_then_bend_network(bend_deg: float) -> RoadNetwork:
    """Three-node path whose middle node bends by *bend_deg*."""
    import math

    projector = LocalProjector(CENTER)
    net = RoadNetwork(projector)
    net.add_node(projector.to_point(-500.0, 0.0))  # 0
    net.add_node(projector.to_point(0.0, 0.0))     # 1 (the bend)
    rad = math.radians(bend_deg)
    net.add_node(projector.to_point(500.0 * math.cos(rad), 500.0 * math.sin(rad)))  # 2
    net.add_edge(0, 1, RoadGrade.COUNTRY, 10.0, TrafficDirection.TWO_WAY, "A Road")
    net.add_edge(1, 2, RoadGrade.COUNTRY, 10.0, TrafficDirection.TWO_WAY, "A Road")
    return net


class TestTurningPoints:
    def test_straight_degree2_node_excluded(self):
        net = straight_then_bend_network(bend_deg=5.0)
        ids = {nid for nid, _ in extract_turning_points(net, bend_threshold_deg=30.0)}
        assert 1 not in ids

    def test_sharp_bend_included(self):
        net = straight_then_bend_network(bend_deg=60.0)
        ids = {nid for nid, _ in extract_turning_points(net, bend_threshold_deg=30.0)}
        assert 1 in ids

    def test_dead_ends_included(self):
        net = straight_then_bend_network(bend_deg=5.0)
        ids = {nid for nid, _ in extract_turning_points(net)}
        assert {0, 2} <= ids

    def test_intersections_included(self, micro_network):
        ids = {nid for nid, _ in extract_turning_points(micro_network)}
        # Every node of the 3x3 grid has degree >= 2 with perpendicular
        # roads; corners have degree 2 with a 90-degree through-bend.
        assert ids == set(range(9))

    def test_intersection_name_joins_roads(self, micro_network):
        names = dict(extract_turning_points(micro_network))
        assert names[4] == "Col 1 Lane & Row 1 Avenue"

    def test_city_yields_many_turning_points(self, city):
        points = extract_turning_points(city)
        assert len(points) > city.node_count * 0.8


class TestBuildLandmarks:
    @pytest.fixture(scope="class")
    def landmark_index(self, city):
        bbox = city.bounding_box()
        pois = generate_pois(
            POIConfig(count=800), bbox, city.projector, np.random.default_rng(0)
        )
        return build_landmarks(city, pois, LandmarkConfig())

    def test_contains_both_kinds(self, landmark_index):
        kinds = {lm.kind for lm in landmark_index}
        assert kinds == {LandmarkKind.TURNING_POINT, LandmarkKind.POI_CLUSTER}

    def test_ids_unique_and_dense(self, landmark_index):
        ids = sorted(lm.landmark_id for lm in landmark_index)
        assert ids == list(range(len(ids)))

    def test_all_landmarks_named(self, landmark_index):
        assert all(lm.name for lm in landmark_index)

    def test_initial_significance_zero(self, landmark_index):
        assert all(lm.significance == 0.0 for lm in landmark_index)

    def test_poi_cluster_separated_from_turning_points(self, landmark_index):
        # After the merge step, no POI-cluster landmark may sit within the
        # merge radius of a turning point.
        config = LandmarkConfig()
        turning = [
            lm for lm in landmark_index if lm.kind is LandmarkKind.TURNING_POINT
        ]
        projector = landmark_index.projector
        for lm in landmark_index:
            if lm.kind is not LandmarkKind.POI_CLUSTER:
                continue
            nearest_tp = min(
                projector.distance_m(lm.point, tp.point) for tp in turning
            )
            assert nearest_tp > config.merge_radius_m


class TestNoiseRatio:
    def test_empty(self):
        assert noise_ratio([]) == 0.0

    def test_mixed(self):
        assert noise_ratio([0, -1, 1, -1]) == 0.5
