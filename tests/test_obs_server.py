"""Tests for the live HTTP ops surface (repro.obs.server)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, OpsServer


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.stop_ops_server()
    obs.disable_flight_recorder()
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.stop_ops_server()
    obs.disable_flight_recorder()
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


def _get(url: str):
    """(status, body bytes, content-type) — without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read(), response.headers.get("Content-Type")
    except urllib.error.HTTPError as err:
        return err.code, err.read(), err.headers.get("Content-Type")


def _get_json(url: str):
    status, body, _ = _get(url)
    return status, json.loads(body)


@pytest.fixture
def server():
    srv = obs.start_ops_server()
    yield srv
    obs.stop_ops_server()


class TestEndpoints:
    def test_healthz_is_always_alive(self, server):
        status, payload = _get_json(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_readyz_flips_with_mark_ready(self, server):
        status, payload = _get_json(server.url + "/readyz")
        assert status == 503 and payload["ready"] is False
        obs.mark_ready()
        status, payload = _get_json(server.url + "/readyz")
        assert status == 200 and payload["ready"] is True
        obs.mark_ready(False)
        status, _ = _get_json(server.url + "/readyz")
        assert status == 503

    def test_ready_check_callable_wins(self):
        warm = {"done": False}
        with OpsServer(ready_check=lambda: warm["done"]).start() as srv:
            assert _get(srv.url + "/readyz")[0] == 503
            warm["done"] = True
            assert _get(srv.url + "/readyz")[0] == 200

    def test_metrics_serves_live_prometheus_exposition(self, server):
        registry = obs.enable_metrics()
        registry.counter("summarize.calls").inc(3)
        registry.histogram("lat.ms", buckets=(1.0, 10.0)).observe(2.0)
        status, body, content_type = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        families = obs.parse_prometheus(body.decode("utf-8"))
        assert families["summarize_calls_total"]["type"] == "counter"
        assert families["lat_ms"]["type"] == "histogram"

    def test_metrics_with_pinned_registry(self):
        pinned = MetricsRegistry()
        pinned.counter("pinned.calls").inc(7)
        obs.enable_metrics().counter("live.calls").inc(1)
        with OpsServer(registry=pinned).start() as srv:
            _, body, _ = _get(srv.url + "/metrics")
        text = body.decode("utf-8")
        assert "pinned_calls_total 7" in text
        assert "live_calls_total" not in text

    def test_status_is_a_run_report_snapshot(self, server):
        obs.enable_metrics().counter("summarize.calls").inc()
        status, payload = _get_json(server.url + "/status")
        assert status == 200
        assert "metrics" in payload and "resilience" in payload
        ops = payload["ops"]
        assert ops["ready"] is False
        assert ops["uptime_s"] >= 0.0
        assert ops["url"] == server.url

    def test_status_includes_slo_block_when_engine_active(self, server):
        _, payload = _get_json(server.url + "/status")
        assert "slo" not in payload  # no engine, no block
        obs.enable_slo([obs.SLObjective(
            name="lat", kind="latency_p95", threshold_ms=100.0,
            min_samples=1,
        )])
        try:
            for _ in range(3):
                obs.emit_event("item_end", ok=True, duration_ms=500.0)
            status, payload = _get_json(server.url + "/status")
            assert status == 200
            slo = payload["slo"]
            assert slo["samples"] == 3
            objective = slo["objectives"][0]
            assert objective["objective"]["name"] == "lat"
            assert objective["breached"] is True
            assert objective["p95_ms"] == pytest.approx(500.0)
        finally:
            obs.disable_slo()

    def test_events_tail_and_n_param(self, server):
        bus = obs.enable_events()
        for i in range(5):
            bus.emit("progress", done=i)
        status, payload = _get_json(server.url + "/events?n=2")
        assert status == 200
        assert payload["count"] == 2
        assert payload["events_seen"] == 5
        assert [e["payload"]["done"] for e in payload["events"]] == [3, 4]

    def test_events_bad_n_is_400(self, server):
        status, payload = _get_json(server.url + "/events?n=bogus")
        assert status == 400 and "invalid n" in payload["error"]

    def test_unknown_path_is_404_with_directory(self, server):
        status, payload = _get_json(server.url + "/nope")
        assert status == 404
        assert "/metrics" in payload["endpoints"]
        assert "/status" in payload["endpoints"]


class TestLifecycle:
    def test_start_twice_stops_the_first(self):
        first = obs.start_ops_server()
        first_url = first.url
        second = obs.start_ops_server()
        assert obs.active_ops_server() is second
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(first_url + "/healthz", timeout=1.0)
        assert _get(second.url + "/healthz")[0] == 200

    def test_stop_is_idempotent_and_mark_ready_is_safe_without_server(self):
        obs.stop_ops_server()
        obs.stop_ops_server()
        obs.mark_ready()  # no server: must not raise
        assert obs.active_ops_server() is None

    def test_owned_tail_recorder_unsubscribes_on_stop(self):
        server = obs.start_ops_server()
        bus = obs.enable_events()
        before = bus.subscriber_count
        assert before >= 1, "the server's tail recorder listens on the bus"
        obs.stop_ops_server()
        assert bus.subscriber_count == before - 1

    def test_reuses_the_active_flight_recorder(self):
        recorder = obs.enable_flight_recorder(capacity=8)
        server = obs.start_ops_server()
        obs.emit_event("progress", done=1)
        _, payload = _get_json(server.url + "/events")
        assert payload["count"] == 1, "/events reads the shared recorder"
        assert recorder.events_seen == 1, "no duplicate subscription"


class TestMidBatchIntegration:
    def test_scrape_during_a_running_batch(self, scenario):
        """The acceptance check: while ``summarize_many`` runs, /metrics
        returns exposition that parses and /status returns well-formed
        JSON reflecting the in-flight run."""
        rng = np.random.default_rng(606)
        trips = [
            t.raw
            for t in scenario.simulate_trips(3, depart_time=9 * 3600.0, rng=rng)
        ]
        obs.enable_metrics()
        obs.enable_events()
        server = obs.start_ops_server()
        scraped: dict[str, object] = {}

        def probe(snapshot) -> None:
            # Runs between items — the batch is mid-flight by construction.
            if scraped:
                return
            status, body, _ = _get(server.url + "/metrics")
            assert status == 200
            scraped["families"] = obs.parse_prometheus(body.decode("utf-8"))
            status, payload = _get_json(server.url + "/status")
            assert status == 200
            scraped["status"] = payload

        result = scenario.stmaker.summarize_many(trips, k=2, progress=probe)
        assert result.ok_count == 3
        families = scraped["families"]
        assert "summarize_calls_total" in families
        [(_, _, calls)] = families["summarize_calls_total"]["samples"]
        assert 1 <= calls <= 3, "scraped mid-run, not after the batch"
        status_payload = scraped["status"]
        assert status_payload["ops"]["events_seen"] > 0
        assert status_payload["metrics"], "RunReport snapshot has live metrics"
