"""Tests for the road-network graph structure and spatial queries."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.geo import GeoPoint, LocalProjector
from repro.roadnet import RoadGrade, RoadNetwork, TrafficDirection

CENTER = GeoPoint(39.91, 116.40)


class TestConstruction:
    def test_add_node_autoassigns_ids(self):
        net = RoadNetwork(LocalProjector(CENTER))
        a = net.add_node(CENTER)
        b = net.add_node(GeoPoint(39.92, 116.41))
        assert (a.node_id, b.node_id) == (0, 1)

    def test_duplicate_node_id_rejected(self):
        net = RoadNetwork(LocalProjector(CENTER))
        net.add_node(CENTER, node_id=5)
        with pytest.raises(RoadNetworkError):
            net.add_node(CENTER, node_id=5)

    def test_edge_requires_existing_endpoints(self):
        net = RoadNetwork(LocalProjector(CENTER))
        net.add_node(CENTER)
        with pytest.raises(RoadNetworkError):
            net.add_edge(0, 99, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "x")

    def test_self_loop_rejected(self):
        net = RoadNetwork(LocalProjector(CENTER))
        net.add_node(CENTER)
        with pytest.raises(RoadNetworkError):
            net.add_edge(0, 0, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "x")

    def test_nonpositive_width_rejected(self):
        net = RoadNetwork(LocalProjector(CENTER))
        net.add_node(CENTER)
        net.add_node(GeoPoint(39.92, 116.41))
        with pytest.raises(RoadNetworkError):
            net.add_edge(0, 1, RoadGrade.FEEDER, 0.0, TrafficDirection.TWO_WAY, "x")

    def test_edge_length_computed(self):
        projector = LocalProjector(CENTER)
        net = RoadNetwork(projector)
        net.add_node(projector.to_point(0.0, 0.0))
        net.add_node(projector.to_point(300.0, 400.0))
        edge = net.add_edge(0, 1, RoadGrade.COUNTRY, 10.0, TrafficDirection.TWO_WAY, "x")
        assert edge.length_m == pytest.approx(500.0, rel=1e-6)

    def test_unknown_lookups_raise(self):
        net = RoadNetwork(LocalProjector(CENTER))
        with pytest.raises(RoadNetworkError):
            net.node(0)
        with pytest.raises(RoadNetworkError):
            net.edge(0)


class TestEdgeSemantics:
    def test_other_end(self, micro_network):
        edge = micro_network.edge_between(0, 1)
        assert edge.other_end(0) == 1
        assert edge.other_end(1) == 0
        with pytest.raises(RoadNetworkError):
            edge.other_end(42)

    def test_two_way_allows_both(self, micro_network):
        edge = micro_network.edge_between(0, 1)
        assert edge.allows(0, 1)
        assert edge.allows(1, 0)

    def test_one_way_allows_single_direction(self, micro_network):
        # Column 1 is one-way northbound: 1 -> 4 -> 7.
        assert micro_network.edge_between(1, 4) is not None
        assert micro_network.edge_between(4, 1) is None
        assert micro_network.edge_between(4, 7) is not None
        assert micro_network.edge_between(7, 4) is None


class TestTopology:
    def test_counts(self, micro_network):
        assert micro_network.node_count == 9
        assert micro_network.edge_count == 12

    def test_neighbors_respect_direction(self, micro_network):
        # Node 4 can reach 3, 5 (row) and 7 (one-way up), but not 1.
        assert sorted(micro_network.neighbors(4)) == [3, 5, 7]
        # Node 1 can reach 0, 2 and 4.
        assert sorted(micro_network.neighbors(1)) == [0, 2, 4]

    def test_degree_is_undirected(self, micro_network):
        assert micro_network.degree(4) == 4
        assert micro_network.degree(0) == 2

    def test_incident_edges(self, micro_network):
        names = {e.name for e in micro_network.incident_edges(4)}
        assert names == {"Row 1 Avenue", "Col 1 Lane"}

    def test_path_edges_and_length(self, micro_network):
        edges = micro_network.path_edges([0, 1, 4, 7])
        assert len(edges) == 3
        assert micro_network.path_length_m([0, 1, 4, 7]) == pytest.approx(1500.0, rel=1e-3)

    def test_path_edges_rejects_untraversable(self, micro_network):
        with pytest.raises(RoadNetworkError):
            micro_network.path_edges([7, 4])  # against the one-way


class TestSpatialQueries:
    def test_nearest_node(self, micro_network, projector):
        probe = projector.to_point(520.0, 480.0)  # near node 4 at ~(500, 500)
        node = micro_network.nearest_node(probe)
        assert node is not None
        assert node.node_id == 4

    def test_nearest_node_out_of_range(self, micro_network, projector):
        probe = projector.to_point(50_000.0, 50_000.0)
        assert micro_network.nearest_node(probe, max_radius_m=1_000.0) is None

    def test_nodes_within(self, micro_network, projector):
        probe = projector.to_point(0.0, 0.0)
        ids = {n.node_id for _, n in micro_network.nodes_within(probe, 600.0)}
        assert ids == {0, 1, 3}

    def test_nearest_edge(self, micro_network, projector):
        # 30 m north of the midpoint of edge 0-1.
        probe = projector.to_point(250.0, 30.0)
        hit = micro_network.nearest_edge(probe)
        assert hit is not None
        dist, edge = hit
        assert {edge.u, edge.v} == {0, 1}
        assert dist == pytest.approx(30.0, abs=0.5)

    def test_edges_near_radius(self, micro_network, projector):
        probe = projector.to_point(250.0, 30.0)
        names = {e.name for _, e in micro_network.edges_near(probe, 300.0)}
        assert "Row 0 Avenue" in names

    def test_edge_bearing(self, micro_network):
        edge = micro_network.edge_between(0, 1)
        bearing = micro_network.edge_bearing_deg(edge, 0)
        assert bearing == pytest.approx(90.0, abs=1.0)  # eastbound
        bearing_back = micro_network.edge_bearing_deg(edge, 1)
        assert bearing_back == pytest.approx(270.0, abs=1.0)

    def test_bounding_box_covers_grid(self, micro_network, projector):
        box = micro_network.bounding_box()
        assert box.contains(projector.to_point(500.0, 500.0))
