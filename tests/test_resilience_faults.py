"""Crash-grade fault kinds, deadline clamping, and quarantine forensics.

The chaos *integration* story (worker processes actually dying under the
shard supervisor) lives in ``test_serving_chaos.py``; this file pins the
building blocks it stands on: the :data:`FAULT_KINDS` vocabulary, the
in-parent behaviour of crash-grade specs (raise
:class:`~repro.exceptions.WorkerCrashError`, never kill the test runner),
per-trajectory fault targeting, the clamped :class:`Deadline` arithmetic,
and the forensic fields on :class:`QuarantineEntry`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ConfigError, DeadlineExceeded, WorkerCrashError
from repro.resilience import (
    FAULT_KINDS,
    Deadline,
    FaultInjector,
    FaultSpec,
    QuarantineEntry,
)
from repro.resilience.faultinject import CRASH_EXIT_CODE, DEFAULT_HANG_S
from repro.trajectory import RawTrajectory


class _FakeClock:
    """A settable monotonic clock for deadline tests."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


# -- Deadline clamping --------------------------------------------------------


class TestDeadlineClamp:
    def test_remaining_clamps_at_zero_after_overshoot(self):
        clock = _FakeClock(100.0)
        deadline = Deadline(2.0, clock=clock)
        clock.t = 110.0  # 8 seconds past the budget
        assert deadline.remaining_s() == 0.0
        assert deadline.expired

    def test_remaining_counts_down_then_floors(self):
        clock = _FakeClock(0.0)
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(1.0)
        clock.t = 0.25
        assert deadline.remaining_s() == pytest.approx(0.75)
        assert not deadline.expired
        clock.t = 3.0
        assert deadline.remaining_s() == 0.0
        assert deadline.expired

    def test_expired_consistent_with_clamp(self):
        """``expired`` and ``remaining_s() == 0.0`` must never disagree."""
        clock = _FakeClock(0.0)
        deadline = Deadline(0.5, clock=clock)
        for t in (0.0, 0.49, 0.5, 0.51, 100.0):
            clock.t = t
            assert deadline.expired == (deadline.remaining_s() == 0.0)

    def test_repr_never_shows_negative_remaining(self):
        clock = _FakeClock(0.0)
        deadline = Deadline(1.0, clock=clock)
        clock.t = 50.0
        assert "-" not in repr(deadline)

    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining_s() == math.inf
        assert not deadline.expired
        deadline.check()  # never raises

    def test_zero_budget_is_immediately_expired(self):
        deadline = Deadline(0.0, clock=_FakeClock(5.0))
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("unit test")

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            Deadline(-1.0)


# -- fault kinds in the parent process ----------------------------------------


class TestFaultKinds:
    def test_vocabulary(self):
        assert FAULT_KINDS == ("error", "crash", "hang", "oom-sim")
        assert CRASH_EXIT_CODE == 137

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(stage="extract", kind="segfault")

    @pytest.mark.parametrize("kind", ["crash", "oom-sim"])
    def test_crash_grade_kinds_raise_in_parent(self, kind):
        """Outside a worker process a crash must not kill the interpreter."""
        injector = FaultInjector([FaultSpec(stage="extract", kind=kind)])
        with pytest.raises(WorkerCrashError):
            injector.before("extract")
        assert injector.fired("extract") == 1

    def test_hang_sleeps_default_then_raises(self):
        slept: list[float] = []
        injector = FaultInjector(
            [FaultSpec(stage="partition", kind="hang")], sleeper=slept.append
        )
        with pytest.raises(WorkerCrashError):
            injector.before("partition")
        assert slept == [DEFAULT_HANG_S]

    def test_hang_honours_explicit_latency(self):
        slept: list[float] = []
        injector = FaultInjector(
            [FaultSpec(stage="partition", kind="hang", latency_s=1.5)],
            sleeper=slept.append,
        )
        with pytest.raises(WorkerCrashError):
            injector.before("partition")
        assert slept == [1.5]

    def test_trajectory_id_targeting(self):
        """A targeted spec only fires for its item, under any call order."""
        injector = FaultInjector(
            [FaultSpec(stage="extract", kind="crash", times=None,
                       trajectory_id="poison")]
        )
        injector.before("extract", "healthy-1")
        injector.before("extract")  # untagged call: not the target either
        assert injector.fired("extract") == 0
        with pytest.raises(WorkerCrashError):
            injector.before("extract", "poison")
        with pytest.raises(WorkerCrashError):
            injector.before("extract", "poison")  # times=None keeps firing
        assert injector.fired("extract") == 2

    def test_error_kind_unchanged(self):
        """The default kind keeps the original latency-then-raise shape."""
        slept: list[float] = []
        injector = FaultInjector(
            [FaultSpec(stage="select", latency_s=0.2)], sleeper=slept.append
        )
        with pytest.raises(Exception, match="injected fault"):
            injector.before("select")
        assert slept == [0.2]

    def test_crash_spec_pickles(self):
        """Crash specs must ship across the process boundary as plain data."""
        import pickle

        spec = FaultSpec(stage="extract", kind="crash", times=None,
                         trajectory_id="poison")
        assert pickle.loads(pickle.dumps(spec)) == spec


# -- serial pipeline under crash-grade faults ---------------------------------


@pytest.fixture(scope="module")
def trips(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(77)
    sims = [
        scenario.simulate_trips(1, depart_time=(7.0 + 0.5 * i) * 3600.0, rng=rng)[0]
        for i in range(6)
    ]
    return [
        RawTrajectory(s.raw.points, f"ft-{i:02d}") for i, s in enumerate(sims)
    ]


class TestSerialCrashQuarantine:
    def test_crash_fault_quarantines_only_the_poison_item(self, scenario, trips):
        """Serially, a crash-grade fault is a typed quarantine, not a retry.

        ``WorkerCrashError`` is a ``ReproError`` but *not* a
        ``TransientError``: the batch loop quarantines it on the first
        attempt instead of burning retries on an item that kills workers.
        This serial verdict is the reference the supervised process path
        must match (see ``test_serving_chaos.py``).
        """
        stmaker = scenario.stmaker
        poison = trips[2].trajectory_id
        injector = FaultInjector(
            [FaultSpec(stage="extract", kind="crash", times=None,
                       trajectory_id=poison)]
        )
        with injector.installed(stmaker):
            batch = stmaker.summarize_many(trips, k=2)

        assert batch.ok_count == len(trips) - 1
        [entry] = batch.quarantined
        assert entry.index == 2
        assert entry.trajectory_id == poison
        assert entry.error_type == "WorkerCrashError"
        assert entry.attempts == 1
        assert entry.shard_id is None  # serial path: no shard served it
        assert entry.total_duration_s >= 0.0

    def test_crash_fault_raises_in_strict_mode(self, scenario, trips):
        stmaker = scenario.stmaker
        injector = FaultInjector(
            [FaultSpec(stage="extract", kind="crash", times=None,
                       trajectory_id=trips[0].trajectory_id)]
        )
        with injector.installed(stmaker):
            with pytest.raises(WorkerCrashError):
                stmaker.summarize_many(trips, k=2, strict=True)


# -- QuarantineEntry forensics ------------------------------------------------


class TestQuarantineEntryForensics:
    def test_to_dict_carries_forensic_fields(self):
        entry = QuarantineEntry(
            3, "t-3", "WorkerCrashError", "boom", 2,
            total_duration_s=1.25, shard_id=7,
        )
        data = entry.to_dict()
        assert data["attempts"] == 2
        assert data["total_duration_s"] == 1.25
        assert data["shard_id"] == 7

    def test_timing_and_placement_excluded_from_equality(self):
        """Differential suites compare what failed and why — not where."""
        a = QuarantineEntry(0, "t", "E", "m", 1, total_duration_s=0.1, shard_id=0)
        b = QuarantineEntry(0, "t", "E", "m", 1, total_duration_s=9.9, shard_id=5)
        assert a == b
        assert a != QuarantineEntry(0, "t", "E", "m", 2)

    def test_positional_construction_stays_valid(self):
        entry = QuarantineEntry(0, "t", "E", "m", 1)
        assert entry.total_duration_s == 0.0
        assert entry.shard_id is None
