"""Tests for moving-feature detectors: stays, U-turns, speed changes."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features import (
    MovingFeatureExtractor,
    SpeedChangeConfig,
    StayPointConfig,
    UTurnConfig,
    count_speed_changes,
    detect_stay_points,
    detect_u_turns,
)
from repro.geo import GeoPoint, LocalProjector
from repro.trajectory import TrajectoryPoint

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


def moving_east(projector, speed_ms=10.0, dt=5.0, n=20, start_t=0.0, start_x=0.0):
    return [
        TrajectoryPoint(projector.to_point(start_x + i * speed_ms * dt, 0.0), start_t + i * dt)
        for i in range(n)
    ]


def parked(projector, x, t0, duration, dt=5.0, jitter=0.0, rng=None):
    pts = []
    t = t0
    while t <= t0 + duration:
        dx = dy = 0.0
        if jitter and rng is not None:
            dx = float(rng.normal(0, jitter))
            dy = float(rng.normal(0, jitter))
        pts.append(TrajectoryPoint(projector.to_point(x + dx, dy), t))
        t += dt
    return pts


class TestStayPoints:
    def test_config_validation(self):
        with pytest.raises(FeatureError):
            StayPointConfig(radius_m=0.0)
        with pytest.raises(FeatureError):
            StayPointConfig(min_duration_s=-1.0)

    def test_no_stays_while_moving(self, projector):
        pts = moving_east(projector)
        assert detect_stay_points(pts, projector) == []

    def test_stop_detected(self, projector):
        pts = moving_east(projector, n=10)
        stop_start = pts[-1].t + 5.0
        pts += parked(projector, 450.0, stop_start, 120.0)
        pts += moving_east(projector, start_t=stop_start + 130.0, start_x=460.0, n=10)
        stays = detect_stay_points(pts, projector)
        assert len(stays) == 1
        assert stays[0].duration_s >= 100.0
        x, _ = projector.to_xy(stays[0].center)
        assert x == pytest.approx(450.0, abs=15.0)

    def test_short_pause_ignored(self, projector):
        pts = moving_east(projector, n=5)
        pts += parked(projector, 225.0, pts[-1].t + 5.0, 30.0)  # 30 s < 60 s
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=230.0, n=5)
        assert detect_stay_points(pts, projector) == []

    def test_jittered_stop_still_detected(self, projector):
        rng = np.random.default_rng(0)
        pts = moving_east(projector, n=5)
        pts += parked(projector, 230.0, pts[-1].t + 5.0, 150.0, jitter=5.0, rng=rng)
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=240.0, n=5)
        stays = detect_stay_points(pts, projector)
        assert len(stays) == 1

    def test_two_separate_stops(self, projector):
        pts = moving_east(projector, n=5)
        pts += parked(projector, 230.0, pts[-1].t + 5.0, 90.0)
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=240.0, n=10)
        pts += parked(projector, 740.0, pts[-1].t + 5.0, 90.0)
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=750.0, n=5)
        assert len(detect_stay_points(pts, projector)) == 2

    def test_empty_input(self, projector):
        assert detect_stay_points([], projector) == []


class TestUTurns:
    def test_config_validation(self):
        with pytest.raises(FeatureError):
            UTurnConfig(angle_threshold_deg=0.0)
        with pytest.raises(FeatureError):
            UTurnConfig(window_m=0.0)

    def make_u_turn_track(self, projector, out_m=300.0, speed=10.0, dt=5.0):
        """Drive east out_m metres, then back west to the origin."""
        pts = []
        t = 0.0
        x = 0.0
        while x < out_m:
            pts.append(TrajectoryPoint(projector.to_point(x, 0.0), t))
            x += speed * dt
            t += dt
        while x > 0:
            pts.append(TrajectoryPoint(projector.to_point(x, 0.0), t))
            x -= speed * dt
            t += dt
        return pts

    def test_single_u_turn_detected(self, projector):
        pts = self.make_u_turn_track(projector)
        turns = detect_u_turns(pts, projector)
        assert len(turns) == 1
        x, _ = projector.to_xy(turns[0].location)
        assert x == pytest.approx(300.0, abs=60.0)

    def test_straight_drive_no_u_turn(self, projector):
        assert detect_u_turns(moving_east(projector), projector) == []

    def test_right_angle_turn_not_a_u_turn(self, projector):
        pts = []
        t = 0.0
        for i in range(10):
            pts.append(TrajectoryPoint(projector.to_point(i * 50.0, 0.0), t))
            t += 5.0
        for j in range(1, 10):
            pts.append(TrajectoryPoint(projector.to_point(450.0, j * 50.0), t))
            t += 5.0
        assert detect_u_turns(pts, projector) == []

    def test_parked_jitter_is_not_a_u_turn(self, projector):
        # The classic false positive: GPS noise while stationary.
        rng = np.random.default_rng(1)
        pts = moving_east(projector, n=8)
        pts += parked(projector, 350.0, pts[-1].t + 5.0, 200.0, jitter=6.0, rng=rng)
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=360.0, n=8)
        assert detect_u_turns(pts, projector) == []

    def test_short_input(self, projector):
        assert detect_u_turns(moving_east(projector, n=2), projector) == []

    def test_short_dense_turn_detected_once(self, projector):
        # A dense out-and-back over 150 m yields exactly one event (nearby
        # reversal samples merge via the merge gap).
        pts = self.make_u_turn_track(projector, out_m=150.0, dt=2.0)
        turns = detect_u_turns(pts, projector)
        assert len(turns) == 1


class TestSpeedChanges:
    def test_config_validation(self):
        with pytest.raises(FeatureError):
            SpeedChangeConfig(threshold_ms=0.0)

    def test_constant_speed_no_events(self, projector):
        assert count_speed_changes(moving_east(projector), projector) == 0

    def test_hard_brake_counted(self, projector):
        pts = moving_east(projector, speed_ms=15.0, n=6)
        # Continue at crawling speed: 15 -> 1 m/s is a sharp change.
        t0 = pts[-1].t
        x0, _ = projector.to_xy(pts[-1].point)
        for i in range(1, 6):
            pts.append(TrajectoryPoint(projector.to_point(x0 + i * 5.0, 0.0), t0 + i * 5.0))
        assert count_speed_changes(pts, projector) == 1

    def test_events_merged_within_gap(self, projector):
        # Alternate fast/slow every sample: all events inside one merge gap.
        pts = []
        x, t = 0.0, 0.0
        for i in range(10):
            speed = 15.0 if i % 2 == 0 else 2.0
            x += speed * 2.0
            t += 2.0
            pts.append(TrajectoryPoint(projector.to_point(x, 0.0), t))
        count = count_speed_changes(
            pts, projector, SpeedChangeConfig(threshold_ms=4.0, merge_gap_s=60.0)
        )
        assert count == 1

    def test_short_input(self, projector):
        assert count_speed_changes(moving_east(projector, n=2), projector) == 0


class TestMovingFeatureExtractor:
    def test_bundle(self, projector):
        extractor = MovingFeatureExtractor(projector)
        pts = moving_east(projector, speed_ms=10.0, n=20)
        features = extractor.extract(pts)
        assert features.speed_kmh == pytest.approx(36.0, rel=0.01)
        assert features.stay_count == 0
        assert features.u_turn_count == 0
        assert features.speed_change_count == 0

    def test_stay_total(self, projector):
        extractor = MovingFeatureExtractor(projector)
        pts = moving_east(projector, n=5)
        pts += parked(projector, 230.0, pts[-1].t + 5.0, 100.0)
        pts += moving_east(projector, start_t=pts[-1].t + 5.0, start_x=240.0, n=5)
        features = extractor.extract(pts)
        assert features.stay_count == 1
        assert features.stay_total_s == pytest.approx(100.0, abs=15.0)
