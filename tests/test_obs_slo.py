"""SLO engine: spec parsing, burn-rate evaluation, transitions, surfaces.

The engine is driven here with a hand-cranked clock and a private
:class:`~repro.obs.EventBus`, so window arithmetic is exact — no sleeps,
no wall-clock flakiness.  The live integration (``item_end`` events from
a real batch reaching an :func:`~repro.obs.enable_slo` engine) rides in
``test_obs_trace_context.py``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.exceptions import ConfigError
from repro.obs.events import EventBus, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOEngine, SLObjective, parse_slo


class Clock:
    """Settable stand-in for ``time.perf_counter``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_engine(objectives, clock=None):
    bus = EventBus()
    log = EventLog()
    bus.subscribe(log)
    engine = SLOEngine(objectives, bus=bus, clock=clock or Clock())
    bus.subscribe(engine)
    return engine, bus, log


def feed(bus, *, n: int, duration_ms: float = 1.0, ok: bool = True) -> None:
    for _ in range(n):
        bus.emit("item_end", ok=ok, duration_ms=duration_ms, attempts=1)


LATENCY = SLObjective(
    name="lat", kind="latency_p95", threshold_ms=100.0,
    window_s=60.0, fast_window_s=10.0, min_samples=5,
)
SUCCESS = SLObjective(
    name="succ", kind="success_ratio", target=0.9,
    window_s=60.0, fast_window_s=10.0, min_samples=5,
)


# -- objective validation ------------------------------------------------------


def test_objective_rejects_unknown_kind():
    with pytest.raises(ConfigError, match="unknown SLO kind"):
        SLObjective(name="x", kind="availability")


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(name="", kind="latency_p95", threshold_ms=1.0), "non-empty name"),
        (dict(name="x", kind="latency_p95"), "threshold_ms > 0"),
        (dict(name="x", kind="latency_p95", threshold_ms=0.0), "threshold_ms > 0"),
        (dict(name="x", kind="success_ratio"), "0 < target < 1"),
        (dict(name="x", kind="success_ratio", target=1.0), "0 < target < 1"),
        (
            dict(name="x", kind="latency_p95", threshold_ms=1.0, window_s=0.0),
            "windows must be",
        ),
        (
            dict(
                name="x", kind="latency_p95", threshold_ms=1.0,
                window_s=10.0, fast_window_s=20.0,
            ),
            "must not exceed",
        ),
        (
            dict(
                name="x", kind="latency_p95", threshold_ms=1.0,
                burn_rate_threshold=0.0,
            ),
            "burn_rate_threshold",
        ),
        (
            dict(name="x", kind="latency_p95", threshold_ms=1.0, min_samples=0),
            "min_samples",
        ),
    ],
)
def test_objective_validation(kwargs, match):
    with pytest.raises(ConfigError, match=match):
        SLObjective(**kwargs)


def test_budget_fraction():
    assert LATENCY.budget_fraction == pytest.approx(0.05)
    assert SUCCESS.budget_fraction == pytest.approx(0.1)


def test_engine_rejects_empty_and_duplicate_objectives():
    with pytest.raises(ConfigError, match="at least one objective"):
        SLOEngine([])
    with pytest.raises(ConfigError, match="duplicate"):
        SLOEngine([LATENCY, LATENCY])


# -- spec parsing --------------------------------------------------------------


def test_parse_slo_latency_defaults():
    o = parse_slo("p95_ms=500")
    assert o.kind == "latency_p95"
    assert o.threshold_ms == 500.0
    assert o.name == "latency_p95"
    assert o.window_s == 300.0


def test_parse_slo_full_clause_set():
    o = parse_slo("p95_ms=250,window=60,fast=15,min=5,burn=2,name=items")
    assert (o.threshold_ms, o.window_s, o.fast_window_s) == (250.0, 60.0, 15.0)
    assert (o.min_samples, o.burn_rate_threshold, o.name) == (5, 2.0, "items")


def test_parse_slo_success_ratio():
    o = parse_slo("success=0.99")
    assert o.kind == "success_ratio"
    assert o.target == 0.99
    assert o.name == "success"


@pytest.mark.parametrize(
    "spec", ["", "window=60", "p95_ms=500,bogus=1", "p95_ms"]
)
def test_parse_slo_rejects_bad_specs(spec):
    with pytest.raises(ConfigError):
        parse_slo(spec)


# -- evaluation ----------------------------------------------------------------


def test_healthy_stream_never_breaches():
    engine, bus, log = make_engine([LATENCY, SUCCESS])
    feed(bus, n=50, duration_ms=5.0, ok=True)
    assert log.events("slo_breach") == []
    snap = engine.snapshot()
    by_name = {
        o["objective"]["name"]: o for o in snap["objectives"]
    }
    assert by_name["lat"]["breached"] is False
    assert by_name["lat"]["p95_ms"] == pytest.approx(5.0)
    assert by_name["succ"]["success_ratio"] == pytest.approx(1.0)
    assert by_name["succ"]["budget_remaining"] == pytest.approx(1.0)


def test_latency_breach_is_edge_triggered_and_rearms():
    clock = Clock()
    engine, bus, log = make_engine([LATENCY], clock)
    feed(bus, n=10, duration_ms=500.0)  # all over threshold -> burn 20x
    breaches = log.events("slo_breach")
    assert len(breaches) == 1  # edge-triggered, not once per item
    payload = breaches[0].payload
    assert payload["name"] == "lat"
    assert payload["objective_kind"] == "latency_p95"
    assert payload["burn_rate"] >= 1.0
    assert payload["p95_ms"] == pytest.approx(500.0)

    # Recovery: the slow samples age out of both windows, burn drops to 0.
    clock.now = 61.0
    feed(bus, n=10, duration_ms=1.0)
    state = engine.snapshot()["objectives"][0]
    assert state["breached"] is False
    assert state["breaches"] == 1

    # A second excursion pages again: the trigger re-armed.
    feed(bus, n=10, duration_ms=500.0)
    assert len(log.events("slo_breach")) == 2


def test_breach_requires_min_samples():
    engine, bus, log = make_engine([LATENCY])
    feed(bus, n=4, duration_ms=500.0)  # min_samples=5 -> abstain
    assert log.events("slo_breach") == []
    assert engine.snapshot()["objectives"][0]["breached"] is False


def test_breach_requires_fast_window_burn():
    clock = Clock()
    engine, bus, log = make_engine([LATENCY], clock)
    # Sustained damage in the slow window only: slow burn is high, but the
    # fast window sees healthy items -> no page (stale-signal guard).
    feed(bus, n=10, duration_ms=500.0)
    log.clear()
    engine.snapshot()["objectives"][0]  # breached once already; recover:
    clock.now = 55.0  # slow ones still inside window_s=60, outside fast=10
    feed(bus, n=40, duration_ms=1.0)
    assert log.events("slo_breach") == []


def test_success_ratio_breach_payload():
    engine, bus, log = make_engine([SUCCESS])
    feed(bus, n=10, duration_ms=1.0, ok=False)
    breaches = log.events("slo_breach")
    assert len(breaches) == 1
    assert breaches[0].payload["objective_kind"] == "success_ratio"
    assert breaches[0].payload["success_ratio"] == pytest.approx(0.0)


def test_budget_exhausted_emits_once():
    engine, bus, log = make_engine([SUCCESS])
    feed(bus, n=20, duration_ms=1.0, ok=False)
    exhausted = log.events("budget_exhausted")
    assert len(exhausted) == 1
    assert exhausted[0].payload["name"] == "succ"
    assert engine.snapshot()["objectives"][0]["budget_remaining"] == 0.0
    # More damage does not re-emit: the run's budget dies once.
    feed(bus, n=20, duration_ms=1.0, ok=False)
    assert len(log.events("budget_exhausted")) == 1


def test_engine_ignores_other_event_kinds():
    engine, bus, log = make_engine([LATENCY])
    bus.emit("stage_start", stage="partition")
    bus.emit("retry", attempt=1)
    assert engine.snapshot()["samples"] == 0
    assert bus.errors == 0


def test_engine_subscriber_errors_are_isolated():
    engine, bus, log = make_engine([LATENCY])
    feed(bus, n=10, duration_ms=500.0)
    # The engine publishes onto the bus it subscribes to; a buggy payload
    # would surface as a swallowed subscriber error.  It must not.
    assert bus.errors == 0
    assert len(log.events("slo_breach")) == 1


def test_metrics_series_exported():
    registry = obs.enable_metrics(MetricsRegistry())
    try:
        engine, bus, log = make_engine([LATENCY])
        feed(bus, n=10, duration_ms=500.0)
        snap = registry.snapshot()
        assert snap["slo.lat.p95_ms"]["value"] == pytest.approx(500.0)
        assert snap["slo.lat.burn_rate"]["value"] >= 1.0
        assert snap["slo.lat.breached"]["value"] == 1.0
        assert snap["slo.lat.breaches"]["value"] == 1
    finally:
        obs.disable_metrics()


# -- module lifecycle ----------------------------------------------------------


def test_enable_slo_implies_events_and_replaces_engine():
    obs.disable_events()
    try:
        first = obs.enable_slo([LATENCY])
        assert obs.events_enabled()
        assert obs.slo_engine() is first
        log = EventLog()
        obs.events().subscribe(log)
        second = obs.enable_slo([SUCCESS])
        assert obs.slo_engine() is second
        for _ in range(10):
            obs.emit_event("item_end", ok=True, duration_ms=500.0)
        # Only the active engine evaluates: the latency objective of the
        # replaced engine would have breached on these samples.
        assert log.events("slo_breach") == []
        assert second.snapshot()["samples"] == 10
        assert first.snapshot()["samples"] == 0
    finally:
        obs.disable_slo()
        obs.disable_events()
    assert obs.slo_engine() is None
