"""Tests for trajectory metrics and resampling."""

import pytest

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint, LocalProjector
from repro.trajectory import (
    RawTrajectory,
    TrajectoryPoint,
    average_speed_ms,
    downsample_by_distance,
    downsample_by_time,
    headings_deg,
    instantaneous_speeds_ms,
    median_sampling_interval_s,
    take_every,
)

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


def points_along_x(projector, spacing_m, dt_s, n):
    return [
        TrajectoryPoint(projector.to_point(i * spacing_m, 0.0), i * dt_s)
        for i in range(n)
    ]


class TestSpeeds:
    def test_constant_speed(self, projector):
        pts = points_along_x(projector, 10.0, 1.0, 5)
        speeds = instantaneous_speeds_ms(pts, projector)
        assert speeds == pytest.approx([10.0] * 4, rel=1e-6)
        assert average_speed_ms(pts, projector) == pytest.approx(10.0, rel=1e-6)

    def test_zero_dt_gap_yields_zero_speed(self, projector):
        pts = [
            TrajectoryPoint(projector.to_point(0, 0), 0.0),
            TrajectoryPoint(projector.to_point(10, 0), 0.0),
        ]
        assert instantaneous_speeds_ms(pts, projector) == [0.0]

    def test_average_speed_degenerate(self, projector):
        assert average_speed_ms([], projector) == 0.0
        one = [TrajectoryPoint(CENTER, 0.0)]
        assert average_speed_ms(one, projector) == 0.0

    def test_average_ignores_mid_trajectory_pauses(self, projector):
        # 100 m in 20 s (with a 10 s stop in the middle) is 5 m/s overall.
        pts = [
            TrajectoryPoint(projector.to_point(0, 0), 0.0),
            TrajectoryPoint(projector.to_point(50, 0), 5.0),
            TrajectoryPoint(projector.to_point(50, 0), 15.0),
            TrajectoryPoint(projector.to_point(100, 0), 20.0),
        ]
        assert average_speed_ms(pts, projector) == pytest.approx(5.0, rel=1e-6)


class TestHeadings:
    def test_straight_east(self, projector):
        pts = points_along_x(projector, 10.0, 1.0, 4)
        hs = headings_deg(pts, projector)
        assert all(h == pytest.approx(90.0, abs=0.5) for h in hs)

    def test_jitter_steps_skipped(self, projector):
        pts = [
            TrajectoryPoint(projector.to_point(0, 0), 0.0),
            TrajectoryPoint(projector.to_point(0.2, 0.2), 1.0),  # 0.3 m jitter
            TrajectoryPoint(projector.to_point(10, 0), 2.0),
        ]
        hs = headings_deg(pts, projector, min_step_m=1.0)
        assert len(hs) == 1


class TestMedianInterval:
    def test_odd_count(self):
        pts = [TrajectoryPoint(CENTER, t) for t in [0.0, 1.0, 3.0, 6.0]]
        assert median_sampling_interval_s(pts) == 2.0

    def test_even_count(self):
        pts = [TrajectoryPoint(CENTER, t) for t in [0.0, 1.0, 4.0]]
        assert median_sampling_interval_s(pts) == 2.0

    def test_degenerate(self):
        assert median_sampling_interval_s([TrajectoryPoint(CENTER, 0.0)]) == 0.0


class TestResampling:
    def test_downsample_by_time(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 11))
        down = downsample_by_time(t, 3.0)
        gaps = [b.t - a.t for a, b in zip(down.points, down.points[1:-1])]
        assert all(g >= 3.0 for g in gaps)
        assert down[0] == t[0] and down[-1] == t[-1]

    def test_downsample_by_distance(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 11))
        down = downsample_by_distance(t, 25.0, projector)
        gaps = [
            projector.distance_m(a.point, b.point)
            for a, b in zip(down.points, down.points[1:-1])
        ]
        assert all(g >= 25.0 for g in gaps)

    def test_take_every(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 10))
        down = take_every(t, 3)
        assert [p.t for p in down] == [0.0, 3.0, 6.0, 9.0]

    def test_take_every_keeps_last(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 11))
        down = take_every(t, 3)
        assert down[-1].t == 10.0

    def test_invalid_parameters(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 5))
        with pytest.raises(TrajectoryError):
            downsample_by_time(t, 0.0)
        with pytest.raises(TrajectoryError):
            downsample_by_distance(t, -1.0, projector)
        with pytest.raises(TrajectoryError):
            take_every(t, 0)

    def test_heavy_downsample_still_valid(self, projector):
        t = RawTrajectory(points_along_x(projector, 10.0, 1.0, 5))
        down = take_every(t, 100)
        assert len(down) == 2
