"""Tests for the from-scratch DBSCAN, including invariants and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.geo import GeoPoint, LocalProjector
from repro.landmarks import NOISE, cluster_centroids, dbscan

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


def blob(projector, cx, cy, n, sigma, rng):
    return [
        projector.to_point(float(cx + dx), float(cy + dy))
        for dx, dy in rng.normal(0.0, sigma, size=(n, 2))
    ]


class TestDBSCANBasics:
    def test_invalid_params_rejected(self, projector):
        with pytest.raises(ConfigError):
            dbscan([CENTER], eps_m=0.0, min_pts=3, projector=projector)
        with pytest.raises(ConfigError):
            dbscan([CENTER], eps_m=10.0, min_pts=0, projector=projector)

    def test_empty_input(self, projector):
        result = dbscan([], eps_m=10.0, min_pts=3, projector=projector)
        assert result.labels == []
        assert result.cluster_count == 0

    def test_single_point_is_noise_when_min_pts_high(self, projector):
        result = dbscan([CENTER], eps_m=10.0, min_pts=2, projector=projector)
        assert result.labels == [NOISE]

    def test_single_point_cluster_when_min_pts_one(self, projector):
        result = dbscan([CENTER], eps_m=10.0, min_pts=1, projector=projector)
        assert result.labels == [0]
        assert result.cluster_count == 1

    def test_two_well_separated_blobs(self, projector):
        rng = np.random.default_rng(0)
        a = blob(projector, 0, 0, 30, 20.0, rng)
        b = blob(projector, 5000, 0, 30, 20.0, rng)
        result = dbscan(a + b, eps_m=100.0, min_pts=4, projector=projector)
        assert result.cluster_count == 2
        labels_a = {result.labels[i] for i in range(30)}
        labels_b = {result.labels[i] for i in range(30, 60)}
        assert labels_a.isdisjoint(labels_b)
        assert NOISE not in labels_a | labels_b

    def test_isolated_points_are_noise(self, projector):
        rng = np.random.default_rng(1)
        cluster = blob(projector, 0, 0, 30, 15.0, rng)
        outliers = [projector.to_point(9000.0, 9000.0), projector.to_point(-9000.0, 4000.0)]
        result = dbscan(cluster + outliers, eps_m=80.0, min_pts=4, projector=projector)
        assert result.labels[-1] == NOISE
        assert result.labels[-2] == NOISE

    def test_chain_connectivity(self, projector):
        # Points spaced 9 m apart with eps 10: one cluster via density chain.
        points = [projector.to_point(i * 9.0, 0.0) for i in range(20)]
        result = dbscan(points, eps_m=10.0, min_pts=2, projector=projector)
        assert result.cluster_count == 1
        assert all(label == 0 for label in result.labels)

    def test_members(self, projector):
        points = [projector.to_point(i * 9.0, 0.0) for i in range(5)]
        result = dbscan(points, eps_m=10.0, min_pts=2, projector=projector)
        assert result.members(0) == [0, 1, 2, 3, 4]


class TestDBSCANInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_labels_well_formed(self, seed):
        projector = LocalProjector(CENTER)
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 80))
        points = [
            projector.to_point(float(x), float(y))
            for x, y in rng.uniform(-1000, 1000, size=(n, 2))
        ]
        result = dbscan(points, eps_m=60.0, min_pts=3, projector=projector)
        assert len(result.labels) == n
        used = {label for label in result.labels if label != NOISE}
        # Cluster ids are exactly 0 .. cluster_count-1.
        assert used == set(range(result.cluster_count))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_core_points_never_noise(self, seed):
        projector = LocalProjector(CENTER)
        rng = np.random.default_rng(seed)
        points = [
            projector.to_point(float(x), float(y))
            for x, y in rng.uniform(-500, 500, size=(60, 2))
        ]
        eps, min_pts = 80.0, 4
        result = dbscan(points, eps_m=eps, min_pts=min_pts, projector=projector)
        for i, p in enumerate(points):
            n_neighbors = sum(
                1 for q in points if projector.distance_m(p, q) <= eps
            )
            if n_neighbors >= min_pts:
                assert result.labels[i] != NOISE

    def test_noise_invariant_to_input_order(self, projector):
        rng = np.random.default_rng(5)
        points = blob(projector, 0, 0, 40, 60.0, rng) + blob(projector, 3000, 0, 40, 60.0, rng)
        forward = dbscan(points, eps_m=90.0, min_pts=4, projector=projector)
        backward = dbscan(points[::-1], eps_m=90.0, min_pts=4, projector=projector)
        noise_fwd = {i for i, label in enumerate(forward.labels) if label == NOISE}
        noise_bwd = {
            len(points) - 1 - i
            for i, label in enumerate(backward.labels)
            if label == NOISE
        }
        # Core-point cluster membership is order-independent in DBSCAN;
        # only border-point *assignment* may vary, never their noise status.
        assert noise_fwd == noise_bwd
        assert forward.cluster_count == backward.cluster_count


class TestCentroids:
    def test_centroid_of_symmetric_cluster(self, projector):
        points = [
            projector.to_point(x, y)
            for x, y in [(-10, 0), (10, 0), (0, -10), (0, 10)]
        ]
        result = dbscan(points, eps_m=25.0, min_pts=2, projector=projector)
        assert result.cluster_count == 1
        (centroid,) = cluster_centroids(points, result, projector)
        x, y = projector.to_xy(centroid)
        assert x == pytest.approx(0.0, abs=0.1)
        assert y == pytest.approx(0.0, abs=0.1)

    def test_noise_excluded_from_centroids(self, projector):
        points = [projector.to_point(i * 5.0, 0.0) for i in range(10)]
        points.append(projector.to_point(8000.0, 8000.0))
        result = dbscan(points, eps_m=10.0, min_pts=2, projector=projector)
        centroids = cluster_centroids(points, result, projector)
        assert len(centroids) == result.cluster_count
        x, _ = projector.to_xy(centroids[0])
        assert x == pytest.approx(22.5, abs=0.1)
