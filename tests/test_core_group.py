"""Tests for trajectory-group summarization (the paper's future work)."""

import numpy as np
import pytest

from repro.core import GroupSummarizer
from repro.exceptions import SummarizationError
from repro.simulate import TripConfig, TripSimulator


@pytest.fixture(scope="module")
def flow(scenario):
    """A rush-hour flow: 8 trips over the same OD pair."""
    rng = np.random.default_rng(404)
    origin, destination = scenario.fleet.sample_od(rng)
    simulator = TripSimulator(
        scenario.network, scenario.traffic, TripConfig(u_turn_probability=0.0)
    )
    trips = [
        simulator.simulate(origin, destination, 8 * 3600.0, rng, f"flow-{i}")
        for i in range(8)
    ]
    return origin, destination, trips


class TestGroupSummarizer:
    def test_outlier_factor_validated(self, scenario):
        with pytest.raises(SummarizationError):
            GroupSummarizer(scenario.stmaker, outlier_factor=1.0)

    def test_too_few_members_rejected(self, scenario, flow):
        _, _, trips = flow
        summarizer = GroupSummarizer(scenario.stmaker)
        with pytest.raises(SummarizationError):
            summarizer.summarize_group([trips[0].raw])

    def test_group_summary_shape(self, scenario, flow):
        _, _, trips = flow
        summary = GroupSummarizer(scenario.stmaker).summarize_group(
            [t.raw for t in trips]
        )
        assert summary.member_count == 8
        assert 0.0 < summary.consensus_share <= 1.0
        assert summary.text.startswith("Between the ")
        assert "eight cars travelled" in summary.text
        assert summary.source_name and summary.destination_name

    def test_aggregates_cover_registry(self, scenario, flow):
        _, _, trips = flow
        summary = GroupSummarizer(scenario.stmaker).summarize_group(
            [t.raw for t in trips]
        )
        keys = {a.key for a in summary.aggregated}
        assert keys == set(scenario.registry.keys())

    def test_selected_respect_threshold(self, scenario, flow):
        _, _, trips = flow
        summary = GroupSummarizer(scenario.stmaker).summarize_group(
            [t.raw for t in trips]
        )
        threshold = scenario.stmaker.config.irregular_threshold
        for assessment in summary.selected:
            assert assessment.irregular_rate >= threshold

    def test_u_turn_member_flagged_as_outlier(self, scenario, flow):
        origin, destination, trips = flow
        # Add one lost driver to the flow.
        rng = np.random.default_rng(405)
        lost_sim = TripSimulator(
            scenario.network, scenario.traffic, TripConfig(u_turn_probability=1.0)
        )
        lost = lost_sim.simulate(origin, destination, 8 * 3600.0, rng, "lost-cab")
        summary = GroupSummarizer(scenario.stmaker).summarize_group(
            [t.raw for t in trips] + [lost.raw]
        )
        assert "lost-cab" in summary.outliers
        assert "deviated notably" in summary.text

    def test_homogeneous_night_flow_few_outliers(self, scenario):
        rng = np.random.default_rng(406)
        origin, destination = scenario.fleet.sample_od(rng)
        simulator = TripSimulator(
            scenario.network, scenario.traffic,
            TripConfig(u_turn_probability=0.0, mid_edge_stop_probability=0.0),
        )
        trips = [
            simulator.simulate(origin, destination, 2 * 3600.0, rng, f"night-{i}")
            for i in range(6)
        ]
        summary = GroupSummarizer(scenario.stmaker).summarize_group(
            [t.raw for t in trips]
        )
        assert len(summary.outliers) <= 2
        # Night flows are calm: high route consensus.
        assert summary.consensus_share >= 0.5
