"""Tests for the HITS-like landmark significance algorithm."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.geo import GeoPoint, LocalProjector
from repro.landmarks import (
    Landmark,
    LandmarkIndex,
    LandmarkKind,
    Visit,
    assign_significance,
    hits_significance,
)

CENTER = GeoPoint(39.91, 116.40)


def star_visits(popular=0, rare=1, users=20):
    """Every user visits the popular landmark; one user visits the rare one."""
    visits = [Visit(u, popular) for u in range(users)]
    visits.append(Visit(0, rare))
    return visits


class TestHITS:
    def test_empty_input(self):
        result = hits_significance([])
        assert result.hub == {} and result.authority == {}

    def test_invalid_iterations(self):
        with pytest.raises(ConfigError):
            hits_significance([Visit(0, 0)], max_iterations=0)

    def test_popular_landmark_scores_highest(self):
        result = hits_significance(star_visits())
        assert result.hub[0] == 1.0
        assert result.hub[1] < result.hub[0]

    def test_scores_normalized_to_unit_max(self):
        result = hits_significance(star_visits())
        assert max(result.hub.values()) == pytest.approx(1.0)
        assert all(0.0 <= s <= 1.0 for s in result.hub.values())

    def test_symmetric_landmarks_score_equally(self):
        visits = [Visit(u, lm) for u in range(10) for lm in (0, 1)]
        result = hits_significance(visits)
        assert result.hub[0] == pytest.approx(result.hub[1])

    def test_visit_multiplicity_reinforces(self):
        # Landmark 0 visited twice by each user, landmark 1 once.
        visits = [Visit(u, 0) for u in range(5)] * 2 + [Visit(u, 1) for u in range(5)]
        result = hits_significance(visits)
        assert result.hub[0] > result.hub[1]

    def test_well_travelled_visitors_boost_score(self):
        # Landmarks 0..4 visited by the single well-travelled user 0;
        # landmark 5 visited by a one-stop user. With equal degree on the
        # landmark side, the landmark endorsed by the stronger authority wins.
        visits = [Visit(0, lm) for lm in range(5)]
        visits += [Visit(1, 0)]  # user 1 visits landmark 0 too
        visits += [Visit(2, 5)]
        result = hits_significance(visits)
        assert result.hub[1] > result.hub[5]

    def test_converges_quickly_on_bipartite_star(self):
        result = hits_significance(star_visits(), tolerance=1e-12)
        assert result.iterations < 100

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        visits = [
            Visit(int(u), int(lm))
            for u, lm in zip(rng.integers(0, 50, 500), rng.integers(0, 30, 500))
        ]
        a = hits_significance(visits)
        b = hits_significance(visits)
        assert a.hub == b.hub


class TestAssignSignificance:
    def make_index(self):
        projector = LocalProjector(CENTER)
        landmarks = [
            Landmark(i, projector.to_point(i * 100.0, 0.0), f"L{i}", LandmarkKind.POI_CLUSTER)
            for i in range(3)
        ]
        return LandmarkIndex(landmarks, projector)

    def test_scores_written_to_landmarks(self):
        index = self.make_index()
        assign_significance(index, star_visits())
        assert index.get(0).significance == 1.0
        assert 0.0 < index.get(1).significance < 1.0

    def test_unvisited_gets_floor(self):
        index = self.make_index()
        assign_significance(index, star_visits(), floor=0.05)
        assert index.get(2).significance == 0.05

    def test_invalid_floor_rejected(self):
        index = self.make_index()
        with pytest.raises(ConfigError):
            assign_significance(index, star_visits(), floor=2.0)
