"""Tests for the synthetic city generator and SCC utilities."""

import numpy as np
import pytest

from repro.exceptions import RoadNetworkError
from repro.geo import GeoPoint, LocalProjector
from repro.roadnet import (
    CityConfig,
    RoadGrade,
    RoadNetwork,
    TrafficDirection,
    dijkstra,
    generate_city,
    largest_scc_subnetwork,
    strongly_connected_components,
)


class TestCityConfig:
    def test_defaults_valid(self):
        CityConfig()

    def test_too_few_blocks_rejected(self):
        with pytest.raises(RoadNetworkError):
            CityConfig(blocks=2)

    def test_bad_fractions_rejected(self):
        with pytest.raises(RoadNetworkError):
            CityConfig(one_way_fraction=1.5)
        with pytest.raises(RoadNetworkError):
            CityConfig(minor_removal_fraction=0.9)


class TestGeneratedCity:
    def test_deterministic_given_seed(self):
        a = generate_city(CityConfig(blocks=8), np.random.default_rng(3))
        b = generate_city(CityConfig(blocks=8), np.random.default_rng(3))
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count
        ea = sorted((e.u, e.v, int(e.grade), e.width_m) for e in a.edges())
        eb = sorted((e.u, e.v, int(e.grade), e.width_m) for e in b.edges())
        assert ea == eb

    def test_all_grades_present(self, city):
        grades = {e.grade for e in city.edges()}
        assert RoadGrade.HIGHWAY in grades
        assert RoadGrade.EXPRESS in grades
        assert grades >= {RoadGrade.COUNTRY, RoadGrade.VILLAGE}

    def test_has_one_way_streets(self, city):
        directions = {e.direction for e in city.edges()}
        assert TrafficDirection.ONE_WAY in directions
        assert TrafficDirection.TWO_WAY in directions

    def test_one_way_only_on_minor_roads(self, city):
        for edge in city.edges():
            if edge.direction is TrafficDirection.ONE_WAY:
                assert edge.grade in (RoadGrade.VILLAGE, RoadGrade.FEEDER)

    def test_widths_track_grade(self, city):
        by_grade = {}
        for edge in city.edges():
            by_grade.setdefault(edge.grade, []).append(edge.width_m)
        mean = {g: sum(ws) / len(ws) for g, ws in by_grade.items()}
        assert mean[RoadGrade.HIGHWAY] > mean[RoadGrade.COUNTRY] > mean[RoadGrade.FEEDER]

    def test_strongly_connected(self, city):
        components = strongly_connected_components(city)
        assert len(components) == 1

    def test_routable_between_random_nodes(self, city):
        rng = np.random.default_rng(1)
        ids = city.node_ids()
        for _ in range(10):
            i, j = (int(k) for k in rng.choice(len(ids), size=2, replace=False))
            cost, path = dijkstra(city, ids[i], ids[j])
            assert cost > 0.0
            assert len(path) >= 2

    def test_edges_have_positive_length_and_names(self, city):
        for edge in city.edges():
            assert edge.length_m > 0.0
            assert edge.name

    def test_city_extent_matches_config(self):
        config = CityConfig(blocks=10, block_size_m=300.0)
        city = generate_city(config, np.random.default_rng(0))
        box = city.bounding_box()
        projector = LocalProjector(config.center)
        min_xy = projector.to_xy(GeoPoint(box.min_lat, box.min_lon))
        max_xy = projector.to_xy(GeoPoint(box.max_lat, box.max_lon))
        extent = 10 * 300.0
        assert max_xy[0] - min_xy[0] == pytest.approx(extent, abs=200.0)
        assert max_xy[1] - min_xy[1] == pytest.approx(extent, abs=200.0)

    def test_names_unique_per_line_grade(self, city):
        # A single named road should be composed of same-grade edges.
        by_name = {}
        for edge in city.edges():
            by_name.setdefault(edge.name, set()).add(edge.grade)
        assert all(len(grades) == 1 for grades in by_name.values())


class TestSccUtilities:
    def test_two_components_detected(self):
        projector = LocalProjector(GeoPoint(39.91, 116.40))
        net = RoadNetwork(projector)
        for i in range(4):
            net.add_node(projector.to_point(i * 100.0, 0.0))
        # Component A: 0 <-> 1; component B: 2 <-> 3; bridge 1 -> 2 one-way.
        net.add_edge(0, 1, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "a")
        net.add_edge(2, 3, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "b")
        net.add_edge(1, 2, RoadGrade.FEEDER, 5.0, TrafficDirection.ONE_WAY, "bridge")
        components = strongly_connected_components(net)
        sizes = sorted(len(c) for c in components)
        assert sizes == [2, 2]

    def test_largest_scc_preserves_ids(self):
        projector = LocalProjector(GeoPoint(39.91, 116.40))
        net = RoadNetwork(projector)
        for i in range(5):
            net.add_node(projector.to_point(i * 100.0, 0.0))
        net.add_edge(0, 1, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "a")
        net.add_edge(1, 2, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "a")
        net.add_edge(3, 4, RoadGrade.FEEDER, 5.0, TrafficDirection.ONE_WAY, "c")
        pruned = largest_scc_subnetwork(net)
        assert sorted(pruned.node_ids()) == [0, 1, 2]
        assert pruned.edge_between(0, 1) is not None

    def test_already_connected_returned_as_is(self, micro_network):
        assert largest_scc_subnetwork(micro_network) is micro_network
