"""Concurrency stress tests: a shared STMaker hammered from many threads.

The serving pool runs :meth:`STMaker._summarize_item` on pool workers that
share the summarizer, the metrics registry, the event bus, the fault
injector, and the quarantine bookkeeping.  These tests drive that sharing
far harder than the pool itself does — eight threads issuing overlapping
batch calls — and assert that nothing tears: counters add up exactly,
histogram snapshots stay internally consistent, fault-fire counts are
lossless, and every batch still honours the input-order contract.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.resilience import FaultInjector, FaultSpec
from repro.trajectory import RawTrajectory

THREADS = 8


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


@pytest.fixture(scope="module")
def corpus(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(2024)
    trips = [
        scenario.simulate_trips(1, depart_time=(7.0 + 0.5 * i) * 3600.0, rng=rng)[0]
        for i in range(6)
    ]
    return [
        RawTrajectory(trip.raw.points, f"stress-{i}")
        for i, trip in enumerate(trips)
    ]


def hammer(fn, n_threads: int = THREADS):
    """Run *fn(thread_index)* on n_threads concurrently; return results."""
    barrier = threading.Barrier(n_threads)

    def task(i: int):
        barrier.wait()  # maximise overlap: all threads start together
        return fn(i)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return [f.result() for f in [pool.submit(task, i) for i in range(n_threads)]]


def test_concurrent_batches_on_shared_stmaker(scenario, corpus):
    """Eight threads × parallel pools on ONE STMaker: all results correct."""
    expected = scenario.stmaker.summarize_many(corpus, k=2)
    assert expected.ok_count == len(corpus)

    results = hammer(
        lambda i: scenario.stmaker.summarize_many(
            corpus, k=2, workers=2, shard_size=2,
            shard_mode=("balanced", "round_robin", "hashed")[i % 3],
        )
    )
    for result in results:
        assert result.ok_count == len(corpus)
        assert [s.trajectory_id for s in result.summaries] == [
            raw.trajectory_id for raw in corpus
        ]
        for ours, theirs in zip(result.summaries, expected.summaries, strict=True):
            assert ours.text == theirs.text
            assert ours.partitions == theirs.partitions


def test_metrics_counters_are_lossless_under_contention(scenario, corpus):
    """resilience.batch.items must equal exactly threads × items."""
    registry = obs.enable_metrics()
    hammer(lambda i: scenario.stmaker.summarize_many(corpus, k=2, workers=2))
    items = registry.get("resilience.batch.items")
    assert items is not None and items.value == THREADS * len(corpus)
    ok = registry.get("resilience.batch.ok")
    assert ok is not None and ok.value == THREADS * len(corpus)
    assert registry.get("serving.batch.calls").value == THREADS


def test_histogram_snapshot_never_tears():
    """Readers racing a writer always see count/sum/buckets agree."""
    registry = obs.MetricsRegistry()
    hist = registry.histogram("stress.duration_ms")
    stop = threading.Event()
    errors: list[str] = []

    def writer():
        value = 0
        while not stop.is_set():
            hist.observe(float(value % 1000))
            value += 1

    def reader():
        while not stop.is_set():
            data = hist.to_dict()
            total_in_buckets = sum(data["buckets"].values())
            if total_in_buckets != data["count"]:
                errors.append(
                    f"bucket total {total_in_buckets} != count {data['count']}"
                )
            if data["count"] and not (
                data["min"] <= data["mean"] <= data["max"]
            ):
                errors.append(f"min/mean/max inconsistent: {data}")

    threads = [threading.Thread(target=writer) for _ in range(2)] + [
        threading.Thread(target=reader) for _ in range(THREADS - 2)
    ]
    for t in threads:
        t.start()
    stop.wait(timeout=1.0)
    stop.set()
    for t in threads:
        t.join()
    assert errors == []


def test_fault_injector_counts_are_lossless_under_contention():
    """N threads × M before() calls on a times=None spec fire N×M times."""
    injector = FaultInjector([FaultSpec(stage="extract", times=None)])
    calls_per_thread = 200

    def fire(_i):
        fired = 0
        for _ in range(calls_per_thread):
            try:
                injector.before("extract")
            except Exception:
                fired += 1
        return fired

    results = hammer(fire)
    assert sum(results) == THREADS * calls_per_thread
    assert injector.fired("extract") == THREADS * calls_per_thread


def test_bounded_fault_injector_never_overfires():
    """A times=N spec fires exactly N times total across all threads."""
    budget = 37
    injector = FaultInjector([FaultSpec(stage="extract", times=budget)])

    def fire(_i):
        fired = 0
        for _ in range(100):
            try:
                injector.before("extract")
            except Exception:
                fired += 1
        return fired

    results = hammer(fire)
    assert sum(results) == budget
    assert injector.fired("extract") == budget


def test_event_bus_collects_every_event_under_contention(scenario, corpus):
    log = obs.EventLog()
    obs.enable_events().subscribe(log)
    hammer(lambda i: scenario.stmaker.summarize_many(corpus, k=2, workers=2))
    recorded = log.events()
    batch_starts = [e for e in recorded if e.kind == "batch_start"]
    batch_ends = [e for e in recorded if e.kind == "batch_end"]
    shard_starts = [e for e in recorded if e.kind == "shard_start"]
    shard_ends = [e for e in recorded if e.kind == "shard_end"]
    assert len(batch_starts) == len(batch_ends) == THREADS
    assert len(shard_starts) == len(shard_ends) > 0


def test_quarantine_is_isolated_per_batch_under_contention(scenario, corpus):
    """Concurrent batches with injected faults never cross-contaminate."""
    injector = FaultInjector([FaultSpec(stage="calibrate", times=None)])

    # Installed once from the main thread; the pool workers of all eight
    # concurrent batches share it (times=None never exhausts).
    with injector.installed(scenario.stmaker):
        results = hammer(
            lambda i: scenario.stmaker.summarize_many(corpus, k=2, workers=2)
        )
    for result in results:
        assert result.ok_count + result.quarantined_count == len(corpus)
        assert {e.index for e in result.quarantined} <= set(range(len(corpus)))
