"""Tests for Dijkstra/A*, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import NoPathError
from repro.geo import GeoPoint, LocalProjector
from repro.roadnet import (
    RoadGrade,
    RoadNetwork,
    TrafficDirection,
    a_star,
    dijkstra,
    dijkstra_all,
    length_weight,
    travel_time_weight,
)


def to_networkx(network):
    g = nx.DiGraph()
    for node in network.nodes():
        g.add_node(node.node_id)
    for node in network.nodes():
        for edge, neighbor in network.out_edges(node.node_id):
            g.add_edge(node.node_id, neighbor, weight=edge.length_m)
    return g


class TestDijkstraMicro:
    def test_straight_line(self, micro_network):
        cost, path = dijkstra(micro_network, 0, 2)
        assert path == [0, 1, 2]
        assert cost == pytest.approx(1000.0, rel=1e-3)

    def test_respects_one_way(self, micro_network):
        # 7 -> 1 cannot go straight down the one-way column.
        cost, path = dijkstra(micro_network, 7, 1)
        assert 4 not in path or path.index(4) > path.index(1)
        assert cost > 1000.0

    def test_source_equals_target(self, micro_network):
        cost, path = dijkstra(micro_network, 3, 3)
        assert cost == 0.0
        assert path == [3]

    def test_unreachable_raises(self):
        projector = LocalProjector(GeoPoint(39.91, 116.40))
        net = RoadNetwork(projector)
        net.add_node(projector.to_point(0, 0))
        net.add_node(projector.to_point(1000, 0))
        with pytest.raises(NoPathError):
            dijkstra(net, 0, 1)

    def test_travel_time_prefers_fast_roads(self):
        # Two routes 0 -> 3: direct feeder (1000 m at 25 km/h) vs a dogleg
        # highway (1400 m at 100 km/h).  Time-weighting must take the dogleg.
        projector = LocalProjector(GeoPoint(39.91, 116.40))
        net = RoadNetwork(projector)
        net.add_node(projector.to_point(0, 0))       # 0
        net.add_node(projector.to_point(0, 700))     # 1
        net.add_node(projector.to_point(1000, 700))  # 2
        net.add_node(projector.to_point(1000, 0))    # 3
        net.add_edge(0, 3, RoadGrade.FEEDER, 5.0, TrafficDirection.TWO_WAY, "slow")
        net.add_edge(0, 1, RoadGrade.HIGHWAY, 28.0, TrafficDirection.TWO_WAY, "fast1")
        net.add_edge(1, 2, RoadGrade.HIGHWAY, 28.0, TrafficDirection.TWO_WAY, "fast2")
        net.add_edge(2, 3, RoadGrade.HIGHWAY, 28.0, TrafficDirection.TWO_WAY, "fast3")
        _, by_length = dijkstra(net, 0, 3, weight=length_weight)
        _, by_time = dijkstra(net, 0, 3, weight=travel_time_weight)
        assert by_length == [0, 3]
        assert by_time == [0, 1, 2, 3]


class TestAgainstNetworkx:
    def test_city_costs_match(self, city):
        g = to_networkx(city)
        rng = np.random.default_rng(11)
        ids = city.node_ids()
        for _ in range(25):
            src, dst = (int(i) for i in rng.choice(len(ids), size=2, replace=False))
            source, target = ids[src], ids[dst]
            cost, path = dijkstra(city, source, target)
            expected = nx.shortest_path_length(g, source, target, weight="weight")
            assert cost == pytest.approx(expected, rel=1e-9)
            assert path[0] == source and path[-1] == target
            # The returned path must be consistent with its cost.
            assert city.path_length_m(path) == pytest.approx(cost, rel=1e-9)

    def test_dijkstra_all_matches(self, city):
        g = to_networkx(city)
        source = city.node_ids()[0]
        ours = dijkstra_all(city, source)
        theirs = nx.single_source_dijkstra_path_length(g, source, weight="weight")
        assert set(ours) == set(theirs)
        for node, cost in theirs.items():
            assert ours[node] == pytest.approx(cost, rel=1e-9)

    def test_dijkstra_all_max_cost_prunes(self, city):
        source = city.node_ids()[0]
        full = dijkstra_all(city, source)
        pruned = dijkstra_all(city, source, max_cost=1_000.0)
        assert set(pruned) <= set(full)
        assert all(cost <= 1_000.0 for cost in pruned.values())
        assert len(pruned) < len(full)


class TestAStar:
    def test_matches_dijkstra_cost(self, city):
        rng = np.random.default_rng(5)
        ids = city.node_ids()
        for _ in range(15):
            src, dst = (int(i) for i in rng.choice(len(ids), size=2, replace=False))
            d_cost, _ = dijkstra(city, ids[src], ids[dst])
            a_cost, a_path = a_star(city, ids[src], ids[dst])
            assert a_cost == pytest.approx(d_cost, rel=1e-9)
            assert city.path_length_m(a_path) == pytest.approx(a_cost, rel=1e-9)

    def test_travel_time_heuristic_admissible(self, city):
        ids = city.node_ids()
        v_max_ms = RoadGrade.HIGHWAY.free_flow_speed_kmh / 3.6
        d_cost, _ = dijkstra(city, ids[0], ids[-1], weight=travel_time_weight)
        a_cost, _ = a_star(
            city, ids[0], ids[-1], weight=travel_time_weight,
            heuristic_scale=1.0 / v_max_ms,
        )
        assert a_cost == pytest.approx(d_cost, rel=1e-9)
