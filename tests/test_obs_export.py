"""Tests for the standard exporters (repro.obs.export): Prometheus text
exposition and Chrome trace-event JSON, including concurrent collection."""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro import obs
from repro.obs.export import prometheus_name

#: One sample line of the exposition format: a metric name, an optional
#: label set, and a value parseable as a (possibly signed/inf/nan) float.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? \S+$"
)


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_tracing()
    obs.disable_metrics()


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("summarize.latency_ms") == "summarize_latency_ms"

    def test_leading_digit_guarded(self):
        assert prometheus_name("5xx.count")[0] == "_"

    def test_valid_names_untouched(self):
        assert prometheus_name("already_valid:name") == "already_valid:name"


class TestPrometheusExposition:
    def test_empty_registry_renders_empty(self):
        registry = obs.enable_metrics()
        assert obs.render_prometheus(registry) == ""

    def test_every_line_parses(self):
        registry = obs.enable_metrics()
        registry.counter("summarize.calls").inc(3)
        registry.gauge("pool.size").set(7.5)
        h = registry.histogram("summarize.latency_ms", buckets=(1.0, 5.0, 10.0))
        for v in (0.4, 2.0, 7.0, 50.0):
            h.observe(v)
        text = obs.render_prometheus(registry)
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line, "no blank lines in the exposition"
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"
            _parse_value(line.rsplit(" ", 1)[1])  # must not raise

    def test_counter_total_suffix_and_value(self):
        registry = obs.enable_metrics()
        registry.counter("a.calls").inc(3)
        text = obs.render_prometheus(registry)
        assert "# TYPE a_calls_total counter" in text
        assert "\na_calls_total 3\n" in text

    def test_histogram_buckets_cumulative(self):
        registry = obs.enable_metrics()
        h = registry.histogram("lat.ms", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 2.0, 2.5, 7.0, 100.0):
            h.observe(v)
        text = obs.render_prometheus(registry)
        bucket_lines = [
            line for line in text.splitlines() if line.startswith("lat_ms_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 5, "+Inf bucket must equal the total count"
        assert 'le="+Inf"' in bucket_lines[-1]
        assert "lat_ms_sum 112" in text
        assert "lat_ms_count 5" in text

    def test_write_prometheus_file(self, tmp_path):
        registry = obs.enable_metrics()
        registry.counter("x").inc()
        path = tmp_path / "metrics.prom"
        obs.write_prometheus(registry, path)
        assert "x_total 1" in path.read_text()

    def test_help_text_is_escaped(self):
        from repro.obs.export import escape_help

        assert escape_help("a\\b") == "a\\\\b"
        assert escape_help("line1\nline2") == "line1\\nline2"
        registry = obs.enable_metrics()
        registry.counter("weird\nname.calls").inc()
        text = obs.render_prometheus(registry)
        for line in text.splitlines():
            assert "\r" not in line
            if line.startswith("# HELP"):
                assert "\\n" in line, "newline in the series name is escaped"
        obs.parse_prometheus(text)  # and the result still parses

    def test_sanitization_collision_raises(self):
        registry = obs.enable_metrics()
        registry.counter("a.calls").inc()
        registry.counter("a_calls").inc()  # both sanitize to a_calls_total
        with pytest.raises(ValueError, match="both export as"):
            obs.render_prometheus(registry)


class TestPrometheusParserRoundtrip:
    def _populated_registry(self):
        registry = obs.enable_metrics()
        registry.counter("summarize.calls").inc(3)
        registry.gauge("pool.size").set(7.5)
        registry.gauge("drift").set(-2.25)
        h = registry.histogram("summarize.latency_ms", buckets=(1.0, 5.0, 10.0))
        for v in (0.4, 2.0, 7.0, 50.0):
            h.observe(v)
        return registry

    def test_roundtrip_preserves_families_and_values(self):
        registry = self._populated_registry()
        families = obs.parse_prometheus(obs.render_prometheus(registry))
        assert families["summarize_calls_total"]["type"] == "counter"
        assert families["summarize_calls_total"]["help"] == "summarize.calls"
        [(_, _, calls)] = families["summarize_calls_total"]["samples"]
        assert calls == 3.0
        [(_, _, size)] = families["pool_size"]["samples"]
        assert size == 7.5
        hist = families["summarize_latency_ms"]
        buckets = {
            labels["le"]: value
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        }
        assert buckets == {"1": 1.0, "5": 2.0, "10": 3.0, "+Inf": 4.0}
        count = [v for n, _, v in hist["samples"] if n.endswith("_count")]
        assert count == [4.0]

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ValueError, match="no HELP/TYPE family"):
            obs.parse_prometheus("orphan_sample 1\n")
        with pytest.raises(ValueError, match="blank line"):
            obs.parse_prometheus("# HELP a a\n\n# TYPE a counter\n")
        with pytest.raises(ValueError, match="unknown TYPE"):
            obs.parse_prometheus("# TYPE a widget\n")
        with pytest.raises(ValueError, match="unparseable sample"):
            obs.parse_prometheus("# HELP a a\n# TYPE a counter\nnot a sample!\n")
        with pytest.raises(ValueError, match="could not convert"):
            obs.parse_prometheus("# HELP a a\n# TYPE a counter\na one\n")

    def test_parser_rejects_non_cumulative_buckets(self):
        bad = (
            "# HELP h h\n"
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            obs.parse_prometheus(bad)

    def test_parser_rejects_inf_bucket_count_mismatch(self):
        bad = (
            "# HELP h h\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            obs.parse_prometheus(bad)

    def test_empty_exposition_parses_to_nothing(self):
        assert obs.parse_prometheus("") == {}


class TestChromeTrace:
    def _collect(self):
        collector = obs.enable_tracing()
        with obs.span("summarize", trajectory_id="t-1"):
            with obs.span("calibrate"):
                pass
            with obs.span("partition", k=2):
                pass
        return collector

    def test_trace_events_array_and_schema(self):
        collector = self._collect()
        trace = obs.to_chrome_trace(collector)
        assert isinstance(trace["traceEvents"], list)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"summarize", "calibrate", "partition"}
        for event in complete:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            assert event["args"]["status"] == "ok"
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in metadata} >= {"process_name", "thread_name"}

    def test_children_nest_inside_parent_window(self):
        collector = self._collect()
        events = {
            e["name"]: e
            for e in obs.to_chrome_trace(collector)["traceEvents"]
            if e["ph"] == "X"
        }
        root = events["summarize"]
        for child in ("calibrate", "partition"):
            assert events[child]["ts"] >= root["ts"]
            assert (
                events[child]["ts"] + events[child]["dur"]
                <= root["ts"] + root["dur"] + 1.0
            )

    def test_tags_and_ids_in_args(self):
        collector = self._collect()
        events = {
            e["name"]: e
            for e in obs.to_chrome_trace(collector)["traceEvents"]
            if e["ph"] == "X"
        }
        assert events["summarize"]["args"]["trajectory_id"] == "t-1"
        assert events["partition"]["args"]["k"] == 2
        assert events["calibrate"]["args"]["parent_id"] == (
            events["summarize"]["args"]["span_id"]
        )

    def test_error_span_carries_error_arg(self):
        collector = obs.enable_tracing()
        with pytest.raises(ValueError):
            with obs.span("fragile"):
                raise ValueError("boom")
        [event] = [
            e for e in obs.to_chrome_trace(collector)["traceEvents"] if e["ph"] == "X"
        ]
        assert event["args"]["status"] == "error"
        assert "boom" in event["args"]["error"]

    def test_json_roundtrip_via_file(self, tmp_path):
        collector = self._collect()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(collector, path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["dropped"] == 0
        assert loaded == json.loads(json.dumps(obs.to_chrome_trace(collector)))

    def test_concurrent_spans_get_distinct_tracks(self):
        collector = obs.enable_tracing()
        n_threads, per_thread = 6, 25
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []

        def worker(tid: int) -> None:
            try:
                barrier.wait()
                for _ in range(per_thread):
                    with obs.span(f"w{tid}"):
                        with obs.span(f"w{tid}.child"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        trace = obs.to_chrome_trace(collector)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == n_threads * per_thread * 2
        # Every span of a logical thread exports onto one tid, and parents
        # share their children's tid — no cross-thread false nesting.
        tids_by_worker: dict[str, set[int]] = {}
        for event in complete:
            worker_name = event["name"].split(".")[0]
            tids_by_worker.setdefault(worker_name, set()).add(event["tid"])
        for worker_name, tids in tids_by_worker.items():
            assert len(tids) == 1, f"{worker_name} scattered across tids {tids}"
        assert len({next(iter(t)) for t in tids_by_worker.values()}) == n_threads

    def test_export_while_collecting(self):
        """to_chrome_trace on a live collector sees a consistent snapshot."""
        collector = obs.enable_tracing(max_spans=5000)
        errors: list[Exception] = []

        def producer() -> None:
            try:
                for _ in range(2000):
                    with obs.span("hot"):
                        pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            while thread.is_alive():
                trace = obs.to_chrome_trace(collector)
                json.dumps(trace)  # serializable snapshot at every point
        finally:
            thread.join()
        assert not errors
        final = obs.to_chrome_trace(collector)
        assert len([e for e in final["traceEvents"] if e["ph"] == "X"]) == 2000
