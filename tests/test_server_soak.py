"""Soak: many requests, several tenants, zero lost or duplicated responses.

``SERVER_SOAK_REQUESTS`` scales the run (default small for the tier-1
suite; CI's server job sets ``>= 500``).  Four tenants with skewed
weights submit concurrently while two consumers drain; every handle must
settle exactly once with the bytes of its corpus — cross-checked three
ways: per-handle results against precomputed direct ``summarize_many``
output, the server's own counters, and the ``request_done`` event stream
(one event per request id, no repeats).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro import obs
from repro.server import ServerConfig, SummarizationServer

SOAK_REQUESTS = int(os.environ.get("SERVER_SOAK_REQUESTS", "40"))
TENANTS = ("alpha", "beta", "gamma", "delta")
RESULT_TIMEOUT_S = 900.0


def test_soak_exactly_once(scenario):
    rng = np.random.default_rng(1234)
    corpora = [
        [t.raw for t in scenario.simulate_trips(
            2, depart_time=(7.0 + i) * 3600.0, rng=rng
        )]
        for i in range(3)
    ]
    expected = [
        scenario.stmaker.summarize_many(corpus, k=2) for corpus in corpora
    ]

    bus = obs.enable_events()
    log = obs.EventLog()
    bus.subscribe(log)

    config = ServerConfig(
        max_queue_requests=SOAK_REQUESTS + 8,
        tenant_weights={"alpha": 4, "beta": 2},
        consumers=2,
    )
    handles = []
    handles_lock = threading.Lock()

    def submitter(offset: int) -> None:
        # Each submitter thread plays one tenant, cycling the corpora;
        # every 7th request carries an already-expired deadline.
        tenant = TENANTS[offset]
        for i in range(offset, SOAK_REQUESTS, len(TENANTS)):
            corpus_index = i % len(corpora)
            deadline = 0.0 if i % 7 == 6 else None
            handle = server.submit(
                corpora[corpus_index], tenant=tenant, k=2,
                deadline_s=deadline,
            )
            with handles_lock:
                handles.append((handle, corpus_index, deadline))

    with SummarizationServer(scenario.stmaker, config) as server:
        submitters = [
            threading.Thread(target=submitter, args=(offset,))
            for offset in range(len(TENANTS))
        ]
        for thread in submitters:
            thread.start()
        for thread in submitters:
            thread.join()

        results = [
            (handle, handle.result(timeout=RESULT_TIMEOUT_S), corpus_index, deadline)
            for handle, corpus_index, deadline in handles
        ]
        stats = server.stats()

    # Every submitted request settled exactly once, with its own bytes.
    assert len(results) == SOAK_REQUESTS
    for handle, result, corpus_index, deadline in results:
        assert handle.done
        if deadline == 0.0:
            assert result.ok_count == 0
            assert all(
                e.error_type == "DeadlineExceeded" for e in result.quarantined
            )
        else:
            want = expected[corpus_index]
            assert [s.text for s in result.summaries] == [
                s.text for s in want.summaries
            ]
            assert result.quarantined == want.quarantined

    # The server's own ledger agrees: nothing lost, nothing double-counted.
    assert stats["submitted"] == SOAK_REQUESTS
    assert stats["served"] == SOAK_REQUESTS
    assert stats["failed"] == 0 and stats["shed"] == 0
    assert stats["in_flight"] == 0
    assert server.admission.queued_items == 0

    # And so does the event stream: one request_done per request id.
    done_ids = [e.payload["request_id"] for e in log.events("request_done")]
    enqueued_ids = [
        e.payload["request_id"] for e in log.events("request_enqueued")
    ]
    assert len(done_ids) == SOAK_REQUESTS
    assert len(set(done_ids)) == SOAK_REQUESTS
    assert sorted(done_ids) == sorted(enqueued_ids)

    # Weighted fairness left footprints: every tenant got served.
    tenants_done = {e.payload["tenant"] for e in log.events("request_done")}
    assert tenants_done == set(TENANTS)
