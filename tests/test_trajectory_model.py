"""Tests for raw/symbolic trajectory models."""

import pytest

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint, LocalProjector
from repro.trajectory import (
    RawTrajectory,
    SymbolicEntry,
    SymbolicTrajectory,
    TrajectoryPoint,
)

CENTER = GeoPoint(39.91, 116.40)


def make_raw(coords_times, trajectory_id="t1"):
    projector = LocalProjector(CENTER)
    points = [
        TrajectoryPoint(projector.to_point(x, y), t) for (x, y), t in coords_times
    ]
    return RawTrajectory(points, trajectory_id)


class TestRawTrajectory:
    def test_minimum_two_samples(self):
        with pytest.raises(TrajectoryError):
            make_raw([((0, 0), 0.0)])

    def test_unsorted_timestamps_rejected(self):
        with pytest.raises(TrajectoryError):
            make_raw([((0, 0), 10.0), ((10, 0), 5.0)])

    def test_equal_timestamps_allowed(self):
        t = make_raw([((0, 0), 10.0), ((10, 0), 10.0)])
        assert t.duration_s == 0.0

    def test_duration_and_times(self):
        t = make_raw([((0, 0), 100.0), ((10, 0), 130.0), ((20, 0), 160.0)])
        assert t.start_time == 100.0
        assert t.end_time == 160.0
        assert t.duration_s == 60.0

    def test_len_iter_getitem(self):
        t = make_raw([((0, 0), 0.0), ((10, 0), 1.0), ((20, 0), 2.0)])
        assert len(t) == 3
        assert t[1].t == 1.0
        assert [p.t for p in t] == [0.0, 1.0, 2.0]

    def test_length_m(self):
        projector = LocalProjector(CENTER)
        t = make_raw([((0, 0), 0.0), ((300, 0), 10.0), ((300, 400), 20.0)])
        assert t.length_m(projector) == pytest.approx(700.0, rel=1e-6)

    def test_slice_time_inclusive(self):
        t = make_raw([((0, 0), 0.0), ((10, 0), 10.0), ((20, 0), 20.0), ((30, 0), 30.0)])
        sliced = t.slice_time(10.0, 20.0)
        assert [p.t for p in sliced] == [10.0, 20.0]

    def test_slice_time_empty_window(self):
        t = make_raw([((0, 0), 0.0), ((10, 0), 10.0)])
        assert t.slice_time(3.0, 7.0) == []

    def test_slice_time_invalid(self):
        t = make_raw([((0, 0), 0.0), ((10, 0), 10.0)])
        with pytest.raises(TrajectoryError):
            t.slice_time(10.0, 5.0)

    def test_bounding_box(self):
        t = make_raw([((0, 0), 0.0), ((100, 200), 10.0)])
        box = t.bounding_box()
        assert box.contains(t[0].point)
        assert box.contains(t[1].point)

    def test_repr_mentions_id(self):
        t = make_raw([((0, 0), 0.0), ((10, 0), 10.0)], trajectory_id="taxi-9")
        assert "taxi-9" in repr(t)


class TestSymbolicTrajectory:
    def test_minimum_two_anchors(self):
        with pytest.raises(TrajectoryError):
            SymbolicTrajectory([SymbolicEntry(0, 0.0)])

    def test_unsorted_times_rejected(self):
        with pytest.raises(TrajectoryError):
            SymbolicTrajectory([SymbolicEntry(0, 10.0), SymbolicEntry(1, 5.0)])

    def test_consecutive_duplicates_rejected(self):
        with pytest.raises(TrajectoryError):
            SymbolicTrajectory([SymbolicEntry(0, 0.0), SymbolicEntry(0, 10.0)])

    def test_revisit_later_allowed(self):
        t = SymbolicTrajectory(
            [SymbolicEntry(0, 0.0), SymbolicEntry(1, 10.0), SymbolicEntry(0, 20.0)]
        )
        assert t.landmark_ids() == [0, 1, 0]

    def test_size_is_landmark_count(self):
        t = SymbolicTrajectory([SymbolicEntry(i, float(i)) for i in range(5)])
        assert len(t) == 5
        assert t.segment_count == 4

    def test_segments(self):
        t = SymbolicTrajectory(
            [SymbolicEntry(7, 0.0), SymbolicEntry(3, 60.0), SymbolicEntry(9, 150.0)]
        )
        segments = t.segments()
        assert len(segments) == 2
        first = segments[0]
        assert (first.index, first.start_landmark, first.end_landmark) == (0, 7, 3)
        assert first.duration_s == 60.0
        second = segments[1]
        assert (second.start_landmark, second.end_landmark) == (3, 9)
        assert second.duration_s == 90.0

    def test_iteration_and_indexing(self):
        entries = [SymbolicEntry(i, float(i)) for i in range(3)]
        t = SymbolicTrajectory(entries)
        assert list(t) == entries
        assert t[2] == entries[2]
