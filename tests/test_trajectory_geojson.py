"""Tests for GeoJSON export."""

import json

import numpy as np
import pytest

from repro.trajectory import (
    network_to_geojson,
    save_geojson,
    summary_to_geojson,
    trajectory_to_geojson,
)


@pytest.fixture(scope="module")
def trip_and_summary(scenario):
    rng = np.random.default_rng(90)
    trip = scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]
    return trip, scenario.stmaker.summarize(trip.raw, k=2)


class TestTrajectoryGeojson:
    def test_linestring_shape(self, trip_and_summary):
        trip, _ = trip_and_summary
        feature = trajectory_to_geojson(trip.raw)
        assert feature["type"] == "Feature"
        assert feature["geometry"]["type"] == "LineString"
        coords = feature["geometry"]["coordinates"]
        assert len(coords) == len(trip.raw)
        # GeoJSON is (lon, lat).
        assert coords[0][0] == trip.raw[0].point.lon
        assert coords[0][1] == trip.raw[0].point.lat

    def test_timestamps_aligned(self, trip_and_summary):
        trip, _ = trip_and_summary
        feature = trajectory_to_geojson(trip.raw)
        timestamps = feature["properties"]["timestamps"]
        assert len(timestamps) == len(trip.raw)
        assert timestamps[0] == trip.raw.start_time

    def test_json_serializable(self, trip_and_summary):
        trip, _ = trip_and_summary
        json.dumps(trajectory_to_geojson(trip.raw))


class TestNetworkGeojson:
    def test_feature_per_edge(self, scenario):
        collection = network_to_geojson(scenario.network)
        assert collection["type"] == "FeatureCollection"
        assert len(collection["features"]) == scenario.network.edge_count
        sample = collection["features"][0]["properties"]
        assert {"name", "grade", "grade_name", "width_m", "one_way"} <= set(sample)


class TestSummaryGeojson:
    def test_track_plus_landmarks(self, scenario, trip_and_summary):
        trip, summary = trip_and_summary
        collection = summary_to_geojson(trip.raw, summary, scenario.landmarks)
        kinds = [f["geometry"]["type"] for f in collection["features"]]
        assert kinds[0] == "LineString"
        assert kinds.count("Point") >= 2  # at least source and destination
        assert collection["features"][0]["properties"]["summary"] == summary.text

    def test_landmark_points_carry_sentences(self, scenario, trip_and_summary):
        trip, summary = trip_and_summary
        collection = summary_to_geojson(trip.raw, summary, scenario.landmarks)
        points = [
            f for f in collection["features"] if f["geometry"]["type"] == "Point"
        ]
        for point in points:
            props = point["properties"]
            assert props["name"]
            assert props["sentence"].endswith(".")
            assert 0.0 <= props["significance"] <= 1.0

    def test_save_roundtrip(self, scenario, trip_and_summary, tmp_path):
        trip, summary = trip_and_summary
        path = tmp_path / "summary.geojson"
        save_geojson(summary_to_geojson(trip.raw, summary, scenario.landmarks), path)
        back = json.loads(path.read_text())
        assert back["type"] == "FeatureCollection"
