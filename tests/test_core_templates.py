"""Tests for the phrase and sentence templates (Tables V and VI)."""

import pytest

from repro.core import number_word, partition_sentence, phrase_for, pluralize, summary_text
from repro.core.types import FeatureAssessment, PartitionSpan, PartitionSummary
from repro.exceptions import SummarizationError
from repro.features import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    SPEED,
    SPEED_CHANGES,
    STAY_POINTS,
    TRAFFIC_DIRECTION,
    U_TURNS,
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    default_registry,
)
from repro.roadnet import RoadGrade, TrafficDirection


@pytest.fixture(scope="module")
def registry():
    return default_registry(include_speed_change=True)


def assess(key, kind, observed, regular, extras=None):
    return FeatureAssessment(key, kind, observed, regular, 0.5, extras or {})


class TestNumberWords:
    def test_small_numbers_spelled(self):
        assert number_word(1) == "one"
        assert number_word(2) == "two"
        assert number_word(0) == "zero"

    def test_large_numbers_digits(self):
        assert number_word(17) == "17"

    def test_pluralize(self):
        assert pluralize(1, "U-turn") == "U-turn"
        assert pluralize(3, "U-turn") == "U-turns"
        assert pluralize(2, "foot", "feet") == "feet"


class TestPhrases:
    def test_speed_slower(self, registry):
        a = assess(SPEED, FeatureKind.MOVING, 36.0, 50.0)
        phrase = phrase_for(a, registry)
        assert phrase == "with the speed of 36 km/h which was 14 km/h slower than usual"

    def test_speed_faster(self, registry):
        a = assess(SPEED, FeatureKind.MOVING, 80.0, 60.0)
        assert "20 km/h faster than usual" in phrase_for(a, registry)

    def test_stay_points_with_duration(self, registry):
        a = assess(STAY_POINTS, FeatureKind.MOVING, 2.0, 0.0, {"stay_total_s": 167.0})
        phrase = phrase_for(a, registry)
        assert "two staying points" in phrase
        assert "167 seconds" in phrase

    def test_single_stay_point_singular(self, registry):
        a = assess(STAY_POINTS, FeatureKind.MOVING, 1.0, 0.0)
        assert "one staying point" in phrase_for(a, registry)
        assert "points" not in phrase_for(a, registry)

    def test_u_turn_with_place(self, registry):
        a = assess(
            U_TURNS, FeatureKind.MOVING, 1.0, 0.0, {"u_turn_places": ["Zhichun Road"]}
        )
        phrase = phrase_for(a, registry)
        assert phrase == "with conducting one U-turn at Zhichun Road"

    def test_u_turn_places_deduplicated(self, registry):
        a = assess(
            U_TURNS, FeatureKind.MOVING, 2.0, 0.0,
            {"u_turn_places": ["A Road", "A Road"]},
        )
        assert phrase_for(a, registry).endswith("at A Road")

    def test_grade_phrase_mentions_both_roads(self, registry):
        a = assess(
            GRADE_OF_ROAD, FeatureKind.ROUTING, 7.0, 1.0,
            {
                "observed_grade": RoadGrade.FEEDER,
                "observed_road_name": "Anping Lane",
                "regular_grade": RoadGrade.HIGHWAY,
            },
        )
        phrase = phrase_for(a, registry)
        assert "feeder road (Anping Lane)" in phrase
        assert "most drivers choose highway" in phrase

    def test_width_comparative(self, registry):
        narrower = assess(ROAD_WIDTH, FeatureKind.ROUTING, 5.0, 20.0)
        assert "prefer wider roads" in phrase_for(narrower, registry)
        wider = assess(ROAD_WIDTH, FeatureKind.ROUTING, 25.0, 10.0)
        assert "prefer narrower roads" in phrase_for(wider, registry)

    def test_direction_phrase(self, registry):
        a = assess(
            TRAFFIC_DIRECTION, FeatureKind.ROUTING,
            float(int(TrafficDirection.ONE_WAY)), float(int(TrafficDirection.TWO_WAY)),
        )
        phrase = phrase_for(a, registry)
        assert "one-way road" in phrase
        assert "two-way road" in phrase

    def test_speed_change_phrase(self, registry):
        a = assess(SPEED_CHANGES, FeatureKind.MOVING, 3.0, 0.0)
        assert phrase_for(a, registry) == "with three sharp speed changes"

    def test_custom_feature_phrase_hook(self):
        definition = FeatureDefinition(
            "fuel", "Fuel", FeatureKind.MOVING, FeatureDtype.NUMERIC,
            phrase=lambda a: f"burning {a.observed:.1f} litres",
        )
        registry = default_registry()
        registry.register(definition)
        a = assess("fuel", FeatureKind.MOVING, 4.2, 2.0)
        assert phrase_for(a, registry) == "burning 4.2 litres"

    def test_unknown_feature_generic_fallback(self):
        registry = default_registry()
        registry.register(
            FeatureDefinition("noise", "Noise", FeatureKind.MOVING, FeatureDtype.NUMERIC)
        )
        a = assess("noise", FeatureKind.MOVING, 70.0, 50.0)
        phrase = phrase_for(a, registry)
        assert "Noise" in phrase and "70.0" in phrase


class TestSentences:
    def test_first_partition_opener(self, registry):
        sentence = partition_sentence("Daoxiang Community", "Haidian Hospital", [], registry, True)
        assert sentence == (
            "The car started from the Daoxiang Community to the "
            "Haidian Hospital smoothly."
        )

    def test_later_partition_opener(self, registry):
        sentence = partition_sentence("A", "B", [], registry, False)
        assert sentence.startswith("Then it moved from the A to the B")

    def test_features_joined(self, registry):
        selected = [
            assess(STAY_POINTS, FeatureKind.MOVING, 2.0, 0.0, {"stay_total_s": 167.0}),
            assess(SPEED, FeatureKind.MOVING, 36.0, 50.0),
        ]
        sentence = partition_sentence("A", "B", selected, registry, True)
        assert "two staying points" in sentence
        assert "slower than usual" in sentence
        assert sentence.endswith(".")

    def test_through_phrases_lead(self, registry):
        selected = [
            assess(SPEED, FeatureKind.MOVING, 36.0, 50.0),
            assess(
                GRADE_OF_ROAD, FeatureKind.ROUTING, 1.0, 7.0,
                {"observed_grade": RoadGrade.HIGHWAY, "regular_grade": RoadGrade.FEEDER},
            ),
        ]
        sentence = partition_sentence("A", "B", selected, registry, True)
        assert sentence.index("through") < sentence.index("speed")

    def test_summary_text_concatenates(self, registry):
        p1 = PartitionSummary(PartitionSpan(0, 0), "A", "B", [], [], "First.")
        p2 = PartitionSummary(PartitionSpan(1, 1), "B", "C", [], [], "Second.")
        assert summary_text([p1, p2]) == "First. Second."

    def test_summary_text_empty_rejected(self):
        with pytest.raises(SummarizationError):
            summary_text([])
