"""End-to-end observability: the instrumented pipeline emits the expected
spans and metric series, and stays a no-op when disabled."""

from __future__ import annotations

import pytest

from repro import obs

#: The five pipeline stages of Fig. 3, as instrumented span names.
PIPELINE_STAGES = ("calibrate", "extract_features", "partition", "select", "realize")


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_tracing()
    obs.disable_metrics()


class TestPipelineTrace:
    def test_summarize_emits_all_five_stage_spans(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        collector = obs.enable_tracing()
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        assert summary.text

        names = {record.name for record in collector.spans()}
        for stage in PIPELINE_STAGES:
            assert stage in names, f"missing stage span {stage!r}"
        assert "summarize" in names

        # Sane durations: positive-ish, and every stage fits inside the
        # end-to-end summarize span.
        root = collector.by_name("summarize")[-1]
        assert 0.0 < root.duration_ms < 60_000.0
        for stage in PIPELINE_STAGES:
            for record in collector.by_name(stage):
                assert 0.0 <= record.duration_ms <= root.duration_ms + 1.0

    def test_stage_spans_nest_under_summarize(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        collector = obs.enable_tracing()
        scenario.stmaker.summarize(trip.raw)
        root = collector.by_name("summarize")[-1]
        for stage in PIPELINE_STAGES:
            spans = collector.by_name(stage)
            assert spans
            for record in spans:
                assert record.parent_id == root.span_id
                assert record.depth == root.depth + 1

    def test_select_spans_once_per_partition(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        collector = obs.enable_tracing()
        summary = scenario.stmaker.summarize(trip.raw, k=3)
        assert len(collector.by_name("select")) == summary.partition_count
        assert len(collector.by_name("realize")) == summary.partition_count

    def test_failed_calibration_traced_as_error(self, scenario):
        from repro.exceptions import CalibrationError
        from repro.geo import GeoPoint
        from repro.trajectory import RawTrajectory, TrajectoryPoint

        far_away = RawTrajectory(
            [
                TrajectoryPoint(GeoPoint(1.0, 1.0), 0.0),
                TrajectoryPoint(GeoPoint(1.001, 1.001), 60.0),
            ],
            "far-away",
        )
        collector = obs.enable_tracing()
        registry = obs.enable_metrics()
        with pytest.raises(CalibrationError):
            scenario.stmaker.summarize(far_away)
        calibrate = collector.by_name("calibrate")[-1]
        assert calibrate.status == "error"
        assert "CalibrationError" in calibrate.error
        # The enclosing summarize span also records the failure.
        root = collector.by_name("summarize")[-1]
        assert root.status == "error"
        assert registry.counter("calibration.failures").value >= 1


class TestPipelineMetrics:
    def test_snapshot_has_at_least_eight_series(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        registry = obs.enable_metrics()
        scenario.stmaker.summarize(trip.raw, k=2)
        snapshot = registry.snapshot()
        assert len(snapshot) >= 8, sorted(snapshot)
        for name in (
            "summarize.calls",
            "summarize.latency_ms",
            "calibration.calls",
            "calibration.landmarks_matched",
            "features.segments_extracted",
            "partition.dp_cells",
            "selection.features_selected",
            "realize.sentences",
        ):
            assert name in snapshot, f"missing series {name!r}"
        assert snapshot["summarize.calls"]["value"] == 1.0
        assert snapshot["summarize.latency_ms"]["count"] == 1
        assert snapshot["summarize.latency_ms"]["sum"] > 0.0

    def test_dp_cells_scale_with_k(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        symbolic = scenario.stmaker.calibrator.calibrate(trip.raw)
        n = symbolic.segment_count
        registry = obs.enable_metrics()
        scenario.stmaker.summarize(trip.raw, k=2)
        assert registry.counter("partition.dp_cells").value == n * 2


class TestNoOpPath:
    def test_disabled_pipeline_leaves_no_trace(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        # Run once with everything off ...
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        assert summary.text
        # ... then verify no state accumulated anywhere.
        assert obs.get_collector() is None
        assert obs.metrics().snapshot() == {}

    def test_summaries_identical_with_and_without_obs(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        plain = scenario.stmaker.summarize(trip.raw, k=2)
        obs.enable_tracing()
        obs.enable_metrics()
        traced = scenario.stmaker.summarize(trip.raw, k=2)
        assert traced.text == plain.text
        assert [p.sentence for p in traced.partitions] == [
            p.sentence for p in plain.partitions
        ]

    def test_experiment_timer_works_without_obs(self, scenario):
        from repro.experiments import run_efficiency

        result = run_efficiency(scenario, n_trips=6)
        assert result.by_size
        assert all(ms >= 0.0 for _, ms in result.by_size)
        assert obs.get_collector() is None
