"""Tests for Yen's k-shortest paths, cross-checked against networkx."""

from itertools import islice

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import NoPathError, RoadNetworkError
from repro.roadnet import k_shortest_paths


def to_networkx(network):
    g = nx.DiGraph()
    for node in network.nodes():
        g.add_node(node.node_id)
    for node in network.nodes():
        for edge, neighbor in network.out_edges(node.node_id):
            g.add_edge(node.node_id, neighbor, weight=edge.length_m)
    return g


class TestKPathsMicro:
    def test_first_path_is_shortest(self, micro_network):
        paths = k_shortest_paths(micro_network, 0, 2, k=1)
        assert len(paths) == 1
        cost, path = paths[0]
        assert path == [0, 1, 2]
        assert cost == pytest.approx(1000.0, rel=1e-3)

    def test_paths_sorted_and_distinct(self, micro_network):
        paths = k_shortest_paths(micro_network, 0, 8, k=4)
        costs = [c for c, _ in paths]
        assert costs == sorted(costs)
        as_tuples = {tuple(p) for _, p in paths}
        assert len(as_tuples) == len(paths)

    def test_paths_are_loopless_and_valid(self, micro_network):
        for cost, path in k_shortest_paths(micro_network, 0, 8, k=5):
            assert len(set(path)) == len(path)  # loopless
            assert path[0] == 0 and path[-1] == 8
            assert micro_network.path_length_m(path) == pytest.approx(cost, rel=1e-9)

    def test_respects_one_way(self, micro_network):
        # No returned path may traverse the one-way column downward.
        for _, path in k_shortest_paths(micro_network, 6, 0, k=6):
            for u, v in zip(path, path[1:]):
                assert micro_network.edge_between(u, v) is not None

    def test_invalid_k(self, micro_network):
        with pytest.raises(RoadNetworkError):
            k_shortest_paths(micro_network, 0, 2, k=0)

    def test_unreachable_raises(self, micro_network, projector):
        from repro.roadnet import RoadNetwork

        net = RoadNetwork(projector)
        net.add_node(projector.to_point(0, 0))
        net.add_node(projector.to_point(1000, 0))
        with pytest.raises(NoPathError):
            k_shortest_paths(net, 0, 1, k=2)

    def test_exhausts_gracefully(self, micro_network):
        # Asking for more paths than exist returns what exists.
        paths = k_shortest_paths(micro_network, 0, 1, k=50)
        assert 1 <= len(paths) < 50


class TestAgainstNetworkx:
    def test_costs_match_networkx(self, city):
        g = to_networkx(city)
        rng = np.random.default_rng(8)
        ids = city.node_ids()
        for _ in range(5):
            i, j = (int(x) for x in rng.choice(len(ids), size=2, replace=False))
            source, target = ids[i], ids[j]
            ours = k_shortest_paths(city, source, target, k=4)
            theirs = list(
                islice(nx.shortest_simple_paths(g, source, target, weight="weight"), 4)
            )
            their_costs = [
                nx.path_weight(g, p, weight="weight") for p in theirs
            ]
            our_costs = [c for c, _ in ours]
            assert len(our_costs) == len(their_costs)
            for a, b in zip(our_costs, their_costs):
                assert a == pytest.approx(b, rel=1e-9)
