"""Circuit breaker: the state machine, the registry, and degraded routing.

The unit half drives :class:`~repro.serving.CircuitBreaker` through every
transition with a fake clock; the integration half proves that an *open*
breaker reroutes process-executor shards to the in-parent degraded path
with results element-wise identical to serial — the pool is bypassed, the
batch is not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    BREAKER_STATES,
    CircuitBreaker,
    all_breakers,
    get_breaker,
    reset_breakers,
)
from repro.trajectory import RawTrajectory


class _FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock():
    return _FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        "test", failure_threshold=0.5, min_volume=4, window=8,
        cooldown_s=10.0, clock=clock,
    )


@pytest.fixture()
def clean_obs():
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_events()


def _trip(breaker: CircuitBreaker, n: int = 4) -> None:
    for _ in range(n):
        breaker.record_failure()


# -- state machine ------------------------------------------------------------


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.trips == 0

    def test_no_trip_below_min_volume(self, breaker):
        for _ in range(3):  # min_volume is 4
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 1.0

    def test_no_trip_below_failure_threshold(self, breaker):
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()  # 2/8 = 0.25 < 0.5
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_at_volume_and_threshold(self, breaker):
        _trip(breaker)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_mixed_window_trips_at_exact_threshold(self, breaker):
        for outcome in (False, True, False, True):  # 2/4 = 0.5 = threshold
            if outcome:
                breaker.record_failure()
            else:
                breaker.record_success()
        assert breaker.state == "open"

    def test_window_slides_old_failures_out(self, clock):
        breaker = CircuitBreaker(
            "slide", failure_threshold=0.5, min_volume=4, window=4,
            cooldown_s=10.0, clock=clock,
        )
        breaker.record_failure()
        for _ in range(4):  # pushes the one failure out of the window
            breaker.record_success()
        breaker.record_failure()  # 1/4 = 0.25 < 0.5
        assert breaker.state == "closed"

    def test_cooldown_half_opens_with_single_probe(self, breaker, clock):
        _trip(breaker)
        clock.t = 9.9
        assert not breaker.allow()
        clock.t = 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # everyone else still degraded
        assert not breaker.allow()

    def test_probe_success_closes_and_clears_window(self, breaker, clock):
        _trip(breaker)
        clock.t = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0  # fresh start, old storm gone
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        _trip(breaker)
        clock.t = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.t = 20.0  # a full cooldown after the re-trip
        assert breaker.state == "half_open"

    def test_reset_restores_pristine_closed(self, breaker):
        _trip(breaker)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0
        assert breaker.allow()

    def test_snapshot(self, breaker):
        _trip(breaker)
        snap = breaker.snapshot()
        assert snap["name"] == "test"
        assert snap["state"] == "open"
        assert snap["failure_rate"] == 1.0
        assert snap["volume"] == 4
        assert snap["trips"] == 1

    def test_config_validation(self, clock):
        with pytest.raises(ConfigError):
            CircuitBreaker("x", failure_threshold=0.0)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", failure_threshold=1.5)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", min_volume=0)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", min_volume=8, window=4)
        with pytest.raises(ConfigError):
            CircuitBreaker("x", cooldown_s=-1.0)


# -- observability ------------------------------------------------------------


class TestBreakerObservability:
    def test_trip_and_recovery_emit_events_and_metrics(self, clock, clean_obs):
        registry = obs.enable_metrics(MetricsRegistry())
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        breaker = CircuitBreaker(
            "evt", min_volume=4, cooldown_s=10.0, clock=clock
        )
        _trip(breaker)

        [opened] = log.events("breaker_open")
        assert opened.payload["breaker"] == "evt"
        assert opened.payload["failure_rate"] == 1.0
        assert registry.counter("serving.breaker.trips").value == 1.0
        assert registry.gauge("serving.breaker.evt.state").value == float(
            BREAKER_STATES.index("open")
        )

        clock.t = 10.0
        assert breaker.allow()
        breaker.record_success()
        [closed] = log.events("breaker_close")
        assert closed.payload["breaker"] == "evt"
        assert registry.gauge("serving.breaker.evt.state").value == float(
            BREAKER_STATES.index("closed")
        )


# -- registry -----------------------------------------------------------------


class TestRegistry:
    @pytest.fixture(autouse=True)
    def _isolated_registry(self):
        reset_breakers()
        yield
        reset_breakers()

    def test_one_name_one_breaker(self):
        a = get_breaker("serving.process")
        b = get_breaker("serving.process")
        assert a is b
        assert all_breakers() == (a,)

    def test_kwargs_only_configure_on_creation(self):
        a = get_breaker("x", cooldown_s=5.0)
        b = get_breaker("x", cooldown_s=99.0)
        assert b is a
        assert a.cooldown_s == 5.0

    def test_reset_breakers_drops_everything(self):
        get_breaker("x")
        reset_breakers()
        assert all_breakers() == ()


# -- integration: open breaker reroutes process shards ------------------------


@pytest.fixture(scope="module")
def trips(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(55)
    sims = [
        scenario.simulate_trips(1, depart_time=(8.0 + 0.6 * i) * 3600.0, rng=rng)[0]
        for i in range(6)
    ]
    return [
        RawTrajectory(s.raw.points, f"bt-{i:02d}") for i, s in enumerate(sims)
    ]


class TestDegradedRouting:
    def test_open_breaker_serves_batch_in_parent(self, scenario, trips, clean_obs):
        """An open breaker must degrade the *path*, never the *batch*."""
        stmaker = scenario.stmaker
        serial = stmaker.summarize_many(trips, k=2)

        registry = obs.enable_metrics(MetricsRegistry())
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        clock = _FakeClock()
        breaker = CircuitBreaker(
            "route-test", min_volume=2, cooldown_s=1e9, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"

        parallel = stmaker.summarize_many(
            trips, k=2, workers=2, shard_size=2, executor="process",
            breaker=breaker,
        )

        assert parallel.ok_count == serial.ok_count
        assert parallel.quarantined == serial.quarantined
        for ours, theirs in zip(parallel.summaries, serial.summaries, strict=True):
            assert ours.trajectory_id == theirs.trajectory_id
            assert ours.text == theirs.text
            assert ours.partitions == theirs.partitions
        # Every shard was denied the pool and ran degraded in-parent.
        assert registry.counter("serving.breaker.denied_shards").value == 3.0
        ends = log.events("shard_end")
        assert len(ends) == 3
        assert all(e.payload.get("degraded") for e in ends)

    def test_closed_breaker_records_shard_successes(self, scenario, trips, clean_obs):
        stmaker = scenario.stmaker
        breaker = CircuitBreaker("healthy", min_volume=2, clock=_FakeClock())
        stmaker.summarize_many(
            trips, k=2, workers=2, shard_size=2, executor="process",
            breaker=breaker,
        )
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0
        snap = breaker.snapshot()
        assert snap["volume"] == 3  # one success per shard
