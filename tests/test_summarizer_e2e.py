"""End-to-end tests of the STMaker pipeline on the simulated city."""

import numpy as np
import pytest

from repro.core import SummarizerConfig
from repro.exceptions import ConfigError
from repro.features import SPEED, STAY_POINTS, U_TURNS
from repro.simulate import TripConfig, TripSimulator
from repro.trajectory import downsample_by_time


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(123)


class TestSummarizeBasics:
    def test_summary_structure(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        summary = scenario.stmaker.summarize(trip.raw)
        assert summary.text
        assert summary.partition_count >= 1
        assert summary.text.endswith(".")
        assert summary.partitions[0].sentence.startswith("The car started from the ")

    def test_k_controls_partition_count(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        for k in (1, 2, 3):
            summary = scenario.stmaker.summarize(trip.raw, k=k)
            assert summary.partition_count == k

    def test_k_one_single_sentence(self, scenario):
        trip = scenario.simulate_trip(depart_time=14 * 3600.0)
        summary = scenario.stmaker.summarize(trip.raw, k=1)
        assert summary.partition_count == 1
        assert "Then it moved" not in summary.text

    def test_huge_k_clamped(self, scenario):
        trip = scenario.simulate_trip(depart_time=14 * 3600.0)
        summary = scenario.stmaker.summarize(trip.raw, k=10_000)
        symbolic = scenario.stmaker.calibrator.calibrate(trip.raw)
        assert summary.partition_count == symbolic.segment_count

    def test_partitions_tile_the_trajectory(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        summary = scenario.stmaker.summarize(trip.raw, k=3)
        spans = [p.span for p in summary.partitions]
        assert spans[0].start_seg == 0
        for a, b in zip(spans, spans[1:]):
            assert b.start_seg == a.end_seg + 1

    def test_endpoint_names_chain(self, scenario):
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        summary = scenario.stmaker.summarize(trip.raw, k=3)
        for a, b in zip(summary.partitions, summary.partitions[1:]):
            assert a.destination_name == b.source_name

    def test_deterministic_summaries(self, scenario):
        trip = scenario.simulate_trip(depart_time=16 * 3600.0)
        a = scenario.stmaker.summarize(trip.raw, k=2)
        b = scenario.stmaker.summarize(trip.raw, k=2)
        assert a.text == b.text


class TestSummaryContent:
    def test_stops_surface_in_summary(self, scenario, rng):
        # Find a test trip with substantial dwell time; its summary should
        # mention staying points.
        for _ in range(10):
            trip = scenario.simulate_trip(depart_time=8 * 3600.0, rng=rng)
            total_stop = sum(s.duration_s for s in trip.stops)
            if total_stop >= 90.0:
                summary = scenario.stmaker.summarize(trip.raw)
                if "staying point" in summary.text:
                    return
        pytest.fail("no summary mentioned staying points despite long stops")

    def test_u_turn_surfaces_in_summary(self, scenario):
        # A single U-turn dilutes over a long partition (Sec. V-B divides by
        # |TP|) — exactly why the paper's Fig. 10(b) shows moving features
        # appearing more as k grows.  Use a finer granularity here.
        config = TripConfig(u_turn_probability=1.0)
        simulator = TripSimulator(scenario.network, scenario.traffic, config)
        rng = np.random.default_rng(77)
        for _ in range(8):
            origin, destination = scenario.fleet.sample_od(rng)
            trip = simulator.simulate(origin, destination, 11 * 3600.0, rng)
            summary = scenario.stmaker.summarize(trip.raw, k=6)
            if "U-turn" in summary.text:
                return
        pytest.fail("no summary mentioned the forced U-turn")

    def test_no_zero_count_phrases(self, scenario, rng):
        for _ in range(5):
            trip = scenario.simulate_trip(depart_time=12 * 3600.0, rng=rng)
            text = scenario.stmaker.summarize(trip.raw).text
            assert "zero staying" not in text
            assert "zero U-turn" not in text

    def test_smooth_partition_reads_smoothly(self, scenario, rng):
        # Night trips on the usual routes often have nothing to report.
        texts = [
            scenario.stmaker.summarize(
                scenario.simulate_trip(depart_time=2 * 3600.0, rng=rng).raw, k=4
            ).text
            for _ in range(6)
        ]
        assert any("smoothly" in text for text in texts)

    def test_selected_features_meet_threshold(self, scenario, rng):
        trip = scenario.simulate_trip(depart_time=9 * 3600.0, rng=rng)
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        threshold = scenario.stmaker.config.irregular_threshold
        for partition in summary.partitions:
            for assessment in partition.selected:
                assert assessment.irregular_rate >= threshold
            for assessment in partition.assessments:
                if assessment.irregular_rate < threshold:
                    assert assessment not in partition.selected


class TestSamplingInvariance:
    def test_downsampled_trip_similar_summary(self, scenario):
        """Paper Sec. II-A: sampling strategy must not change the story."""
        rng = np.random.default_rng(5)
        trip = scenario.simulate_trip(depart_time=10 * 3600.0, rng=rng)
        sparse = downsample_by_time(trip.raw, 15.0)
        dense_symbolic = scenario.stmaker.calibrator.calibrate(trip.raw)
        sparse_symbolic = scenario.stmaker.calibrator.calibrate(sparse)
        dense_ids = dense_symbolic.landmark_ids()
        sparse_ids = sparse_symbolic.landmark_ids()
        # The landmark skeletons must agree almost everywhere.
        common = set(dense_ids) & set(sparse_ids)
        assert len(common) >= 0.8 * max(len(dense_ids), len(sparse_ids))
        dense_summary = scenario.stmaker.summarize_calibrated(trip.raw, dense_symbolic, k=1)
        sparse_summary = scenario.stmaker.summarize_calibrated(sparse, sparse_symbolic, k=1)
        assert dense_summary.partitions[0].source_name == (
            sparse_summary.partitions[0].source_name
        )
        assert dense_summary.partitions[0].destination_name == (
            sparse_summary.partitions[0].destination_name
        )


class TestWeightEffects:
    def test_higher_speed_weight_selects_speed_more(self, scenario):
        rng_low = np.random.default_rng(42)
        rng_high = np.random.default_rng(42)
        low = scenario.summarizer_with(
            SummarizerConfig(feature_weights={SPEED: 0.25})
        )
        high = scenario.summarizer_with(
            SummarizerConfig(feature_weights={SPEED: 4.0})
        )
        low_hits = high_hits = 0
        trips = scenario.simulate_trips(12, depart_time=8 * 3600.0)
        for trip in trips:
            if SPEED in low.summarize(trip.raw, k=2).selected_feature_keys():
                low_hits += 1
            if SPEED in high.summarize(trip.raw, k=2).selected_feature_keys():
                high_hits += 1
        assert high_hits >= low_hits

    def test_with_config_shares_history(self, scenario):
        other = scenario.summarizer_with(SummarizerConfig(ca=1.0))
        assert other.transfers is scenario.stmaker.transfers
        assert other.feature_map is scenario.stmaker.feature_map
        assert other.config.ca == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            SummarizerConfig(ca=-1.0)
        with pytest.raises(ConfigError):
            SummarizerConfig(feature_weights={"speed": -2.0})
