"""Failure-injection, sanitizer, chaos, and fuzz tests for the pipeline.

Real GPS corpora contain duplicate timestamps, dead zones, teleport
glitches, and absurd sampling rates; the pipeline must either produce a
valid summary or raise the library's typed exceptions — never crash with
an arbitrary error or emit malformed text.  The chaos tests additionally
inject a fault into each of the five stages and prove that the matching
fallback fires, is recorded in the degradation report, and is counted in
the metrics registry.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.exceptions import CalibrationError, ReproError, TransientError
from repro.geo import GeoPoint
from repro.resilience import (
    STAGES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)
from repro.trajectory import (
    RawTrajectory,
    SanitizerConfig,
    TrajectoryPoint,
    sanitize_points,
    sanitize_records,
    sanitize_trajectory,
)


def _valid_summary(summary) -> bool:
    return (
        bool(summary.text)
        and summary.text.endswith(".")
        and summary.partition_count >= 1
        and summary.text.startswith("The car started from")
    )


@pytest.fixture(scope="module")
def base_trip(scenario):
    rng = np.random.default_rng(303)
    return scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]


class TestCorruptedInput:
    def test_duplicate_timestamps(self, scenario, base_trip):
        points = []
        for p in base_trip.raw:
            points.append(p)
            points.append(TrajectoryPoint(p.point, p.t))  # exact duplicate
        trip = RawTrajectory(points, "dupes")
        summary = scenario.stmaker.summarize(trip, k=2)
        assert _valid_summary(summary)

    def test_gps_dead_zone(self, scenario, base_trip):
        # Remove the middle third of the samples (tunnel / urban canyon).
        pts = list(base_trip.raw.points)
        n = len(pts)
        trip = RawTrajectory(pts[: n // 3] + pts[2 * n // 3 :], "deadzone")
        summary = scenario.stmaker.summarize(trip, k=2)
        assert _valid_summary(summary)

    def test_teleport_glitch(self, scenario, base_trip):
        # One sample jumps 3 km off-route and returns (multipath glitch).
        pts = list(base_trip.raw.points)
        mid = len(pts) // 2
        projector = scenario.network.projector
        x, y = projector.to_xy(pts[mid].point)
        pts[mid] = TrajectoryPoint(projector.to_point(x + 3000.0, y), pts[mid].t)
        summary = scenario.stmaker.summarize(RawTrajectory(pts, "glitch"), k=2)
        assert _valid_summary(summary)

    def test_heavy_noise(self, scenario, base_trip):
        rng = np.random.default_rng(1)
        projector = scenario.network.projector
        pts = []
        for p in base_trip.raw:
            x, y = projector.to_xy(p.point)
            pts.append(
                TrajectoryPoint(
                    projector.to_point(
                        x + float(rng.normal(0, 25)), y + float(rng.normal(0, 25))
                    ),
                    p.t,
                )
            )
        summary = scenario.stmaker.summarize(RawTrajectory(pts, "noisy"), k=2)
        assert _valid_summary(summary)

    def test_two_point_trajectory(self, scenario, base_trip):
        trip = RawTrajectory(
            [base_trip.raw[0], base_trip.raw[-1]], "twopoint"
        )
        try:
            summary = scenario.stmaker.summarize(trip)
            assert _valid_summary(summary)
        except CalibrationError:
            pass  # a typed failure is acceptable for degenerate input

    def test_off_map_trajectory_raises_typed_error(self, scenario):
        projector = scenario.network.projector
        pts = [
            TrajectoryPoint(projector.to_point(90_000.0 + i * 50.0, 90_000.0), i * 5.0)
            for i in range(20)
        ]
        with pytest.raises(ReproError):
            scenario.stmaker.summarize(RawTrajectory(pts, "offmap"))


class TestFuzz:
    @pytest.mark.parametrize("seed", [11, 22, 33, 44, 55, 66])
    def test_random_trips_always_summarize(self, scenario, seed):
        rng = np.random.default_rng(seed)
        hour = float(rng.uniform(0, 24))
        trip = scenario.simulate_trips(1, depart_time=hour * 3600.0, rng=rng)[0]
        for k in (None, 1, 3):
            summary = scenario.stmaker.summarize(trip.raw, k=k)
            assert _valid_summary(summary)
            # Every sentence is well-formed.
            for partition in summary.partitions:
                assert partition.sentence.rstrip().endswith(".")
                assert partition.source_name and partition.destination_name

    @pytest.mark.parametrize("interval", [2.0, 10.0, 20.0])
    def test_sampling_rates_always_summarize(self, scenario, base_trip, interval):
        from repro.trajectory import downsample_by_time

        variant = downsample_by_time(base_trip.raw, interval)
        summary = scenario.stmaker.summarize(variant, k=2)
        assert _valid_summary(summary)


def _line_points(n: int, dt: float = 1.0) -> list[TrajectoryPoint]:
    """A straight northbound track, ~11 m (≈40 km/h) between samples."""
    return [
        TrajectoryPoint(GeoPoint(39.9 + i * 1e-4, 116.4), i * dt) for i in range(n)
    ]


class TestSanitizer:
    def test_clean_input_is_returned_untouched(self):
        raw = RawTrajectory(_line_points(10), "clean")
        cleaned, report = sanitize_trajectory(raw)
        assert cleaned is raw
        assert report.clean and report.kept == 10 and report.dropped_total == 0

    def test_teleport_spike_clipped(self):
        pts = _line_points(20)
        pts[10] = TrajectoryPoint(GeoPoint(39.95, 116.4), pts[10].t)  # ~5 km jump
        raw = RawTrajectory(pts, "spike")
        cleaned, report = sanitize_trajectory(raw)
        assert report.dropped_teleports == 1
        assert report.kept == 19
        from repro.geo import haversine_m

        config = SanitizerConfig()
        for a, b in zip(cleaned.points, cleaned.points[1:]):
            speed_kmh = haversine_m(a.point, b.point) / (b.t - a.t) * 3.6
            assert speed_kmh <= config.max_speed_kmh

    def test_genuine_relocation_survives_clipping(self):
        # A dead zone: the track jumps far away and STAYS there.  Only the
        # first few samples after the gap may be treated as glitches.
        pts = _line_points(10)
        far = [
            TrajectoryPoint(GeoPoint(39.95 + i * 1e-4, 116.4), 10.0 + i)
            for i in range(10)
        ]
        _, report = sanitize_points(pts + far)
        assert report.kept >= 15  # the relocated tail was accepted

    def test_duplicate_timestamps_deduplicated(self):
        pts = []
        for p in _line_points(8):
            pts.append(p)
            pts.append(TrajectoryPoint(p.point, p.t))
        cleaned, report = sanitize_trajectory(RawTrajectory(pts, "dupes"))
        assert report.dropped_duplicates == 8
        assert len(cleaned.points) == 8

    def test_unsorted_timestamps_resorted(self):
        pts = _line_points(10)
        shuffled = [pts[i] for i in (0, 2, 1, 3, 5, 4, 6, 7, 9, 8)]
        kept, report = sanitize_points(shuffled)
        assert report.reordered > 0
        assert [p.t for p in kept] == sorted(p.t for p in kept)
        assert len(kept) == 10

    def test_bad_records_dropped(self):
        records = [
            (39.9, 116.4, 0.0),
            (math.nan, 116.4, 1.0),          # NaN latitude
            (39.9, math.inf, 2.0),           # inf longitude
            (39.9, 116.4, math.nan),         # NaN timestamp
            (91.0, 116.4, 4.0),              # latitude out of range
            (39.9, 181.0, 5.0),              # longitude out of range
            ("not-a-number", 116.4, 6.0),    # non-numeric field
            (39.9001, 116.4, 7.0),
        ]
        points, report = sanitize_records(records)
        assert len(points) == 2
        assert report.dropped_nonfinite == 4
        assert report.dropped_out_of_range == 2

    def test_empty_after_clean_raises_typed_error(self):
        from repro.exceptions import TrajectoryError

        point = GeoPoint(39.9, 116.4)
        pts = [TrajectoryPoint(point, 5.0)] * 3  # all duplicates of one sample
        with pytest.raises(TrajectoryError, match="empty after"):
            sanitize_trajectory(RawTrajectory(pts, "degenerate"))


@pytest.fixture()
def registry():
    """A fresh metrics registry per test (always disabled afterwards)."""
    reg = obs.enable_metrics(obs.MetricsRegistry())
    yield reg
    obs.disable_metrics()


def _counter_value(registry, name) -> float:
    metric = registry.get(name)
    return metric.value if metric is not None else 0.0


class TestChaos:
    """Fault injection proves every fallback path actually fires."""

    @pytest.mark.parametrize("stage", STAGES)
    def test_fault_in_any_stage_still_summarizes(
        self, scenario, base_trip, registry, stage
    ):
        injector = FaultInjector.raising(stage)
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        assert injector.fired(stage) == 1
        assert summary.text and summary.text.endswith(".")
        assert summary.degradation.degraded
        assert stage in summary.degradation.stages()
        event = summary.degradation.for_stage(stage)[0]
        assert "InjectedFault" in event.reason
        assert _counter_value(registry, f"resilience.fallback.{stage}") >= 1
        assert _counter_value(registry, "resilience.degraded_summaries") == 1

    def test_with_config_siblings_share_the_installed_injector(
        self, scenario, base_trip
    ):
        """Chaos armed on a model survives a config sweep.

        ``with_config`` siblings share the injector object (like every
        other piece of non-config state), so fire counts accumulate
        globally across siblings and uninstalling on the original
        disarms nothing retroactively on copies made while armed.
        """
        stmaker = scenario.stmaker
        injector = FaultInjector.raising("partition", times=None)
        with injector.installed(stmaker):
            sibling = stmaker.with_config(stmaker.config)
            assert sibling.fault_injector is injector
            summary = sibling.summarize(base_trip.raw, k=2)
            assert "partition" in summary.degradation.stages()
            assert injector.fired("partition") >= 1
        # After uninstall the original is clean again; siblings made
        # inside the armed window keep their reference (shared state,
        # not a lifecycle).
        assert stmaker.fault_injector is None
        assert stmaker.with_config(stmaker.config).fault_injector is None
        assert injector.specs[0].stage == "partition"
        assert injector.seed == 0

    def test_faults_in_all_stages_at_once(self, scenario, base_trip, registry):
        injector = FaultInjector([FaultSpec(stage=s) for s in STAGES])
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=3)
        assert summary.text and summary.text.endswith(".")
        assert set(STAGES) <= set(summary.degradation.stages())

    def test_strict_mode_raises_instead_of_degrading(self, scenario, base_trip):
        injector = FaultInjector.raising("partition")
        with injector.installed(scenario.stmaker):
            with pytest.raises(InjectedFault):
                scenario.stmaker.summarize(base_trip.raw, k=2, strict=True)

    def test_calibration_fault_uses_geometric_anchors(
        self, scenario, base_trip, registry
    ):
        injector = FaultInjector.raising("calibrate")
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw)
        assert summary.degradation.for_stage("calibrate")[0].fallback == (
            "geometric_anchors"
        )
        assert _counter_value(registry, "resilience.geometric_calibrations") == 1
        assert summary.text.endswith(".")

    def test_extract_fault_yields_moving_only_summary(self, scenario, base_trip):
        from repro.features import FeatureKind

        injector = FaultInjector.raising("extract")
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        assert "extract" in summary.degradation.stages()
        for partition in summary.partitions:
            for assessment in partition.assessments:
                assert assessment.kind is FeatureKind.MOVING

    def test_partition_fault_collapses_to_single_partition(self, scenario, base_trip):
        injector = FaultInjector.raising("partition")
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=3)
        assert summary.partition_count == 1
        assert summary.degradation.for_stage("partition")[0].fallback == (
            "single_partition"
        )

    def test_realize_fault_emits_generic_sentence(self, scenario, base_trip):
        injector = FaultInjector([FaultSpec(stage="realize", times=None)])
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        assert summary.text.startswith("The car started from")
        assert summary.text.endswith(".")
        assert summary.degradation.for_stage("realize")

    def test_latency_injection_is_deterministic(self, scenario, base_trip):
        slept = []
        injector = FaultInjector(
            [FaultSpec(stage="partition", error=None, latency_s=0.01)],
            sleeper=slept.append,
        )
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        assert slept == [0.01]
        assert not summary.degradation.degraded  # latency alone degrades nothing


class TestBatch:
    def test_transient_fault_is_retried_to_success(self, scenario, base_trip, registry):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=2)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                [base_trip.raw], k=2,
                retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            )
        assert injector.fired("extract") == 2
        assert result.ok_count == 1 and not result.quarantined
        assert not result.summaries[0].degradation.degraded
        assert _counter_value(registry, "resilience.batch.retries") == 2

    def test_transient_fault_exhausts_retries_into_quarantine(
        self, scenario, base_trip
    ):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=None)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                [base_trip.raw], retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
            )
        assert result.ok_count == 0
        entry = result.quarantined[0]
        assert entry.error_type == "TransientError"
        assert entry.attempts == 2  # the first try + one retry

    def test_transient_error_propagates_from_single_summarize(
        self, scenario, base_trip
    ):
        injector = FaultInjector(
            [FaultSpec(stage="partition", error=TransientError)]
        )
        with injector.installed(scenario.stmaker):
            with pytest.raises(TransientError):
                scenario.stmaker.summarize(base_trip.raw)

    def test_corrupt_items_are_quarantined_not_raised(
        self, scenario, base_trip, registry
    ):
        projector = scenario.network.projector
        off_map = RawTrajectory(
            [
                TrajectoryPoint(projector.to_point(90_000.0 + i * 50.0, 90_000.0), i * 5.0)
                for i in range(20)
            ],
            "offmap",
        )
        batch = [base_trip.raw, off_map, base_trip.raw]
        result = scenario.stmaker.summarize_many(batch, k=2)
        assert result.ok_count == 2
        assert result.quarantined_count == 1
        assert result.quarantined[0].index == 1
        assert result.quarantined[0].trajectory_id == "offmap"
        assert _counter_value(registry, "resilience.batch.quarantined") == 1

    def test_strict_batch_raises_on_first_error(self, scenario, base_trip):
        projector = scenario.network.projector
        off_map = RawTrajectory(
            [
                TrajectoryPoint(projector.to_point(90_000.0, 90_000.0 + i * 50.0), i * 5.0)
                for i in range(20)
            ],
            "offmap",
        )
        with pytest.raises(ReproError):
            scenario.stmaker.summarize_many([off_map, base_trip.raw], strict=True)

    def test_deadline_quarantines_unstarted_items(self, scenario, base_trip):
        result = scenario.stmaker.summarize_many(
            [base_trip.raw, base_trip.raw], deadline_s=0.0
        )
        assert result.ok_count == 0
        assert result.quarantined_count == 2
        assert all(e.error_type == "DeadlineExceeded" for e in result.quarantined)
        assert all(e.attempts == 0 for e in result.quarantined)

    def test_batch_sanitizes_by_default(self, scenario, base_trip):
        pts = list(base_trip.raw.points)
        mid = len(pts) // 2
        projector = scenario.network.projector
        x, y = projector.to_xy(pts[mid].point)
        pts[mid] = TrajectoryPoint(projector.to_point(x + 30_000.0, y), pts[mid].t)
        result = scenario.stmaker.summarize_many([RawTrajectory(pts, "glitch")], k=2)
        assert result.ok_count == 1
        assert result.sanitization[0] is not None
        assert result.sanitization[0].dropped_teleports >= 1
