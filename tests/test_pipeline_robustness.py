"""Failure-injection and fuzz tests for the end-to-end pipeline.

Real GPS corpora contain duplicate timestamps, dead zones, teleport
glitches, and absurd sampling rates; the pipeline must either produce a
valid summary or raise the library's typed exceptions — never crash with
an arbitrary error or emit malformed text.
"""

import numpy as np
import pytest

from repro.exceptions import CalibrationError, ReproError
from repro.trajectory import RawTrajectory, TrajectoryPoint


def _valid_summary(summary) -> bool:
    return (
        bool(summary.text)
        and summary.text.endswith(".")
        and summary.partition_count >= 1
        and summary.text.startswith("The car started from")
    )


@pytest.fixture(scope="module")
def base_trip(scenario):
    rng = np.random.default_rng(303)
    return scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]


class TestCorruptedInput:
    def test_duplicate_timestamps(self, scenario, base_trip):
        points = []
        for p in base_trip.raw:
            points.append(p)
            points.append(TrajectoryPoint(p.point, p.t))  # exact duplicate
        trip = RawTrajectory(points, "dupes")
        summary = scenario.stmaker.summarize(trip, k=2)
        assert _valid_summary(summary)

    def test_gps_dead_zone(self, scenario, base_trip):
        # Remove the middle third of the samples (tunnel / urban canyon).
        pts = list(base_trip.raw.points)
        n = len(pts)
        trip = RawTrajectory(pts[: n // 3] + pts[2 * n // 3 :], "deadzone")
        summary = scenario.stmaker.summarize(trip, k=2)
        assert _valid_summary(summary)

    def test_teleport_glitch(self, scenario, base_trip):
        # One sample jumps 3 km off-route and returns (multipath glitch).
        pts = list(base_trip.raw.points)
        mid = len(pts) // 2
        projector = scenario.network.projector
        x, y = projector.to_xy(pts[mid].point)
        pts[mid] = TrajectoryPoint(projector.to_point(x + 3000.0, y), pts[mid].t)
        summary = scenario.stmaker.summarize(RawTrajectory(pts, "glitch"), k=2)
        assert _valid_summary(summary)

    def test_heavy_noise(self, scenario, base_trip):
        rng = np.random.default_rng(1)
        projector = scenario.network.projector
        pts = []
        for p in base_trip.raw:
            x, y = projector.to_xy(p.point)
            pts.append(
                TrajectoryPoint(
                    projector.to_point(
                        x + float(rng.normal(0, 25)), y + float(rng.normal(0, 25))
                    ),
                    p.t,
                )
            )
        summary = scenario.stmaker.summarize(RawTrajectory(pts, "noisy"), k=2)
        assert _valid_summary(summary)

    def test_two_point_trajectory(self, scenario, base_trip):
        trip = RawTrajectory(
            [base_trip.raw[0], base_trip.raw[-1]], "twopoint"
        )
        try:
            summary = scenario.stmaker.summarize(trip)
            assert _valid_summary(summary)
        except CalibrationError:
            pass  # a typed failure is acceptable for degenerate input

    def test_off_map_trajectory_raises_typed_error(self, scenario):
        projector = scenario.network.projector
        pts = [
            TrajectoryPoint(projector.to_point(90_000.0 + i * 50.0, 90_000.0), i * 5.0)
            for i in range(20)
        ]
        with pytest.raises(ReproError):
            scenario.stmaker.summarize(RawTrajectory(pts, "offmap"))


class TestFuzz:
    @pytest.mark.parametrize("seed", [11, 22, 33, 44, 55, 66])
    def test_random_trips_always_summarize(self, scenario, seed):
        rng = np.random.default_rng(seed)
        hour = float(rng.uniform(0, 24))
        trip = scenario.simulate_trips(1, depart_time=hour * 3600.0, rng=rng)[0]
        for k in (None, 1, 3):
            summary = scenario.stmaker.summarize(trip.raw, k=k)
            assert _valid_summary(summary)
            # Every sentence is well-formed.
            for partition in summary.partitions:
                assert partition.sentence.rstrip().endswith(".")
                assert partition.source_name and partition.destination_name

    @pytest.mark.parametrize("interval", [2.0, 10.0, 20.0])
    def test_sampling_rates_always_summarize(self, scenario, base_trip, interval):
        from repro.trajectory import downsample_by_time

        variant = downsample_by_time(base_trip.raw, interval)
        summary = scenario.stmaker.summarize(variant, k=2)
        assert _valid_summary(summary)
