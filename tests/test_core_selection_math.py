"""Tests for the irregular-rate measures (Sec. V-A / V-B) in isolation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    moving_irregular_rate,
    routing_feature_distance,
    routing_irregular_rate,
)
from repro.exceptions import FeatureError
from repro.features import FeatureDtype

values = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=0, max_size=8
)
categories = st.lists(st.sampled_from([1.0, 2.0, 3.0, 7.0]), min_size=0, max_size=8)


class TestRoutingDistance:
    def test_empty_sequences(self):
        assert routing_feature_distance([], [], FeatureDtype.NUMERIC) == 0.0
        assert routing_feature_distance([1.0], [], FeatureDtype.NUMERIC) == 1.0
        assert routing_feature_distance([], [1.0, 2.0], FeatureDtype.NUMERIC) == 2.0

    def test_identical_sequences_zero(self):
        seq = [1.0, 2.0, 3.0]
        assert routing_feature_distance(seq, seq, FeatureDtype.NUMERIC) == 0.0
        assert routing_feature_distance(seq, seq, FeatureDtype.CATEGORICAL) == 0.0

    def test_categorical_substitution_costs_one(self):
        assert routing_feature_distance([1.0], [2.0], FeatureDtype.CATEGORICAL) == 1.0

    def test_numeric_substitution_costs_difference(self):
        assert routing_feature_distance([0.3], [0.5], FeatureDtype.NUMERIC) == pytest.approx(0.2)

    def test_length_mismatch_pays_indel(self):
        d = routing_feature_distance([1.0, 1.0, 1.0], [1.0], FeatureDtype.CATEGORICAL)
        assert d == 2.0

    def test_classic_edit_distance_reduction(self):
        # With categorical costs this is plain Levenshtein.
        a = [1.0, 2.0, 3.0]  # "abc"
        b = [2.0, 3.0, 4.0]  # "bcd"
        assert routing_feature_distance(a, b, FeatureDtype.CATEGORICAL) == 2.0

    @given(categories, categories)
    def test_symmetry_and_bounds(self, a, b):
        d = routing_feature_distance(a, b, FeatureDtype.CATEGORICAL)
        assert d == routing_feature_distance(b, a, FeatureDtype.CATEGORICAL)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(categories, categories, categories)
    def test_triangle_inequality(self, a, b, c):
        dab = routing_feature_distance(a, b, FeatureDtype.CATEGORICAL)
        dbc = routing_feature_distance(b, c, FeatureDtype.CATEGORICAL)
        dac = routing_feature_distance(a, c, FeatureDtype.CATEGORICAL)
        assert dac <= dab + dbc + 1e-9


class TestRoutingIrregularRate:
    def test_identical_routes_zero(self):
        rate = routing_irregular_rate(
            [1.0, 1.0], [1.0, 1.0], FeatureDtype.CATEGORICAL, weight=1.0
        )
        assert rate == 0.0

    def test_completely_different_categorical_is_one(self):
        rate = routing_irregular_rate(
            [1.0, 1.0], [2.0, 2.0], FeatureDtype.CATEGORICAL, weight=1.0
        )
        assert rate == 1.0

    def test_weight_scales_rate(self):
        base = routing_irregular_rate([1.0], [2.0], FeatureDtype.CATEGORICAL, 1.0)
        double = routing_irregular_rate([1.0], [2.0], FeatureDtype.CATEGORICAL, 2.0)
        assert double == pytest.approx(2 * base)

    def test_numeric_normalization_is_per_sequence(self):
        # Same shape at different scales: normalized sequences coincide.
        rate = routing_irregular_rate(
            [10.0, 20.0], [1.0, 2.0], FeatureDtype.NUMERIC, weight=1.0
        )
        assert rate == pytest.approx(0.0, abs=1e-12)

    def test_empty_both_zero(self):
        assert routing_irregular_rate([], [], FeatureDtype.NUMERIC, 1.0) == 0.0

    @given(values, values)
    def test_categorical_rate_bounded_by_weight(self, a, b):
        rate = routing_irregular_rate(a, b, FeatureDtype.CATEGORICAL, weight=1.0)
        assert 0.0 <= rate <= 1.0


class TestMovingIrregularRate:
    def test_matching_behaviour_zero(self):
        assert moving_irregular_rate([5.0, 5.0], [5.0, 5.0], 1.0) == 0.0

    def test_mismatch_positive(self):
        rate = moving_irregular_rate([10.0], [20.0], 1.0)
        assert rate == pytest.approx(1.0)  # |10 - 20| / 10

    def test_zero_observed_is_never_irregular(self):
        # Absence of behaviour is not reported (see selection.py docstring):
        # with nothing observed, there is nothing to normalize against.
        assert moving_irregular_rate([0.0, 0.0], [1.0, 1.0], 1.0) == 0.0

    def test_all_zero_everywhere(self):
        assert moving_irregular_rate([0.0], [0.0], 1.0) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(FeatureError):
            moving_irregular_rate([1.0], [1.0, 2.0], 1.0)

    def test_weight_scales(self):
        assert moving_irregular_rate([1.0], [2.0], 3.0) == pytest.approx(
            3 * moving_irregular_rate([1.0], [2.0], 1.0)
        )

    def test_empty(self):
        assert moving_irregular_rate([], [], 1.0) == 0.0

    @given(values)
    def test_self_comparison_zero(self, seq):
        assert moving_irregular_rate(seq, list(seq), 1.0) == 0.0
