"""Tests for routing-feature aggregation and the feature registry/vectors."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features import (
    GRADE_OF_ROAD,
    SPEED,
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    FeatureRegistry,
    RoutingFeatureComputer,
    aggregate_edges,
    default_registry,
    normalize_matrix,
    normalize_sequence,
)
from repro.roadnet import RoadGrade, TrafficDirection
from repro.trajectory import TrajectoryPoint


class TestAggregateEdges:
    def test_empty_rejected(self):
        with pytest.raises(FeatureError):
            aggregate_edges([])

    def test_dominant_by_length(self, micro_network):
        row = micro_network.edge_between(0, 1)      # NATIONAL, 18 m
        lane = micro_network.edge_between(0, 3)     # FEEDER, 5 m
        agg = aggregate_edges([(row, 900.0), (lane, 100.0)])
        assert agg.grade is RoadGrade.NATIONAL
        assert agg.road_name == "Row 0 Avenue"
        assert agg.width_m == pytest.approx(0.9 * 18.0 + 0.1 * 5.0)

    def test_zero_weight_edge_harmless(self, micro_network):
        row = micro_network.edge_between(0, 1)
        lane = micro_network.edge_between(0, 3)
        agg = aggregate_edges([(lane, 0.0), (row, 500.0)])
        assert agg.grade is RoadGrade.NATIONAL

    def test_direction_dominance(self, micro_network):
        one_way = micro_network.edge_between(1, 4)
        two_way = micro_network.edge_between(0, 1)
        agg = aggregate_edges([(one_way, 800.0), (two_way, 100.0)])
        assert agg.direction is TrafficDirection.ONE_WAY


class TestRoutingFeatureComputer:
    def test_from_samples(self, micro_network, projector):
        computer = RoutingFeatureComputer(micro_network)
        pts = [
            TrajectoryPoint(projector.to_point(i * 100.0, 3.0), i * 10.0)
            for i in range(11)
        ]
        features = computer.from_samples(pts)
        assert features.grade is RoadGrade.NATIONAL
        assert features.road_name == "Row 0 Avenue"

    def test_from_samples_needs_two_points(self, micro_network, projector):
        computer = RoutingFeatureComputer(micro_network)
        with pytest.raises(FeatureError):
            computer.from_samples([TrajectoryPoint(projector.to_point(0, 0), 0.0)])

    def test_between_points(self, micro_network, projector):
        computer = RoutingFeatureComputer(micro_network)
        features = computer.between_points(
            projector.to_point(0.0, 0.0), projector.to_point(1000.0, 0.0)
        )
        assert features.grade is RoadGrade.NATIONAL

    def test_between_points_cached(self, micro_network, projector):
        computer = RoutingFeatureComputer(micro_network)
        a = projector.to_point(0.0, 0.0)
        b = projector.to_point(1000.0, 0.0)
        assert computer.between_points(a, b) is computer.between_points(a, b)

    def test_same_node_pair(self, micro_network, projector):
        computer = RoutingFeatureComputer(micro_network)
        a = projector.to_point(1.0, 1.0)
        b = projector.to_point(2.0, -1.0)
        features = computer.between_points(a, b)
        assert features.grade in (RoadGrade.NATIONAL, RoadGrade.FEEDER)


class TestRegistry:
    def test_default_registry_order(self):
        registry = default_registry()
        assert registry.keys()[:3] == ["grade_of_road", "road_width", "traffic_direction"]
        assert len(registry) == 6

    def test_speed_change_opt_in(self):
        assert len(default_registry(include_speed_change=True)) == 7

    def test_duplicate_key_rejected(self):
        registry = default_registry()
        with pytest.raises(FeatureError):
            registry.register(
                FeatureDefinition(SPEED, "X", FeatureKind.MOVING, FeatureDtype.NUMERIC)
            )

    def test_unknown_key_rejected(self):
        with pytest.raises(FeatureError):
            default_registry().get("nope")

    def test_kind_partition(self):
        registry = default_registry()
        assert registry.routing_keys() == [
            "grade_of_road", "road_width", "traffic_direction"
        ]
        assert registry.moving_keys() == ["speed", "stay_points", "u_turns"]

    def test_negative_weight_rejected(self):
        with pytest.raises(FeatureError):
            FeatureDefinition(
                "x", "X", FeatureKind.MOVING, FeatureDtype.NUMERIC, default_weight=-1.0
            )

    def test_contains(self):
        registry = default_registry()
        assert GRADE_OF_ROAD in registry
        assert "ghost" not in registry


class TestNormalization:
    def test_normalize_matrix_columns(self):
        m = np.array([[2.0, 10.0], [4.0, 0.0]])
        normalized = normalize_matrix(m)
        assert normalized[:, 0].tolist() == [0.5, 1.0]
        assert normalized[:, 1].tolist() == [1.0, 0.0]

    def test_zero_column_unchanged(self):
        m = np.array([[0.0], [0.0]])
        assert normalize_matrix(m).tolist() == [[0.0], [0.0]]

    def test_bad_shape_rejected(self):
        with pytest.raises(FeatureError):
            normalize_matrix(np.zeros(3))

    def test_normalize_sequence(self):
        assert normalize_sequence([2.0, 4.0]) == [0.5, 1.0]
        assert normalize_sequence([0.0, 0.0]) == [0.0, 0.0]
        assert normalize_sequence([]) == []
