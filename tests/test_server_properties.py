"""Property and stress tests for the request queue and hot caches.

These pin the front-end's *mechanical* contracts — the differential
suite pins its bytes:

* FIFO within a tenant; weighted round-robin across tenants; no
  starvation however lopsided the backlog.
* Bounded everything: queue ``put`` over capacity is a typed
  :class:`OverloadError`; the LRU never exceeds its capacity and counts
  its evictions.
* Deadlines expire as typed ``DeadlineExceeded`` quarantine entries — a
  shed, never a hang.
* Cache keys carry the artifact fingerprint; a model swap invalidates.
* ``hits + misses == lookups`` holds exactly under 8-thread concurrency.
* Lifecycle edges: submit before start / after stop, non-draining stop
  abandoning the backlog with typed errors, exactly-once settlement.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np
import pytest

from repro.exceptions import (
    ConfigError,
    OverloadError,
    ServerClosedError,
    TransientError,
)
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.server import (
    MISS,
    HotQueryCaches,
    LRUCache,
    RequestQueue,
    ServerConfig,
    SummarizationServer,
)

TIMEOUT_S = 120.0


@pytest.fixture(scope="module")
def corpus(scenario):
    rng = np.random.default_rng(99)
    trips = scenario.simulate_trips(3, depart_time=8.5 * 3600.0, rng=rng)
    return [trip.raw for trip in trips]


# -- queue ordering -----------------------------------------------------------


def test_fifo_within_tenant():
    queue: RequestQueue[int] = RequestQueue(capacity=16)
    for i in range(10):
        queue.put("a", i)
    taken = [queue.take(timeout=0.0) for _ in range(10)]
    assert taken == [("a", i) for i in range(10)]


def test_weighted_round_robin_interleave():
    """Weight 2 vs 1 drains as a, a, b, a, a, b, ... deterministically."""
    queue: RequestQueue[str] = RequestQueue(capacity=16, weights={"a": 2})
    for i in range(4):
        queue.put("a", f"a{i}")
    for i in range(2):
        queue.put("b", f"b{i}")
    order = [queue.take(timeout=0.0) for _ in range(6)]
    assert order == [
        ("a", "a0"), ("a", "a1"), ("b", "b0"),
        ("a", "a2"), ("a", "a3"), ("b", "b1"),
    ]


def test_no_starvation_under_lopsided_backlog():
    """A 40-deep heavy tenant cannot starve a 5-deep light one."""
    queue: RequestQueue[int] = RequestQueue(capacity=64)
    for i in range(40):
        queue.put("heavy", i)
    for i in range(5):
        queue.put("light", i)
    positions = {
        (tenant, entry): pos
        for pos in range(45)
        for tenant, entry in [queue.take(timeout=0.0)]
    }
    light_last = max(
        pos for (tenant, _), pos in positions.items() if tenant == "light"
    )
    # Equal weights alternate the lanes: every light request is served
    # within the first 2 * 5 takes, not after the 40-deep backlog.
    assert light_last < 10


def test_rotation_skips_emptied_lanes():
    queue: RequestQueue[int] = RequestQueue(capacity=16, weights={"a": 3})
    queue.put("a", 0)
    queue.put("b", 1)
    assert queue.take(timeout=0.0) == ("a", 0)
    assert queue.take(timeout=0.0) == ("b", 1)
    queue.put("b", 2)  # "a" is empty; WRR must not spin on its turn
    assert queue.take(timeout=0.0) == ("b", 2)
    assert queue.take(timeout=0.0) is None


def test_drained_tenant_lanes_are_dropped():
    """Idle tenants cost nothing: a drained lane leaves the queue entirely."""
    queue: RequestQueue[int] = RequestQueue(capacity=32)
    for t in range(12):
        queue.put(f"tenant-{t}", t)
    for _ in range(12):
        assert queue.take(timeout=0.0) is not None
    assert queue.depths() == {}
    # A returning tenant simply re-registers — FIFO + WRR still hold.
    queue.put("tenant-3", 99)
    assert queue.depths() == {"tenant-3": 1}
    assert queue.take(timeout=0.0) == ("tenant-3", 99)
    assert queue.depths() == {}


def test_queue_overflow_is_typed():
    queue: RequestQueue[int] = RequestQueue(capacity=2)
    queue.put("a", 0)
    queue.put("b", 1)
    with pytest.raises(OverloadError, match="request queue is full"):
        queue.put("a", 2)


def test_queue_close_semantics():
    queue: RequestQueue[int] = RequestQueue(capacity=4)
    queue.put("a", 0)
    queue.put("a", 1)
    queue.close()
    with pytest.raises(ServerClosedError):
        queue.put("a", 2)
    # The backlog still drains...
    assert queue.take(timeout=0.0) == ("a", 0)
    assert queue.take(timeout=0.0) == ("a", 1)
    # ...and then take returns None immediately, even with no timeout.
    assert queue.take() is None


def test_queue_validation():
    with pytest.raises(ConfigError):
        RequestQueue(capacity=0)
    with pytest.raises(ConfigError):
        RequestQueue(capacity=4, weights={"a": 0})
    with pytest.raises(ConfigError):
        RequestQueue(capacity=4, default_weight=0)


def test_queue_concurrent_exactly_once():
    """4 producers × 50 entries, 3 consumers: nothing lost, nothing twice."""
    queue: RequestQueue[tuple[int, int]] = RequestQueue(capacity=200)
    taken: list[tuple[str, tuple[int, int]]] = []
    taken_lock = threading.Lock()

    def produce(p: int) -> None:
        for i in range(50):
            queue.put(f"tenant-{p}", (p, i))

    def consume() -> None:
        while True:
            got = queue.take(timeout=1.0)
            if got is None:
                if queue.closed:
                    return
                continue
            with taken_lock:
                taken.append(got)

    consumers = [threading.Thread(target=consume) for _ in range(3)]
    for thread in consumers:
        thread.start()
    producers = [
        threading.Thread(target=produce, args=(p,)) for p in range(4)
    ]
    for thread in producers:
        thread.start()
    for thread in producers:
        thread.join()
    while queue.size:
        threading.Event().wait(0.01)
    queue.close()
    for thread in consumers:
        thread.join()

    assert len(taken) == 200
    assert len(set(taken)) == 200  # no duplicates
    for p in range(4):  # FIFO survived the concurrency, per tenant
        lane = [entry for tenant, entry in taken if tenant == f"tenant-{p}"]
        assert sorted(lane) == [(p, i) for i in range(50)]


# -- LRU cache ----------------------------------------------------------------


def test_lru_bounded_and_counts_evictions():
    cache = LRUCache("test", capacity=4)
    for i in range(10):
        cache.put(i, i * 10)
    assert len(cache) == 4
    stats = cache.stats()
    assert stats["evictions"] == 6
    assert all(i in cache for i in range(6, 10))
    assert all(i not in cache for i in range(6))


def test_lru_get_refreshes_recency():
    cache = LRUCache("test", capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": now "b" is the LRU tail
    cache.put("c", 3)
    assert "a" in cache and "c" in cache and "b" not in cache


def test_lru_caches_none_values():
    """A cached ``None`` is a hit, not a recomputation trigger."""
    cache = LRUCache("test", capacity=4)
    assert cache.get("unseen-hop") is MISS
    cache.put("unseen-hop", None)
    assert cache.get("unseen-hop") is None
    assert cache.stats()["hits"] == 1


def test_lru_capacity_validation():
    with pytest.raises(ConfigError):
        LRUCache("test", capacity=0)


def test_lru_accounting_exact_under_concurrency():
    """hits + misses == lookups, size <= capacity — 8 threads hammering."""
    cache = LRUCache("test", capacity=32)
    per_thread = 500

    def hammer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        for _ in range(per_thread):
            key = int(rng.integers(0, 64))
            if cache.get(key) is MISS:
                cache.put(key, key)

    threads = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == cache.lookups == 8 * per_thread
    assert len(cache) <= 32
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_hot_caches_invalidate_on_fingerprint_change():
    caches = HotQueryCaches("fp-a", route_capacity=8, anchor_capacity=8)
    caches.routes.put(("fp-a", 1, 2), ["hop"])
    caches.anchors.put(("fp-a", 1, 2, "speed"), 13.5)

    assert caches.invalidate("fp-a") is False  # same model: keep warm
    assert len(caches.routes) == 1

    assert caches.invalidate("fp-b") is True
    assert caches.fingerprint == "fp-b"
    assert len(caches.routes) == 0 and len(caches.anchors) == 0
    assert caches.invalidations == 1
    assert caches.stats()["fingerprint"] == "fp-b"


def test_cached_view_fingerprint_matches_artifact(scenario, tmp_path):
    """The cache fingerprint is the artifact fingerprint — same bytes."""
    from repro.artifact import artifact_info, save_artifact
    from repro.server import model_fingerprint

    path = tmp_path / "fp-check.stm"
    save_artifact(scenario.stmaker, path)
    assert model_fingerprint(scenario.stmaker) == artifact_info(path).fingerprint


def test_view_keys_pin_build_time_fingerprint():
    """A view racing a model swap cannot poison the new model's cache.

    The fingerprint in a cache key is captured when the view is built,
    not read at lookup time: a request in flight across
    ``invalidate(new_fp)`` computes from the OLD model, so its writes
    must land under the old (already cleared) fingerprint — never under
    the new one, where later requests would mistake them for new-model
    values.
    """
    from repro.server.cache import _CachingFeatureMap

    class _StubMap:
        def regular_value(self, src: int, dst: int, key: str) -> float:
            return 42.0

    caches = HotQueryCaches("fp-old", route_capacity=8, anchor_capacity=8)
    view_map = _CachingFeatureMap(_StubMap(), caches, caches.fingerprint)
    # The swap happens while this view's request is still in flight.
    assert caches.invalidate("fp-new") is True
    assert view_map.regular_value(1, 2, "speed") == 42.0
    assert ("fp-old", 1, 2, "speed") in caches.anchors  # straggler, dead key
    assert ("fp-new", 1, 2, "speed") not in caches.anchors  # never poisoned


# -- server lifecycle and deadlines -------------------------------------------


def test_submit_before_start_and_after_stop_raise(scenario, corpus):
    server = SummarizationServer(scenario.stmaker, ServerConfig())
    with pytest.raises(ServerClosedError, match="not running"):
        server.submit(corpus)
    server.start()
    server.stop()
    with pytest.raises(ServerClosedError, match="not running"):
        server.submit(corpus)
    # The queue is closed for good: restarting would yield a server that
    # claims to run but can never serve — refuse it loudly instead.
    with pytest.raises(ServerClosedError, match="cannot be restarted"):
        server.start()
    assert server.running is False


def test_stop_clears_ops_readiness(scenario):
    """/readyz must stop answering 200 once the front-end is gone."""
    from repro import obs

    ops = obs.start_ops_server(port=0)
    try:
        with SummarizationServer(scenario.stmaker, ServerConfig()):
            assert ops.is_ready() is True
        assert ops.is_ready() is False
    finally:
        obs.stop_ops_server()


def test_negative_deadline_rejected_without_leaking_admission(scenario, corpus):
    """A bad per-request deadline fails fast and releases no-op cleanly:
    the admission ticket must not be consumed (it was never taken)."""
    config = ServerConfig(max_queued_items=len(corpus))
    with SummarizationServer(scenario.stmaker, config) as server:
        for _ in range(3):  # a leak would exhaust the budget by round 2
            with pytest.raises(ConfigError, match="deadline budget"):
                server.submit(corpus, deadline_s=-1.0)
        assert server.admission.queued_items == 0
        # The full item budget is still there: a valid submit sails through.
        handle = server.submit(corpus)
        assert handle.result(timeout=TIMEOUT_S).ok_count == len(corpus)


def test_expired_deadline_is_typed_shed_not_hang(scenario, corpus):
    """deadline_s=0 resolves promptly with DeadlineExceeded quarantines."""
    with SummarizationServer(scenario.stmaker, ServerConfig()) as server:
        handle = server.submit(corpus, deadline_s=0.0)
        result = handle.result(timeout=TIMEOUT_S)
    assert result.ok_count == 0
    assert result.quarantined_count == len(corpus)
    for entry in result.quarantined:
        assert entry.error_type == "DeadlineExceeded"
        assert entry.attempts == 0


def test_tenant_deadline_defaults_apply(scenario, corpus):
    config = ServerConfig(tenant_deadline_s={"impatient": 0.0})
    with SummarizationServer(scenario.stmaker, config) as server:
        strict_handle = server.submit(corpus, tenant="impatient")
        lax_handle = server.submit(corpus, tenant="patient")
        strict_result = strict_handle.result(timeout=TIMEOUT_S)
        lax_result = lax_handle.result(timeout=TIMEOUT_S)
    assert all(
        e.error_type == "DeadlineExceeded" for e in strict_result.quarantined
    )
    assert strict_result.ok_count == 0
    assert lax_result.ok_count == len(corpus)


@contextmanager
def _blocked_consumer(scenario, corpus, config):
    """A running server whose single consumer is parked inside a request.

    A fault injector turns every attempt into a TransientError and the
    retry sleeper blocks on an Event, so the consumer sits in the first
    request until the test releases it — making "requests stuck behind
    the head of the queue" deterministic.  Yields
    ``(server, blocker_handle, release_event)``.
    """
    entered = threading.Event()
    release = threading.Event()

    def blocking_sleeper(delay: float) -> None:
        entered.set()
        release.wait(timeout=TIMEOUT_S)

    retry = RetryPolicy(max_retries=1, backoff_base_s=0.05)
    injector = FaultInjector(
        [FaultSpec(stage="extract", error=TransientError, times=None)]
    )
    server = SummarizationServer(scenario.stmaker, config)
    with injector.installed(scenario.stmaker):
        server.start()
        blocker = server.submit(
            corpus[:1], retry=retry, sleeper=blocking_sleeper
        )
        assert entered.wait(timeout=TIMEOUT_S)
        try:
            yield server, blocker, release
        finally:
            release.set()
            if server.running:
                server.stop()


def test_queue_full_submit_sheds_typed(scenario, corpus):
    config = ServerConfig(consumers=1, max_queue_requests=1)
    with _blocked_consumer(scenario, corpus, config) as (
        server, blocker, release,
    ):
        queued = server.submit(corpus[:1])  # fills the 1-deep queue
        with pytest.raises(OverloadError, match="request queue is full"):
            server.submit(corpus[:1])
        assert server.stats()["shed"] == 1
        release.set()
        server.stop()
    # Both surviving requests settled (as quarantined results — the
    # injector stayed armed — but settled exactly once, never hung).
    assert blocker.result(timeout=TIMEOUT_S) is not None
    assert queued.result(timeout=TIMEOUT_S) is not None


def test_stop_without_drain_fails_backlog_typed(scenario, corpus):
    config = ServerConfig(consumers=1, max_queue_requests=8)
    with _blocked_consumer(scenario, corpus, config) as (
        server, blocker, release,
    ):
        abandoned = [server.submit(corpus[:1]) for _ in range(3)]
        release.set()
        server.stop(drain=False)
        for handle in abandoned:
            with pytest.raises(ServerClosedError, match="server stopped"):
                handle.result(timeout=TIMEOUT_S)
        # The in-flight request still settled normally — exactly once.
        assert blocker.result(timeout=TIMEOUT_S) is not None
        stats = server.stats()
        assert stats["submitted"] == 4
        assert stats["served"] + stats["failed"] == 4
        assert server.admission.queued_items == 0  # every ticket released


def test_admission_rejects_over_budget_typed(scenario, corpus):
    config = ServerConfig(max_queued_items=2)
    with SummarizationServer(scenario.stmaker, config) as server:
        with pytest.raises(OverloadError):
            server.submit(corpus)  # 3 items > 2-item budget
        assert server.stats()["shed"] == 1
    # A priority at/above the bypass floor must still get through.
    config = ServerConfig(max_queued_items=2, bypass_priority=5)
    with SummarizationServer(scenario.stmaker, config) as server:
        handle = server.submit(corpus, priority=5)
        assert handle.result(timeout=TIMEOUT_S).ok_count == len(corpus)


def test_status_section_shape(scenario, corpus):
    from repro import obs

    with SummarizationServer(scenario.stmaker, ServerConfig()) as server:
        assert "server" in obs.status_sections()
        server.submit(corpus).result(timeout=TIMEOUT_S)
        section = server.status_section()
        assert section["running"] is True
        assert section["queue"]["capacity"] == 64
        assert section["requests"]["served"] == 1
        assert section["caches"]["fingerprint"] == server.caches.fingerprint
    assert "server" not in obs.status_sections()


def test_ops_status_reports_server_block(scenario, corpus):
    """The ops /status page carries the server section end to end."""
    import json
    from urllib.request import urlopen

    from repro import obs

    obs.enable_metrics()
    server = obs.start_ops_server(port=0)
    try:
        with SummarizationServer(scenario.stmaker, ServerConfig()) as front:
            front.submit(corpus).result(timeout=TIMEOUT_S)
            payload = json.loads(
                urlopen(f"{server.url}/status", timeout=10.0).read()
            )
        assert payload["server"]["requests"]["served"] == 1
        assert payload["server"]["queue"]["depth"] == 0
    finally:
        obs.stop_ops_server()


def test_status_section_registry_guards():
    from repro import obs

    with pytest.raises(ValueError, match="reserved"):
        obs.register_status_section("ops", dict)
    obs.register_status_section("broken", lambda: 1 / 0)
    server = obs.start_ops_server(port=0)
    try:
        payload = server.status()
        assert payload["broken"] == {"error": "ZeroDivisionError: division by zero"}
    finally:
        obs.stop_ops_server()
        obs.unregister_status_section("broken")
    assert "broken" not in obs.status_sections()


def test_server_config_validation():
    with pytest.raises(ConfigError):
        ServerConfig(executor="fiber")
    with pytest.raises(ConfigError):
        ServerConfig(consumers=0)
    with pytest.raises(ConfigError):
        ServerConfig(max_queue_requests=0)
    with pytest.raises(ConfigError):
        ServerConfig(shed="explode")
    with pytest.raises(ConfigError):
        ServerConfig(tenant_weights={"a": 0})
    with pytest.raises(ConfigError):
        ServerConfig(default_deadline_s=-1.0)
    with pytest.raises(ConfigError):
        ServerConfig(tenant_deadline_s={"a": -1.0})
