"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro import obs
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_SPAN


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with observability disabled."""
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_tracing()
    obs.disable_metrics()


class TestSpanBasics:
    def test_disabled_returns_shared_noop(self):
        assert obs.span("anything", tag=1) is NULL_SPAN
        with obs.span("x") as sp:
            assert sp is NULL_SPAN
            sp.set_tag("k", "v")  # no-op, must not raise

    def test_enabled_records_span(self):
        collector = obs.enable_tracing()
        with obs.span("work", n=3) as sp:
            sp.set_tag("extra", "yes")
        [record] = collector.spans()
        assert record.name == "work"
        assert record.status == "ok"
        assert record.error is None
        assert record.duration_ms >= 0.0
        assert record.tags == {"n": 3, "extra": "yes"}
        assert record.parent_id is None
        assert record.depth == 0

    def test_nesting_parent_and_depth(self):
        collector = obs.enable_tracing()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
        by_name = {r.name: r for r in collector.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["middle"].depth == 1
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert by_name["inner"].depth == 2
        # children finish (and are recorded) before their parent
        names = [r.name for r in collector.spans()]
        assert names == ["inner", "middle", "outer"]

    def test_exception_marks_error_and_propagates(self):
        collector = obs.enable_tracing()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("fragile"):
                raise ValueError("boom")
        [record] = collector.spans()
        assert record.status == "error"
        assert "ValueError" in record.error and "boom" in record.error

    def test_exception_unwinds_stack(self):
        collector = obs.enable_tracing()
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError("x")
        # A later span must be a root again, not a child of the failed pair.
        with obs.span("after"):
            pass
        after = collector.by_name("after")[0]
        assert after.parent_id is None
        assert after.depth == 0

    def test_sibling_spans_share_parent(self):
        collector = obs.enable_tracing()
        with obs.span("parent"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        by_name = {r.name: r for r in collector.spans()}
        assert by_name["a"].parent_id == by_name["parent"].span_id
        assert by_name["b"].parent_id == by_name["parent"].span_id


class TestTimedSpan:
    def test_times_without_tracing(self):
        with obs.timed_span("untraced") as timer:
            pass
        assert timer.ms >= 0.0
        assert not obs.tracing_enabled()

    def test_times_and_traces_when_enabled(self):
        collector = obs.enable_tracing()
        with obs.timed_span("both", k=2) as timer:
            pass
        [record] = collector.spans()
        assert record.name == "both"
        assert record.tags == {"k": 2}
        # Timer and span measure the same block.
        assert abs(record.duration_ms - timer.ms) < 50.0

    def test_timer_survives_exception(self):
        with pytest.raises(KeyError):
            with obs.Timer() as timer:
                raise KeyError("k")
        assert timer.ms >= 0.0


class TestCollector:
    def test_json_roundtrip(self):
        collector = obs.enable_tracing()
        with obs.span("outer", label="x"):
            with obs.span("inner"):
                pass
        payload = json.loads(collector.to_json())
        assert payload["dropped"] == 0
        names = {s["name"] for s in payload["spans"]}
        assert names == {"outer", "inner"}

    def test_export_writes_file(self, tmp_path):
        collector = obs.enable_tracing()
        with obs.span("x"):
            pass
        path = tmp_path / "trace.json"
        collector.export(path)
        assert json.loads(path.read_text())["spans"][0]["name"] == "x"

    def test_max_spans_drops_and_counts(self):
        collector = obs.enable_tracing(max_spans=2)
        for _ in range(5):
            with obs.span("s"):
                pass
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_stage_totals_aggregates(self):
        collector = obs.enable_tracing()
        for _ in range(3):
            with obs.span("stage_a"):
                pass
        with obs.span("stage_b"):
            pass
        totals = {t.name: t for t in collector.stage_totals()}
        assert totals["stage_a"].count == 3
        assert totals["stage_b"].count == 1
        assert totals["stage_a"].mean_ms >= 0.0

    def test_thread_safety_of_collector_and_stacks(self):
        collector = obs.enable_tracing()
        n_threads, per_thread = 8, 50
        errors: list[Exception] = []

        def worker(tid: int) -> None:
            try:
                for i in range(per_thread):
                    with obs.span(f"t{tid}"):
                        with obs.span(f"t{tid}.child"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(collector) == n_threads * per_thread * 2
        # Span stacks are context-local: each child's parent is a span of
        # the same thread, never one from a sibling thread.
        records = {r.span_id: r for r in collector.spans()}
        for record in records.values():
            if record.parent_id is not None:
                parent = records[record.parent_id]
                assert record.name == parent.name + ".child"


class TestCounterGauge:
    def test_counter_increments(self):
        registry = obs.enable_metrics()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        assert registry.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        registry = obs.enable_metrics()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = obs.enable_metrics()
        g = registry.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_kind_conflict_raises(self):
        registry = obs.enable_metrics()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_counter_thread_safety(self):
        registry = obs.enable_metrics()
        counter = registry.counter("shared")
        n_threads, per_thread = 8, 2_000

        def worker() -> None:
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread


class TestHistogram:
    def test_bucket_edges_le_semantics(self):
        registry = obs.enable_metrics()
        h = registry.histogram("h", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 1.0001, 5.0, 9.99, 10.0, 10.01, 1e9):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts["1"] == 2      # 0.5 and the inclusive edge 1.0
        assert counts["5"] == 2      # 1.0001, 5.0
        assert counts["10"] == 2     # 9.99, 10.0
        assert counts["+inf"] == 2   # 10.01, 1e9
        assert h.count == 8

    def test_bucket_edges_exact(self):
        registry = obs.enable_metrics()
        h = registry.histogram("edges", buckets=(1.0, 5.0))
        h.observe(1.0)   # on the first edge -> bucket "1"
        h.observe(5.0)   # on the last finite edge -> bucket "5"
        h.observe(5.0000001)  # just past -> +inf bucket
        counts = h.bucket_counts()
        assert counts == {"1": 1, "5": 1, "+inf": 1}

    def test_summary_stats(self):
        registry = obs.enable_metrics()
        h = registry.histogram("s", buckets=(10.0,))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_unsorted_buckets_rejected(self):
        registry = obs.enable_metrics()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(5.0, 1.0))

    def test_infinite_bucket_appended(self):
        registry = obs.enable_metrics()
        h = registry.histogram("inf", buckets=(1.0,))
        h.observe(1e12)
        assert h.bucket_counts()["+inf"] == 1
        assert h.count == 1


class TestHistogramPercentiles:
    def test_empty_histogram_is_none(self):
        registry = obs.enable_metrics()
        h = registry.histogram("p", buckets=(1.0, 10.0))
        assert h.percentile(0.5) is None
        data = h.to_dict()
        assert data["p50"] is None and data["p95"] is None and data["p99"] is None

    def test_empty_histogram_is_none_at_the_bounds_too(self):
        registry = obs.enable_metrics()
        h = registry.histogram("pb", buckets=(1.0, 10.0))
        assert h.percentile(0.0) is None
        assert h.percentile(1.0) is None

    def test_invalid_q_raises_even_when_empty(self):
        registry = obs.enable_metrics()
        h = registry.histogram("pe", buckets=(1.0,))
        with pytest.raises(ValueError, match="quantile"):
            h.percentile(2.0)

    def test_single_observation_is_exact(self):
        registry = obs.enable_metrics()
        h = registry.histogram("one", buckets=(1.0, 10.0))
        h.observe(3.7)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(q) == 3.7

    def test_quantile_ordering_and_range(self):
        registry = obs.enable_metrics()
        h = registry.histogram("many", buckets=(1.0, 2.0, 5.0, 10.0, 50.0))
        values = [0.5, 1.5, 1.8, 3.0, 4.0, 6.0, 8.0, 9.5, 20.0, 45.0]
        for v in values:
            h.observe(v)
        p50, p95, p99 = h.percentile(0.5), h.percentile(0.95), h.percentile(0.99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # p50 of 10 values must land in the middle buckets, not the tails.
        assert 1.5 <= p50 <= 8.0

    def test_percentiles_clamped_to_observed_extremes(self):
        registry = obs.enable_metrics()
        h = registry.histogram("clamp", buckets=(100.0,))
        h.observe(2.0)
        h.observe(3.0)
        # Interpolation inside the huge (0, 100] bucket must not report
        # values outside what was actually observed.
        assert 2.0 <= h.percentile(0.5) <= 3.0
        assert h.percentile(1.0) == 3.0
        assert h.percentile(0.0) == 2.0

    def test_overflow_bucket_reports_max(self):
        registry = obs.enable_metrics()
        h = registry.histogram("ovf", buckets=(1.0,))
        for v in (0.5, 100.0, 200.0):
            h.observe(v)
        assert h.percentile(0.99) == 200.0

    def test_invalid_q_raises(self):
        registry = obs.enable_metrics()
        h = registry.histogram("bad", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(1.1)

    def test_to_dict_and_render_include_percentiles(self):
        registry = obs.enable_metrics()
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        data = h.to_dict()
        assert data["p50"] is not None
        assert data["p50"] <= data["p95"] <= data["p99"]
        rendered = registry.render_text()
        assert "p50=" in rendered and "p95=" in rendered and "p99=" in rendered


class TestRegistryLifecycle:
    def test_disabled_is_null_singleton(self):
        assert obs.metrics() is NULL_METRICS
        # All recording calls are silently absorbed.
        obs.metrics().counter("x").inc()
        obs.metrics().gauge("y").set(1)
        obs.metrics().histogram("z").observe(2)
        assert obs.metrics().snapshot() == {}
        assert not obs.metrics_enabled()

    def test_enable_disable_cycle(self):
        registry = obs.enable_metrics()
        assert obs.metrics_enabled()
        assert obs.metrics() is registry
        # Re-enabling without an explicit registry keeps the active one.
        assert obs.enable_metrics() is registry
        obs.disable_metrics()
        assert obs.metrics() is NULL_METRICS

    def test_snapshot_and_render(self):
        registry = obs.enable_metrics()
        registry.counter("a.calls").inc(3)
        registry.gauge("b.depth").set(2)
        registry.histogram("c.ms").observe(7.5)
        snap = registry.snapshot()
        assert snap["a.calls"] == {"type": "counter", "value": 3.0}
        assert snap["b.depth"]["type"] == "gauge"
        assert snap["c.ms"]["count"] == 1
        text = registry.render_text()
        assert "a.calls" in text and "histogram" in text
        # snapshot is JSON-serializable as-is
        json.dumps(snap)

    def test_export_writes_file(self, tmp_path):
        registry = obs.enable_metrics()
        registry.counter("k").inc()
        path = tmp_path / "metrics.json"
        registry.export(path)
        assert json.loads(path.read_text())["k"]["value"] == 1.0

    def test_reset_clears_series(self):
        registry = obs.enable_metrics()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestProfiling:
    def test_profiled_captures_report(self):
        with obs.profiled(limit=5) as report:
            sum(range(1000))
        assert "function calls" in report.text
        assert report.top_functions(3)

    def test_profiled_survives_exception(self):
        with pytest.raises(ValueError):
            with obs.profiled() as report:
                raise ValueError("x")
        assert report.text  # rendered despite the failure


class TestLogging:
    def test_verbosity_levels(self):
        assert obs.configure_logging(0).level == logging.WARNING
        assert obs.configure_logging(1).level == logging.INFO
        assert obs.configure_logging(2).level == logging.DEBUG

    def test_idempotent_single_handler(self):
        logger = obs.configure_logging(1)
        n = len(logger.handlers)
        obs.configure_logging(2)
        assert len(logger.handlers) == n
