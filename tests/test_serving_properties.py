"""Property-based tests for the serving shard planner and reassembly.

Hand-rolled generators (seeded ``random.Random``, no hypothesis
dependency) drive hundreds of randomized cases against the two invariants
the serving layer is built on:

* every plan produced by :func:`plan_shards` partitions ``range(n)`` —
  each index appears in exactly one shard, balanced sizes differ by at
  most one, and hashed assignment is stable across runs and key order;
* :func:`reassemble` is the permutation inverse of *any* completion
  order: shuffled outcomes rebuild exactly the input-ordered batch, and
  corrupted index bookkeeping (lost/duplicate/out-of-range) always raises
  :class:`~repro.exceptions.ServingError`.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigError, ServingError
from repro.resilience import ItemOutcome, QuarantineEntry
from repro.serving import SHARD_MODES, Shard, plan_shards, reassemble, stable_key_hash

N_CASES = 150


def random_cases(seed: int, n_cases: int = N_CASES):
    """Seeded stream of (rng, n, mode, sizing-kwargs, keys) planner cases."""
    rng = random.Random(seed)
    for _ in range(n_cases):
        n = rng.randint(0, 64)
        mode = rng.choice(SHARD_MODES)
        if rng.random() < 0.5:
            kwargs = {"num_shards": rng.randint(1, 12)}
        else:
            kwargs = {"shard_size": rng.randint(1, 12)}
        keys = [f"traj-{rng.randint(0, 20)}" for _ in range(n)]
        yield rng, n, mode, kwargs, keys


# -- plan_shards invariants ---------------------------------------------------


def test_every_index_appears_exactly_once():
    for _, n, mode, kwargs, keys in random_cases(seed=1):
        shards = plan_shards(n, mode=mode, keys=keys, **kwargs)
        covered = [i for shard in shards for i in shard.indices]
        assert sorted(covered) == list(range(n)), (n, mode, kwargs)


def test_no_empty_shards_and_ids_are_ordered():
    for _, n, mode, kwargs, keys in random_cases(seed=2):
        shards = plan_shards(n, mode=mode, keys=keys, **kwargs)
        assert all(len(shard) > 0 for shard in shards)
        assert [s.shard_id for s in shards] == sorted(s.shard_id for s in shards)
        for shard in shards:
            assert list(shard.indices) == sorted(shard.indices)


def test_balanced_sizes_within_one():
    for _, n, _, kwargs, _ in random_cases(seed=3):
        if n == 0:
            continue
        shards = plan_shards(n, mode="balanced", **kwargs)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1, (n, kwargs, sizes)
        # Contiguity: concatenating the shards yields 0..n-1 in order.
        flat = [i for s in shards for i in s.indices]
        assert flat == list(range(n))


def test_round_robin_sizes_within_one():
    for _, n, _, kwargs, _ in random_cases(seed=4):
        if n == 0:
            continue
        shards = plan_shards(n, mode="round_robin", **kwargs)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1, (n, kwargs, sizes)


def test_shard_size_bounds_every_shard():
    rng = random.Random(5)
    for _ in range(N_CASES):
        n = rng.randint(1, 64)
        shard_size = rng.randint(1, 12)
        for mode in ("balanced", "round_robin"):
            shards = plan_shards(n, mode=mode, shard_size=shard_size)
            assert all(len(s) <= shard_size for s in shards), (n, shard_size, mode)


def test_hashed_assignment_is_stable_and_key_order_independent():
    for rng, n, _, kwargs, keys in random_cases(seed=6):
        first = plan_shards(n, mode="hashed", keys=keys, **kwargs)
        second = plan_shards(n, mode="hashed", keys=list(keys), **kwargs)
        assert first == second
        # The same key always lands on the same shard id, regardless of
        # which other keys share the batch.
        by_key: dict[str, int] = {}
        for shard in first:
            for index in shard.indices:
                existing = by_key.setdefault(keys[index], shard.shard_id)
                assert existing == shard.shard_id


def test_stable_key_hash_is_deterministic_and_non_negative():
    rng = random.Random(7)
    for _ in range(N_CASES):
        key = f"id-{rng.randint(0, 10_000)}-{rng.random():.6f}"
        h = stable_key_hash(key)
        assert h >= 0
        assert h == stable_key_hash(key)
    # Pinned values: must never drift across processes, runs, or versions
    # (Python's seeded hash() would fail this exact test).
    assert stable_key_hash("traj-0") == stable_key_hash("traj-0")
    assert stable_key_hash("a") != stable_key_hash("b")


def test_planner_rejects_bad_configs():
    with pytest.raises(ConfigError):
        plan_shards(4, mode="zigzag", num_shards=2)
    with pytest.raises(ConfigError):
        plan_shards(4, mode="balanced")
    with pytest.raises(ConfigError):
        plan_shards(4, mode="balanced", num_shards=0)
    with pytest.raises(ConfigError):
        plan_shards(4, mode="balanced", shard_size=0)
    with pytest.raises(ConfigError):
        plan_shards(-1, mode="balanced", num_shards=2)
    with pytest.raises(ConfigError):
        plan_shards(4, mode="hashed", num_shards=2)  # keys missing
    with pytest.raises(ConfigError):
        plan_shards(4, mode="hashed", num_shards=2, keys=["a", "b"])


def test_empty_batch_yields_empty_plan():
    for mode in SHARD_MODES:
        assert plan_shards(0, mode=mode, num_shards=3, keys=[]) == []


def test_shard_is_sized_bookkeeping():
    shard = Shard(0, (3, 4, 5))
    assert len(shard) == 3


# -- reassemble: permutation inverse ------------------------------------------


def _outcome(index: int, ok: bool) -> ItemOutcome:
    """A minimal ItemOutcome; summaries are opaque to reassembly."""
    if ok:
        return ItemOutcome(
            index=index, summary=f"summary-{index}",  # type: ignore[arg-type]
            quarantine=None, sanitization=None,
        )
    return ItemOutcome(
        index=index,
        summary=None,
        quarantine=QuarantineEntry(
            index=index, trajectory_id=f"t-{index}",
            error_type="InjectedFault", error="boom", attempts=1,
        ),
        sanitization=None,
    )


def test_reassemble_inverts_any_completion_order():
    rng = random.Random(8)
    for _ in range(N_CASES):
        total = rng.randint(0, 48)
        ok_flags = [rng.random() < 0.7 for _ in range(total)]
        outcomes = [_outcome(i, ok) for i, ok in enumerate(ok_flags)]
        rng.shuffle(outcomes)  # arbitrary completion order

        result = reassemble(outcomes, total)
        assert [s for s in result.summaries] == [
            f"summary-{i}" for i, ok in enumerate(ok_flags) if ok
        ]
        assert [q.index for q in result.quarantined] == [
            i for i, ok in enumerate(ok_flags) if not ok
        ]
        assert result.ok_count + result.quarantined_count == total
        assert len(result.sanitization) == total


def test_reassemble_rejects_missing_index():
    rng = random.Random(9)
    for _ in range(40):
        total = rng.randint(2, 32)
        outcomes = [_outcome(i, True) for i in range(total)]
        del outcomes[rng.randrange(total)]
        with pytest.raises(ServingError, match="no outcome"):
            reassemble(outcomes, total)


def test_reassemble_rejects_duplicate_index():
    rng = random.Random(10)
    for _ in range(40):
        total = rng.randint(2, 32)
        outcomes = [_outcome(i, True) for i in range(total)]
        outcomes.append(_outcome(rng.randrange(total), False))
        rng.shuffle(outcomes)
        with pytest.raises(ServingError, match="duplicate"):
            reassemble(outcomes, total)


def test_reassemble_rejects_out_of_range_index():
    for bad in (-1, 5, 99):
        outcomes = [_outcome(i, True) for i in range(5)]
        outcomes[2] = _outcome(bad, True)
        with pytest.raises(ServingError, match="outside batch"):
            reassemble(outcomes, 5)


def test_item_outcome_requires_exactly_one_of_summary_or_quarantine():
    with pytest.raises(ValueError):
        ItemOutcome(index=0, summary=None, quarantine=None, sanitization=None)
    with pytest.raises(ValueError):
        ItemOutcome(
            index=0,
            summary="s",  # type: ignore[arg-type]
            quarantine=QuarantineEntry(0, "t", "E", "m", 1),
            sanitization=None,
        )
