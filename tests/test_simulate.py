"""Tests for the traffic model, trip simulator, check-ins, and fleet."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.landmarks import LandmarkKind
from repro.simulate import (
    SECONDS_PER_DAY,
    CheckinConfig,
    TrafficModel,
    TripConfig,
    TripSimulator,
    generate_checkins,
    landmark_popularity,
)
from repro.trajectory import average_speed_ms


class TestTrafficModel:
    def test_night_is_fastest(self):
        traffic = TrafficModel()
        night = traffic.speed_factor(2 * 3600.0)
        assert night == pytest.approx(0.70)
        assert night >= traffic.speed_factor(12 * 3600.0)
        assert night > traffic.speed_factor(8 * 3600.0)

    def test_rush_hour_slow(self):
        traffic = TrafficModel()
        assert traffic.speed_factor(8 * 3600.0) < 0.55
        assert traffic.speed_factor(18 * 3600.0) < 0.55

    def test_factor_wraps_across_days(self):
        traffic = TrafficModel()
        t = 8 * 3600.0
        assert traffic.speed_factor(t) == pytest.approx(
            traffic.speed_factor(t + 3 * SECONDS_PER_DAY)
        )

    def test_stop_probability_peaks_in_rush(self):
        traffic = TrafficModel()
        assert traffic.stop_probability(8 * 3600.0) > traffic.stop_probability(2 * 3600.0)

    def test_is_rush_hour(self):
        traffic = TrafficModel()
        assert traffic.is_rush_hour(8 * 3600.0)
        assert traffic.is_rush_hour(18 * 3600.0)
        assert not traffic.is_rush_hour(13 * 3600.0)
        assert not traffic.is_rush_hour(2 * 3600.0)

    def test_malformed_profile_rejected(self):
        with pytest.raises(ConfigError):
            TrafficModel(speed_profile=((0.0, 1.0), (12.0, 0.5)))  # no 24 h point


class TestTripConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TripConfig(sample_interval_s=0.0)
        with pytest.raises(ConfigError):
            TripConfig(gps_noise_m=-1.0)
        with pytest.raises(ConfigError):
            TripConfig(stop_duration_range=(10.0, 5.0))
        with pytest.raises(ConfigError):
            TripConfig(u_turn_probability=1.5)


class TestTripSimulator:
    @pytest.fixture(scope="class")
    def simulator(self, city):
        return TripSimulator(city, TrafficModel(), TripConfig())

    def test_trip_shape(self, city, simulator):
        rng = np.random.default_rng(0)
        ids = city.node_ids()
        trip = simulator.simulate(ids[0], ids[-1], 10 * 3600.0, rng, "t0")
        assert trip.raw.trajectory_id == "t0"
        assert len(trip.raw) > 10
        assert trip.raw.start_time == pytest.approx(10 * 3600.0)
        assert trip.route_nodes[0] == ids[0]

    def test_samples_near_route(self, city, simulator):
        rng = np.random.default_rng(1)
        ids = city.node_ids()
        trip = simulator.simulate(ids[0], ids[-1], 3 * 3600.0, rng)
        for sample in trip.raw.points[:: max(1, len(trip.raw) // 20)]:
            hit = city.nearest_edge(sample.point, max_radius_m=120.0)
            assert hit is not None

    def test_deterministic_given_rng(self, city, simulator):
        ids = city.node_ids()
        a = simulator.simulate(ids[0], ids[-1], 3600.0, np.random.default_rng(5))
        b = simulator.simulate(ids[0], ids[-1], 3600.0, np.random.default_rng(5))
        assert [p.t for p in a.raw] == [p.t for p in b.raw]
        assert [p.point for p in a.raw] == [p.point for p in b.raw]

    def test_rush_hour_slower_than_night(self, city):
        config = TripConfig(u_turn_probability=0.0, mid_edge_stop_probability=0.0)
        simulator = TripSimulator(city, TrafficModel(), config)
        ids = city.node_ids()
        rush = simulator.simulate(ids[0], ids[-1], 8 * 3600.0, np.random.default_rng(2))
        night = simulator.simulate(ids[0], ids[-1], 2 * 3600.0, np.random.default_rng(2))
        v_rush = average_speed_ms(rush.raw.points, city.projector)
        v_night = average_speed_ms(night.raw.points, city.projector)
        assert v_rush < v_night * 0.75

    def test_stops_recorded_with_durations(self, city):
        config = TripConfig(u_turn_probability=0.0)
        simulator = TripSimulator(city, TrafficModel(), config)
        ids = city.node_ids()
        # Rush hour, long trip: stops are near-certain across attempts.
        rng = np.random.default_rng(3)
        trips = [
            simulator.simulate(ids[0], ids[-1], 8 * 3600.0, rng) for _ in range(5)
        ]
        stops = [s for t in trips for s in t.stops]
        assert stops
        lo, hi = config.stop_duration_range
        assert all(lo <= s.duration_s <= hi for s in stops)

    def test_forced_u_turn_recorded(self, city):
        config = TripConfig(u_turn_probability=1.0)
        simulator = TripSimulator(city, TrafficModel(), config)
        ids = city.node_ids()
        rng = np.random.default_rng(4)
        trip = simulator.simulate(ids[0], ids[-1], 12 * 3600.0, rng)
        # Lost drivers make one to three corrections per episode.
        assert 1 <= len(trip.u_turns) <= 3
        # The trip still reaches its destination after the U-turn.
        end = trip.raw[-1].point
        dest = city.node(trip.destination).point
        assert city.projector.distance_m(end, dest) < 50.0

    def test_timestamps_monotone(self, city, simulator):
        ids = city.node_ids()
        rng = np.random.default_rng(6)
        trip = simulator.simulate(ids[3], ids[-4], 15 * 3600.0, rng)
        times = [p.t for p in trip.raw]
        assert times == sorted(times)


class TestCheckins:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CheckinConfig(n_users=0)
        with pytest.raises(ConfigError):
            CheckinConfig(popularity_exponent=0.0)

    def test_checkin_count(self, scenario):
        rng = np.random.default_rng(0)
        config = CheckinConfig(n_users=50, n_checkins=500)
        visits = generate_checkins(scenario.landmarks, config, rng)
        assert len(visits) == 500
        assert all(v.landmark in scenario.landmarks for v in visits)

    def test_popularity_long_tail(self, scenario):
        rng = np.random.default_rng(1)
        config = CheckinConfig(n_users=100, n_checkins=4000)
        popularity = landmark_popularity(scenario.landmarks, config, rng)
        values = sorted(popularity.values(), reverse=True)
        top_decile = sum(values[: len(values) // 10])
        assert top_decile > 0.5 * sum(values)

    def test_poi_clusters_boosted_on_average(self, scenario):
        rng = np.random.default_rng(2)
        popularity = landmark_popularity(scenario.landmarks, CheckinConfig(), rng)
        poi = [
            popularity[lm.landmark_id]
            for lm in scenario.landmarks
            if lm.kind is LandmarkKind.POI_CLUSTER
        ]
        turning = [
            popularity[lm.landmark_id]
            for lm in scenario.landmarks
            if lm.kind is LandmarkKind.TURNING_POINT
        ]
        assert np.mean(poi) > np.mean(turning)


class TestScenario:
    def test_scenario_components(self, scenario):
        assert scenario.network.node_count > 50
        assert len(scenario.landmarks) > 50
        assert scenario.stmaker.transfers.total_transitions > 100
        assert scenario.stmaker.feature_map.edge_count > 50

    def test_significance_assigned(self, scenario):
        scores = [lm.significance for lm in scenario.landmarks]
        assert max(scores) == 1.0
        assert min(scores) > 0.0
        # Long tail: most landmarks have small significance.
        assert np.median(scores) < 0.2

    def test_test_trips_fresh_and_deterministic(self):
        from repro.simulate import CityScenario, ScenarioConfig

        a = CityScenario.build(ScenarioConfig(seed=11, n_training_trips=30))
        b = CityScenario.build(ScenarioConfig(seed=11, n_training_trips=30))
        trip_a = a.simulate_trip(depart_time=9 * 3600.0)
        trip_b = b.simulate_trip(depart_time=9 * 3600.0)
        assert [p.t for p in trip_a.raw] == [p.t for p in trip_b.raw]
