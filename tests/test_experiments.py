"""Tests for the experiment harness: FF metric, user study, runners."""

import numpy as np
import pytest

from repro.core.types import PartitionSpan, PartitionSummary, TrajectorySummary
from repro.exceptions import ConfigError
from repro.experiments import (
    ReaderConfig,
    feature_frequency,
    format_ff_table,
    format_table,
    grade_summary,
    landmark_usage,
    level_histogram,
    run_case_study,
    run_efficiency,
    run_landmark_usage,
    run_partition_size_sweep,
    run_user_study_experiment,
)
from repro.experiments.userstudy import GradedSummary


def make_summary(tid, selected_keys, names=("A", "B"), text="The car moved."):
    from repro.core.types import FeatureAssessment
    from repro.features import FeatureKind

    selected = [
        FeatureAssessment(k, FeatureKind.MOVING, 1.0, 0.0, 0.5) for k in selected_keys
    ]
    partition = PartitionSummary(
        PartitionSpan(0, 0), names[0], names[1], selected, selected, text
    )
    return TrajectorySummary(tid, text, [partition])


class TestFeatureFrequency:
    def test_basic(self):
        summaries = [
            make_summary("a", ["speed"]),
            make_summary("b", ["speed", "u_turns"]),
            make_summary("c", []),
        ]
        ff = feature_frequency(summaries, ["speed", "u_turns", "stay_points"])
        assert ff["speed"] == pytest.approx(2 / 3)
        assert ff["u_turns"] == pytest.approx(1 / 3)
        assert ff["stay_points"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            feature_frequency([], ["speed"])

    def test_landmark_usage_counts(self):
        summaries = [
            make_summary("a", [], names=("X", "Y")),
            make_summary("b", [], names=("Y", "Z")),
        ]
        usage = landmark_usage(summaries)
        assert usage == {"X": 1, "Y": 2, "Z": 1}


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 0.5], [22, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.500" in text
        assert "22" in text

    def test_format_ff_table_short_labels(self):
        text = format_ff_table(
            ["row1"], [{"speed": 0.5, "grade_of_road": 0.1}],
            ["grade_of_road", "speed"], "k",
        )
        assert "GR" in text and "Spe" in text


class TestSimulatedReader:
    def test_rubric_weights_validated(self):
        with pytest.raises(ConfigError):
            ReaderConfig(coverage_weight=0.9, orientation_weight=0.9, readability_weight=0.9)

    def test_covered_eventful_trip_scores_high(self, scenario):
        # Build a trip with events and a summary that mentions them.
        rng = np.random.default_rng(0)
        trips = scenario.simulate_trips(10, depart_time=8 * 3600.0, rng=rng)
        eventful = max(trips, key=lambda t: sum(s.duration_s for s in t.stops))
        summary = scenario.stmaker.summarize(eventful.raw, k=3)
        graded = grade_summary(eventful, summary, scenario.landmarks)
        assert 0.0 <= graded.score
        assert graded.level in (1, 2, 3, 4)
        assert 0.0 <= graded.coverage <= 1.0

    def test_uncovered_events_penalized(self, scenario):
        rng = np.random.default_rng(1)
        trip = scenario.simulate_trips(1, depart_time=8 * 3600.0, rng=rng)[0]
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        # Strip the text so nothing is conveyed.
        bare = TrajectorySummary(
            summary.trajectory_id, "The car moved.", summary.partitions
        )
        full_grade = grade_summary(trip, summary, scenario.landmarks)
        if sum(s.duration_s for s in trip.stops) >= 90.0:
            bare_grade = grade_summary(trip, bare, scenario.landmarks)
            assert bare_grade.coverage <= full_grade.coverage

    def test_level_histogram(self):
        grades = [
            GradedSummary("a", 1, 1, 1, 0.9, 4),
            GradedSummary("b", 1, 1, 1, 0.7, 3),
            GradedSummary("c", 1, 1, 1, 0.9, 4),
        ]
        hist = level_histogram(grades)
        assert hist[4] == pytest.approx(2 / 3)
        assert hist[3] == pytest.approx(1 / 3)
        assert hist[1] == 0.0

    def test_level_histogram_empty_rejected(self):
        with pytest.raises(ConfigError):
            level_histogram([])


class TestRunners:
    def test_case_study_granularity(self, scenario):
        result = run_case_study(scenario)
        assert set(result.summaries) == {1, 2, 3}
        assert result.summaries[1].partition_count == 1
        assert result.summaries[3].partition_count == 3
        # Ground truth has the events the case study is built around.
        assert result.trip.stops or result.trip.u_turns

    def test_landmark_usage_long_tail(self, scenario):
        result = run_landmark_usage(scenario, n_trips=40, seed=3)
        assert len(result.decile_share) == 10
        assert sum(result.decile_share) == pytest.approx(1.0)
        # Long tail: top deciles dominate.
        assert result.top3_share() > 0.4

    def test_partition_size_sweep_trends(self, scenario):
        result = run_partition_size_sweep(scenario, ks=(1, 4, 7), n_trips=30, seed=4)
        assert len(result.ff_by_k) == 3
        # Moving features surface more at finer granularity (Fig. 10b).
        assert result.moving_mean(2) >= result.moving_mean(0)

    def test_user_study_runs(self, scenario):
        result = run_user_study_experiment(scenario, n_summaries=30, n_readers=5, seed=5)
        assert sum(result.histogram.values()) == pytest.approx(1.0)
        assert len(result.grades) > 0

    def test_time_of_day_runner_shape(self, scenario):
        from repro.experiments import run_time_of_day

        result = run_time_of_day(scenario, trips_per_bin=3, seed=7)
        assert len(result.bin_labels) == 12
        assert len(result.ff_by_bin) == 12
        for row in result.ff_by_bin:
            assert set(row) == set(scenario.registry.keys())
            assert all(0.0 <= v <= 1.0 for v in row.values())
        # day/night helpers are plain means over the right bins.
        key = scenario.registry.keys()[0]
        assert 0.0 <= result.daytime_mean(key) <= 1.0

    def test_weight_sweep_runner_shape(self, scenario):
        from repro.experiments import run_feature_weight_sweep

        result = run_feature_weight_sweep(
            scenario, weights=(0.5, 2.0), n_trips=6, seed=8
        )
        assert result.weights == [0.5, 2.0]
        assert len(result.ff_by_weight) == 2
        # Non-speed features are weight-invariant across the sweep (the
        # trips and all other weights are identical).
        for key in result.feature_keys:
            if key == "speed":
                continue
            assert result.ff_by_weight[0][key] == result.ff_by_weight[1][key]

    def test_efficiency_reports_positive_times(self, scenario):
        result = run_efficiency(scenario, n_trips=10, ks=(1, 3), seed=6)
        assert result.by_size
        assert all(ms > 0 for _, ms in result.by_size)
        assert [k for k, _ in result.by_k] == [1, 3]
