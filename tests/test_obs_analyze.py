"""Artifact analysis: loaders, well-formedness checks, critical paths, CLI.

Artifacts are built in-memory from the real serialization paths
(``TraceCollector.to_json``, ``PipelineEvent.to_dict``, flight-recorder
style tagged JSONL) so the loaders are tested against exactly what the
runtime writes, not hand-rolled approximations.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.exceptions import ConfigError
from repro.obs.analyze import (
    critical_path,
    group_traces,
    item_latencies,
    load_events,
    load_spans,
    render_analysis,
    trace_problems,
    trace_roots,
)
from repro.obs.events import PipelineEvent
from repro.obs.trace import SpanRecord


def rec(
    span_id: int,
    parent_id: int | None,
    name: str = "work",
    *,
    trace_id: str | None = "t1",
    duration_ms: float = 1.0,
    tags: dict | None = None,
) -> SpanRecord:
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name, start_s=0.0,
        duration_ms=duration_ms, status="ok", error=None, depth=0,
        tags=tags or {}, trace_id=trace_id,
    )


def item_end(
    seq: int,
    *,
    trace_id: str = "t1",
    trajectory_id: str = "trip-0",
    duration_ms: float = 10.0,
    ok: bool = True,
    attempts: int = 1,
    breakdown: dict | None = None,
) -> PipelineEvent:
    return PipelineEvent(
        seq=seq, ts_s=float(seq), kind="item_end",
        trajectory_id=trajectory_id,
        payload={
            "index": seq, "ok": ok, "duration_ms": duration_ms,
            "attempts": attempts, "trace_id": trace_id,
            "breakdown": breakdown or {},
        },
    )


# -- loaders -------------------------------------------------------------------


def test_load_spans_collector_dump(tmp_path):
    collector = obs.TraceCollector()
    obs.enable_tracing(collector)
    try:
        with obs.use_trace(obs.start_trace()):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
    finally:
        obs.disable_tracing()
    path = tmp_path / "trace.json"
    collector.export(path)
    spans = load_spans(path)
    assert [s.name for s in spans] == ["inner", "outer"]
    assert spans[0].trace_id == spans[1].trace_id is not None


def test_load_spans_array_and_jsonl(tmp_path):
    records = [rec(1, None), rec(2, 1)]
    as_array = tmp_path / "spans.json"
    as_array.write_text(json.dumps([r.to_dict() for r in records]))
    as_jsonl = tmp_path / "spans.jsonl"
    as_jsonl.write_text(
        "\n".join(json.dumps(r.to_dict()) for r in records) + "\n"
    )
    for path in (as_array, as_jsonl):
        loaded = load_spans(path)
        assert [(s.span_id, s.parent_id) for s in loaded] == [(1, None), (2, 1)]


def test_loaders_accept_flight_capture(tmp_path):
    # Flight-recorder dumps interleave tagged span/event/header lines in
    # one file; each loader takes only its record kind.
    lines = [
        {"record": "header", "reason": "slo_breach"},
        {"record": "span", **rec(1, None).to_dict()},
        {"record": "event", **item_end(1).to_dict()},
    ]
    path = tmp_path / "capture.jsonl"
    path.write_text("\n".join(json.dumps(line) for line in lines))
    assert [s.span_id for s in load_spans(path)] == [1]
    events = load_events(path)
    assert [e.kind for e in events] == ["item_end"]


def test_load_events_jsonl_roundtrip(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        "\n".join(json.dumps(item_end(i).to_dict()) for i in range(3))
    )
    events = load_events(path)
    assert [e.seq for e in events] == [0, 1, 2]
    assert events[0].trajectory_id == "trip-0"


def test_load_rejects_garbage_jsonl(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('not json at all\n')
    with pytest.raises(ConfigError, match="not JSON"):
        load_spans(path)


def test_load_empty_file(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("")
    assert load_spans(path) == []
    assert load_events(path) == []


# -- well-formedness -----------------------------------------------------------


def test_well_formed_trace_has_no_problems():
    spans = [rec(1, None, "item"), rec(2, 1, "attempt"), rec(3, 2, "summarize")]
    assert trace_problems(spans) == []
    assert [r.span_id for r in trace_roots(spans)] == [1]


def test_graft_root_counts_as_root():
    # The parent id points outside the trace (the infra shard span): still
    # exactly one root from the trace's point of view.
    spans = [rec(5, 99, "item"), rec(6, 5, "attempt")]
    assert trace_problems(spans) == []
    assert [r.span_id for r in trace_roots(spans)] == [5]


def test_duplicate_span_ids_reported():
    spans = [rec(1, None), rec(1, None)]
    problems = trace_problems(spans)
    assert any("appears 2 times" in p for p in problems)


def test_multiple_roots_reported():
    spans = [rec(1, None, "a"), rec(2, None, "b")]
    problems = trace_problems(spans)
    assert any("exactly one root" in p for p in problems)


def test_parent_cycle_reported():
    spans = [rec(1, 2, "a"), rec(2, 1, "b")]
    problems = trace_problems(spans)
    assert any("parent cycle" in p for p in problems)


def test_infra_spans_are_exempt():
    # Spans without a trace id (shard/batch infrastructure) are not held
    # to per-trace invariants.
    spans = [rec(1, None, trace_id=None), rec(2, None, trace_id=None)]
    assert trace_problems(spans) == []
    assert group_traces(spans) == {}


# -- critical path -------------------------------------------------------------


def test_critical_path_follows_widest_child():
    spans = [
        rec(1, None, "item", duration_ms=30.0),
        rec(2, 1, "attempt", duration_ms=10.0),
        rec(3, 1, "attempt", duration_ms=19.0),
        rec(4, 3, "summarize", duration_ms=18.0),
        rec(5, 4, "extract_features", duration_ms=12.0),
        rec(6, 4, "partition", duration_ms=2.0),
    ]
    path = critical_path(spans)
    assert [s.name for s in path] == [
        "item", "attempt", "summarize", "extract_features"
    ]
    assert [s.span_id for s in path] == [1, 3, 4, 5]


def test_critical_path_refuses_malformed():
    assert critical_path([rec(1, None), rec(2, None)]) == []
    assert critical_path([]) == []


# -- rendering -----------------------------------------------------------------


def test_render_analysis_sections():
    spans = [
        rec(1, None, "item", duration_ms=25.0, tags={"trajectory_id": "trip-0"}),
        rec(2, 1, "attempt", duration_ms=24.0),
    ]
    events = [
        item_end(
            1, duration_ms=25.0, attempts=2,
            breakdown={
                "exec_s": 0.02, "queue_wait_s": 0.005, "total_s": 0.025,
                "stages_s": {"summarize": 0.02, "partition": 0.003},
            },
        )
    ]
    text = render_analysis(spans, events)
    assert "1 trace(s)" in text
    assert "all traces well-formed" in text
    assert "item 25.0ms -> attempt 24.0ms" in text
    assert "trajectory trip-0" in text
    assert "latency accounting (1 item(s), 0 failed)" in text
    assert "summarize" in text
    assert "x2 ok" in text


def test_render_analysis_reports_problems():
    text = render_analysis([rec(1, None), rec(2, None)])
    assert "well-formedness problems" in text
    assert "malformed" in text


def test_item_latencies_joins_trajectory():
    rows = item_latencies([item_end(1), item_end(2, trajectory_id="trip-1")])
    assert [row["trajectory_id"] for row in rows] == ["trip-0", "trip-1"]
    assert all("duration_ms" in row for row in rows)


# -- CLI -----------------------------------------------------------------------


@pytest.fixture()
def artifacts(tmp_path):
    trace = tmp_path / "trace.json"
    spans = [
        rec(1, None, "item", duration_ms=25.0),
        rec(2, 1, "attempt", duration_ms=24.0),
    ]
    trace.write_text(json.dumps({"spans": [s.to_dict() for s in spans]}))
    events = tmp_path / "events.jsonl"
    events.write_text(json.dumps(item_end(1).to_dict()) + "\n")
    return trace, events


def test_cli_obs_analyze(artifacts, capsys):
    trace, events = artifacts
    code = main([
        "obs", "analyze", "--trace", str(trace), "--events", str(events),
    ])
    out = capsys.readouterr()
    assert code == 0
    assert "critical paths" in out.out
    assert "latency accounting" in out.out
    # The run-command obs epilogue must not fire for the analyze command
    # (no stray empty collector dump, nothing on stderr).
    assert '"spans"' not in out.out
    assert out.err == ""


def test_cli_obs_analyze_check_flags_malformed(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    spans = [rec(1, None, "a"), rec(2, None, "b")]
    trace.write_text(json.dumps({"spans": [s.to_dict() for s in spans]}))
    assert main(["obs", "analyze", "--trace", str(trace)]) == 0
    assert main(["obs", "analyze", "--trace", str(trace), "--check"]) == 1
    out = capsys.readouterr()
    assert "well-formedness problems" in out.out


def test_cli_obs_analyze_requires_an_artifact(capsys):
    assert main(["obs", "analyze"]) == 1
    assert "nothing to analyze" in capsys.readouterr().err
