"""Tests for run reports (repro.obs.report)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.report import (
    RunReport,
    _distribution,
    build_run_report,
    environment_fingerprint,
)
from repro.resilience import FaultInjector


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


@pytest.fixture(scope="module")
def base_trip(scenario):
    rng = np.random.default_rng(505)
    return scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]


class TestEnvironmentFingerprint:
    def test_fields(self):
        env = environment_fingerprint()
        assert set(env) >= {
            "python", "implementation", "platform", "machine", "cpu_count", "numpy",
        }
        assert env["numpy"] == np.__version__


class TestDistribution:
    def test_empty(self):
        assert _distribution([]) == {"count": 0}

    def test_single_value(self):
        dist = _distribution([3.0])
        assert dist["count"] == 1
        assert dist["min"] == dist["max"] == dist["p50"] == dist["p95"] == 3.0

    def test_ordering_invariants(self):
        dist = _distribution([5.0, 1.0, 3.0, 9.0, 7.0])
        assert dist["min"] <= dist["p50"] <= dist["p95"] <= dist["max"]
        assert dist["count"] == 5


class TestEmptyReport:
    def test_build_with_no_inputs(self):
        report = build_run_report()
        assert report.quality["summaries"] == 0
        assert report.resilience["quarantined"] == 0
        assert report.stages == [] and report.metrics == {}
        json.loads(report.to_json())  # serializable
        md = report.to_markdown()
        assert md.startswith("# STMaker run report")
        assert "## Summary quality" in md and "## Resilience" in md


class TestBuiltReport:
    @pytest.fixture
    def report(self, scenario, base_trip):
        registry = obs.enable_metrics()
        collector = obs.enable_tracing()
        result = scenario.stmaker.summarize_many(
            [base_trip.raw, base_trip.raw], k=2
        )
        return build_run_report(
            batches=[result], registry=registry, collector=collector
        )

    def test_quality_section(self, report):
        quality = report.quality
        assert quality["summaries"] == 2
        assert sum(quality["partition_counts"].values()) == 2
        assert quality["partitions_mean"] >= 1.0
        assert quality["selected_per_partition"] > 0.0
        assert quality["gamma_selected"]["count"] > 0
        assert 0.0 <= quality["gamma_selected"]["min"] <= 1.0
        counts = list(quality["selected_feature_keys"].values())
        assert counts == sorted(counts, reverse=True)

    def test_stage_times_from_collector(self, report):
        names = {stage["name"] for stage in report.stages}
        assert "summarize_many" in names
        for stage in report.stages:
            assert stage["count"] >= 1
            assert stage["total_ms"] >= stage["mean_ms"] >= 0.0

    def test_metrics_snapshot_included(self, report):
        assert any(name.startswith("summarize") for name in report.metrics)

    def test_clean_run_has_no_resilience_incidents(self, report):
        resilience = report.resilience
        assert resilience["degraded_summaries"] == 0
        assert resilience["quarantined"] == 0
        assert resilience["retries"] == 0

    def test_markdown_renders_all_sections(self, report):
        md = report.to_markdown()
        for heading in (
            "## Summary quality",
            "## Resilience",
            "## Pipeline stage times (traced)",
            "## Metrics",
        ):
            assert heading in md
        assert "summaries: **2**" in md

    def test_json_markdown_consistency(self, report):
        data = json.loads(report.to_json())
        assert data["quality"]["summaries"] == report.quality["summaries"]
        assert set(data) == {
            "created_unix", "environment", "stages", "resilience",
            "quality", "metrics", "serving", "containment", "latency",
        }

    def test_write_pair(self, report, tmp_path):
        json_path, md_path = report.write(tmp_path / "report")
        assert json_path.endswith(".json") and md_path.endswith(".md")
        loaded = json.loads(open(json_path, encoding="utf-8").read())
        assert loaded["quality"]["summaries"] == 2
        assert open(md_path, encoding="utf-8").read().startswith(
            "# STMaker run report"
        )


class TestDegradedReport:
    def test_fallbacks_surface_by_stage(self, scenario, base_trip):
        injector = FaultInjector.raising("partition")
        with injector.installed(scenario.stmaker):
            summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        report = build_run_report([summary])
        assert report.resilience["degraded_summaries"] == 1
        assert report.resilience["fallbacks_by_stage"] == {"partition": 1}
        assert "| partition | 1 |" in report.to_markdown()

    def test_summaries_and_batches_merge(self, scenario, base_trip):
        summary = scenario.stmaker.summarize(base_trip.raw, k=2)
        batch = scenario.stmaker.summarize_many([base_trip.raw], k=2)
        report = build_run_report([summary], batches=[batch])
        assert report.quality["summaries"] == 2


class TestContainmentSection:
    def test_clean_run_has_no_containment_section(self, scenario, base_trip):
        registry = obs.enable_metrics()
        batch = scenario.stmaker.summarize_many([base_trip.raw], k=2)
        report = build_run_report(batches=[batch], registry=registry)
        assert report.containment == {}
        assert "## Failure containment" not in report.to_markdown()

    def test_containment_counters_surface(self):
        from repro.serving import CircuitBreaker

        registry = obs.enable_metrics()
        registry.counter("serving.crashes").inc(2)
        registry.counter("serving.retried_shards").inc(3)
        breaker = CircuitBreaker("serving.process", min_volume=1)
        breaker.record_failure()  # trips: volume 1, rate 1.0
        report = build_run_report(registry=registry)
        assert report.containment["crashes"] == 2
        assert report.containment["retried_shards"] == 3
        assert report.containment["breaker_trips"] == 1
        # Untouched counters are zero-filled once any activity exists.
        assert report.containment["shed_items"] == 0
        assert report.containment["breakers"] == [
            {"name": "serving.process", "state": "open"}
        ]
        md = report.to_markdown()
        assert "## Failure containment" in md
        assert "worker crash incidents: **2**" in md
        assert "| serving.process | open |" in md

    def test_quarantine_post_mortem_table(self, scenario, base_trip):
        from repro.resilience import FaultSpec

        injector = FaultInjector([FaultSpec(
            stage="extract", kind="crash", times=None,
            trajectory_id=base_trip.raw.trajectory_id,
        )])
        with injector.installed(scenario.stmaker):
            batch = scenario.stmaker.summarize_many([base_trip.raw], k=2)
        report = build_run_report(batches=[batch])
        [entry] = report.resilience["quarantine_entries"]
        assert entry["error_type"] == "WorkerCrashError"
        assert entry["total_duration_s"] >= 0.0
        md = report.to_markdown()
        assert "Quarantine post-mortem:" in md
        # Serial path: no shard served the item, rendered as "-".
        assert "| WorkerCrashError | 1 |" in md
        assert md.splitlines()[-1].endswith("| - |") or "| - |" in md


def test_run_report_dataclass_roundtrip():
    report = RunReport(
        created_unix=0.0,
        environment={"python": "3.x"},
        stages=[],
        resilience={"degraded_summaries": 0},
        quality={"summaries": 0},
    )
    assert json.loads(report.to_json(indent=None)) == report.to_dict()
