"""Tests for the partition dynamic programs, incl. brute-force equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    brute_force_k_partition,
    optimal_k_partition,
    optimal_partition,
    partition_potential,
    spans_from_boundaries,
)
from repro.core.types import PartitionSpan
from repro.exceptions import PartitionError

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestSpans:
    def test_span_validation(self):
        with pytest.raises(PartitionError):
            PartitionSpan(-1, 0)
        with pytest.raises(PartitionError):
            PartitionSpan(3, 2)

    def test_span_landmark_indexes(self):
        span = PartitionSpan(2, 4)
        assert span.start_landmark_index == 2
        assert span.end_landmark_index == 5
        assert span.segment_count == 3

    def test_spans_from_boundaries(self):
        spans = spans_from_boundaries(5, [1, 3])
        assert spans == [PartitionSpan(0, 1), PartitionSpan(2, 3), PartitionSpan(4, 4)]

    def test_spans_no_boundaries(self):
        assert spans_from_boundaries(4, []) == [PartitionSpan(0, 3)]

    def test_spans_bad_boundary(self):
        with pytest.raises(PartitionError):
            spans_from_boundaries(3, [2])  # junction 2 does not exist for 3 segs


class TestOptimalPartition:
    def test_cut_where_boundary_beats_similarity(self):
        # Junction 0: boundary 0.9 > similarity 0.3 -> cut.
        # Junction 1: boundary 0.1 < similarity 0.8 -> merge.
        spans = optimal_partition([0.3, 0.8], [0.9, 0.1])
        assert spans == [PartitionSpan(0, 0), PartitionSpan(1, 2)]

    def test_single_segment(self):
        assert optimal_partition([], []) == [PartitionSpan(0, 0)]

    def test_mismatched_inputs(self):
        with pytest.raises(PartitionError):
            optimal_partition([0.5], [])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(unit_floats, unit_floats), min_size=0, max_size=10))
    def test_is_global_minimum(self, pairs):
        similarities = [s for s, _ in pairs]
        boundaries = [b for _, b in pairs]
        n = len(pairs) + 1
        best = optimal_partition(similarities, boundaries)
        score = partition_potential(best, similarities, boundaries)
        # Compare against every possible partition (2^(n-1) of them).
        import itertools

        for r in range(n):
            for cuts in itertools.combinations(range(n - 1), r):
                spans = spans_from_boundaries(n, cuts)
                assert score <= partition_potential(spans, similarities, boundaries) + 1e-12


class TestKPartition:
    def test_exact_count(self):
        spans = optimal_k_partition([0.5, 0.5, 0.5], [0.1, 0.9, 0.2], k=2)
        assert len(spans) == 2
        # The single cut goes to the junction with the best margin (index 1).
        assert spans == [PartitionSpan(0, 1), PartitionSpan(2, 3)]

    def test_k_one_is_whole_trajectory(self):
        spans = optimal_k_partition([0.2, 0.9], [0.8, 0.1], k=1)
        assert spans == [PartitionSpan(0, 2)]

    def test_k_equals_segments(self):
        spans = optimal_k_partition([0.2, 0.9], [0.8, 0.1], k=3)
        assert spans == [PartitionSpan(0, 0), PartitionSpan(1, 1), PartitionSpan(2, 2)]

    def test_invalid_k(self):
        with pytest.raises(PartitionError):
            optimal_k_partition([0.5], [0.5], k=0)
        with pytest.raises(PartitionError):
            optimal_k_partition([0.5], [0.5], k=3)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(unit_floats, unit_floats), min_size=1, max_size=9),
        st.data(),
    )
    def test_matches_brute_force(self, pairs, data):
        similarities = [s for s, _ in pairs]
        boundaries = [b for _, b in pairs]
        n = len(pairs) + 1
        k = data.draw(st.integers(min_value=1, max_value=n))
        dp = optimal_k_partition(similarities, boundaries, k)
        brute = brute_force_k_partition(similarities, boundaries, k)
        assert len(dp) == k
        dp_score = partition_potential(dp, similarities, boundaries)
        brute_score = partition_potential(brute, similarities, boundaries)
        assert dp_score == pytest.approx(brute_score, abs=1e-9)

    def test_unconstrained_never_beats_constrained(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(2, 12))
            sims = rng.uniform(0, 1, n - 1).tolist()
            bounds = rng.uniform(0, 1, n - 1).tolist()
            free = optimal_partition(sims, bounds)
            free_score = partition_potential(free, sims, bounds)
            forced = optimal_k_partition(sims, bounds, k=len(free))
            forced_score = partition_potential(forced, sims, bounds)
            assert forced_score == pytest.approx(free_score, abs=1e-9)


class TestPartitionPotential:
    def test_rejects_non_covering_spans(self):
        with pytest.raises(PartitionError):
            partition_potential([PartitionSpan(0, 0)], [0.5], [0.5])

    def test_value(self):
        # One cut at junction 0: potential = -b0 - s1.
        spans = spans_from_boundaries(3, [0])
        assert partition_potential(spans, [0.3, 0.6], [0.9, 0.1]) == pytest.approx(
            -0.9 - 0.6
        )
