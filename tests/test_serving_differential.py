"""Differential suite: sharded parallel serving ≡ the serial pipeline.

The contract of ``repro.serving`` is that ``summarize_many(workers=N)``
changes *nothing* semantically: summaries (text, partitions, Γ values),
degradation reports, quarantine entries and sanitization reports must be
element-wise identical to ``workers=1``, in input order, for any shard
mode — including under deterministic fault injection.

The corpus is ≥20 generated scenarios: healthy simulated trips across the
day plus corrupted mutants (duplicate timestamps, teleports, dead zones,
off-map, minimal, noisy) that exercise sanitization, degradation, and
quarantine.

``SERVING_TEST_WORKERS`` (CI matrix: 1 and 4) sets the pool's worker
count; every comparison forces the pool with an explicit ``shard_size``,
so even the 1-worker leg runs the shard/reassembly machinery.
``SERVING_TEST_EXECUTOR`` (CI matrix: thread and process) selects the
pool backend, so the whole suite also proves the process executor —
artifact shipping, worker rebuild, telemetry relay — element-wise
identical to serial.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import TransientError
from repro.geo import GeoPoint
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.serving import SHARD_MODES
from repro.trajectory import RawTrajectory, TrajectoryPoint

#: Worker count of the parallel side of every comparison (CI matrix 1/4).
WORKERS = int(os.environ.get("SERVING_TEST_WORKERS", "4"))

#: Pool backend of the parallel side (CI matrix thread/process).
EXECUTOR = os.environ.get("SERVING_TEST_EXECUTOR", "thread")


def _no_sleep(seconds: float) -> None:
    """A sleeper that doesn't — module-level so it crosses process pools."""

#: The five stages, for per-stage fault-injection comparisons.
STAGES = ("calibrate", "extract", "partition", "select", "realize")


# -- corpus -------------------------------------------------------------------


def _mutants(trips) -> list[RawTrajectory]:
    """Corrupted variants of healthy trips, one failure archetype each."""
    out = []

    pts = []
    for p in trips[0].raw:
        pts.append(p)
        pts.append(TrajectoryPoint(p.point, p.t))  # exact duplicate samples
    out.append(RawTrajectory(pts, "mut-dup-timestamps"))

    pts = list(trips[1].raw.points)
    mid = len(pts) // 2
    pts[mid] = TrajectoryPoint(  # ~100 km teleport glitch mid-trip
        GeoPoint(pts[mid].point.lat + 1.0, pts[mid].point.lon), pts[mid].t
    )
    out.append(RawTrajectory(pts, "mut-teleport"))

    pts = list(trips[2].raw.points)
    n = len(pts)
    out.append(  # GPS dead zone: middle third missing
        RawTrajectory(pts[: n // 3] + pts[2 * n // 3 :], "mut-dead-zone")
    )

    out.append(RawTrajectory(  # fully off-map: nowhere near any landmark
        [
            TrajectoryPoint(GeoPoint(10.0, 10.0 + 0.001 * i), float(i * 30))
            for i in range(12)
        ],
        "mut-off-map",
    ))

    pts = trips[3].raw.points
    out.append(RawTrajectory([pts[0], pts[-1]], "mut-minimal"))

    pts = list(trips[4].raw.points)
    out.append(RawTrajectory(  # long dwell: the same fix repeated
        pts[: len(pts) // 2]
        + [
            TrajectoryPoint(pts[len(pts) // 2].point, pts[len(pts) // 2].t + 5.0 * i)
            for i in range(1, 15)
        ],
        "mut-long-dwell",
    ))

    out.append(RawTrajectory(trips[5].raw.points[:6], "mut-truncated"))

    rng = np.random.default_rng(99)
    pts = [
        TrajectoryPoint(
            GeoPoint(
                p.point.lat + float(rng.normal(0.0, 2e-4)),
                p.point.lon + float(rng.normal(0.0, 2e-4)),
            ),
            p.t,
        )
        for p in trips[6].raw
    ]
    out.append(RawTrajectory(pts, "mut-noisy"))

    return out


@pytest.fixture(scope="module")
def corpus(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(1234)
    trips = [
        scenario.simulate_trips(1, depart_time=(6.0 + 0.9 * i) * 3600.0, rng=rng)[0]
        for i in range(14)
    ]
    # simulate_trips restarts its id counter per call, so re-id the trips.
    healthy = [
        RawTrajectory(trip.raw.points, f"trip-{i:02d}")
        for i, trip in enumerate(trips)
    ]
    return healthy + _mutants(trips)


@pytest.fixture(scope="module")
def stmaker(scenario):
    return scenario.stmaker


# -- the equivalence assertion ------------------------------------------------


def assert_batches_identical(serial, parallel) -> None:
    """Element-wise equality of everything a BatchResult carries."""
    assert parallel.ok_count == serial.ok_count
    assert parallel.quarantined_count == serial.quarantined_count
    for ours, theirs in zip(parallel.summaries, serial.summaries, strict=True):
        assert ours.trajectory_id == theirs.trajectory_id
        assert ours.text == theirs.text
        # Dataclass equality covers spans, landmark names, selected
        # features, and the exact Γ (irregular_rate) floats.
        assert ours.partitions == theirs.partitions
        assert ours.degradation.to_dict() == theirs.degradation.to_dict()
    assert parallel.quarantined == serial.quarantined
    assert parallel.sanitization == serial.sanitization


def run_pair(stmaker, corpus, *, shard_mode="balanced", **kwargs):
    serial = stmaker.summarize_many(corpus, workers=1, **kwargs)
    parallel = stmaker.summarize_many(
        corpus, workers=WORKERS, shard_size=3, shard_mode=shard_mode,
        executor=EXECUTOR, **kwargs
    )
    return serial, parallel


# -- differential tests -------------------------------------------------------


def test_corpus_is_large_and_diverse(corpus):
    assert len(corpus) >= 20
    assert len({raw.trajectory_id for raw in corpus}) == len(corpus)


@pytest.mark.parametrize("shard_mode", SHARD_MODES)
def test_parallel_equals_serial(stmaker, corpus, shard_mode):
    serial, parallel = run_pair(stmaker, corpus, shard_mode=shard_mode, k=2)
    assert_batches_identical(serial, parallel)
    # The corpus genuinely exercises every outcome class.
    assert serial.ok_count > 0
    assert serial.quarantined_count > 0
    assert any(r is not None and not r.clean for r in serial.sanitization)


def test_parallel_equals_serial_optimal_k(stmaker, corpus):
    serial, parallel = run_pair(stmaker, corpus, k=None)
    assert_batches_identical(serial, parallel)


def test_parallel_equals_serial_without_sanitizer(stmaker, corpus):
    serial, parallel = run_pair(stmaker, corpus, k=2, sanitize=False)
    assert_batches_identical(serial, parallel)
    assert serial.sanitization == [None] * len(corpus)


@pytest.mark.parametrize("stage", STAGES)
def test_parallel_equals_serial_under_stage_faults(stmaker, corpus, stage):
    """Every item degrades at *stage*; parallel must degrade identically.

    ``times=None`` fires on every call, which is the per-item-deterministic
    shape: each item sees the fault regardless of scheduling order.
    """

    def run(workers: int):
        injector = FaultInjector([FaultSpec(stage=stage, times=None)])
        with injector.installed(stmaker):
            if workers == 1:
                return stmaker.summarize_many(corpus, k=2)
            return stmaker.summarize_many(
                corpus, k=2, workers=workers, shard_size=3, executor=EXECUTOR
            )

    serial, parallel = run(1), run(WORKERS)
    assert_batches_identical(serial, parallel)
    degraded = [s for s in serial.summaries if s.degradation.degraded]
    assert degraded, f"stage {stage!r} faults never degraded anything"


def test_parallel_equals_serial_under_transient_storm(stmaker, corpus):
    """Unrelenting TransientErrors exhaust retries and quarantine every item."""
    retry = RetryPolicy(max_retries=2, backoff_base_s=0.0)

    def run(workers: int):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=None)]
        )
        with injector.installed(stmaker):
            return stmaker.summarize_many(
                corpus, k=2, retry=retry, sleeper=_no_sleep,
                workers=workers, shard_size=3, executor=EXECUTOR,
            ) if workers != 1 else stmaker.summarize_many(
                corpus, k=2, retry=retry, sleeper=_no_sleep
            )

    serial, parallel = run(1), run(WORKERS)
    assert_batches_identical(serial, parallel)
    assert serial.ok_count == 0
    # max_retries=2 → items that reached "extract" burned exactly 3
    # attempts; mutants that die earlier (calibrate) quarantine on the
    # first attempt without retrying a non-transient error.
    attempts = {entry.attempts for entry in serial.quarantined}
    assert attempts <= {1, 3} and 3 in attempts


def test_parallel_equals_serial_with_expired_deadline(stmaker, corpus):
    """A zero budget quarantines everything with identical entries."""
    serial, parallel = run_pair(stmaker, corpus, k=2, deadline_s=0.0)
    assert_batches_identical(serial, parallel)
    assert serial.ok_count == 0
    assert {e.error_type for e in serial.quarantined} == {"DeadlineExceeded"}


def test_parallel_strict_mode_identical_on_clean_corpus(stmaker, corpus):
    clean = corpus[:10]  # the healthy simulated trips
    serial = stmaker.summarize_many(clean, k=2, strict=True)
    parallel = stmaker.summarize_many(
        clean, k=2, strict=True, workers=WORKERS, shard_size=2,
        executor=EXECUTOR,
    )
    assert_batches_identical(serial, parallel)
    assert serial.quarantined_count == 0


def test_async_wrapper_equals_serial(stmaker, corpus):
    import asyncio

    from repro.serving import run_sharded_async

    serial = stmaker.summarize_many(corpus, k=2)
    parallel = asyncio.run(
        run_sharded_async(
            stmaker, corpus, 2, workers=WORKERS, shard_size=3,
            executor=EXECUTOR,
        )
    )
    assert_batches_identical(serial, parallel)


def test_parallel_progress_callback_sees_every_item(stmaker, corpus):
    from repro.resilience import BatchProgress

    snapshots: list[BatchProgress] = []
    result = stmaker.summarize_many(
        corpus, k=2, workers=WORKERS, shard_size=3, progress=snapshots.append,
        executor=EXECUTOR,
    )
    assert len(snapshots) == len(corpus)
    final = max(snapshots, key=lambda p: p.done)
    assert final.done == final.total == len(corpus)
    assert final.ok == result.ok_count
    assert final.quarantined == result.quarantined_count
    assert all(0.0 <= p.percent <= 100.0 for p in snapshots)


def test_hashed_mode_accepts_custom_shard_key(stmaker, corpus):
    from repro.serving import run_sharded

    serial = stmaker.summarize_many(corpus, k=2)
    parallel = run_sharded(
        stmaker, corpus, 2, workers=WORKERS, shard_size=3,
        shard_mode="hashed", shard_key=lambda raw: raw.trajectory_id[::-1],
        executor=EXECUTOR,
    )
    assert_batches_identical(serial, parallel)


def test_pool_rejects_zero_workers(stmaker, corpus):
    from repro.exceptions import ConfigError
    from repro.serving import run_sharded

    with pytest.raises(ConfigError):
        run_sharded(stmaker, corpus, 2, workers=0)
    with pytest.raises(ConfigError):
        stmaker.summarize_many(corpus, k=2, workers=0)


def test_parallel_strict_mode_raises_like_serial(stmaker, corpus):
    with pytest.raises(Exception) as serial_exc:
        stmaker.summarize_many(corpus, k=2, strict=True)
    with pytest.raises(Exception) as parallel_exc:
        stmaker.summarize_many(
            corpus, k=2, strict=True, workers=WORKERS, shard_size=3,
            executor=EXECUTOR,
        )
    assert type(parallel_exc.value) is type(serial_exc.value)
