"""Tests for semantic queries over summary collections."""

import numpy as np
import pytest

from repro.core import FeaturePredicate, SummaryStore
from repro.core.types import (
    FeatureAssessment,
    PartitionSpan,
    PartitionSummary,
    TrajectorySummary,
)
from repro.exceptions import ConfigError
from repro.features import SPEED, U_TURNS, FeatureKind


def make_summary(tid, selected, names=("A", "B"), text=None):
    assessments = [
        FeatureAssessment(key, FeatureKind.MOVING, value, 0.0, 0.5)
        for key, value in selected
    ]
    text = text or f"The car moved from the {names[0]} to the {names[1]}."
    partition = PartitionSummary(
        PartitionSpan(0, 0), names[0], names[1], assessments, assessments, text
    )
    return TrajectorySummary(tid, text, [partition])


@pytest.fixture()
def store():
    s = SummaryStore()
    s.add(make_summary("t1", [(SPEED, 20.0)], names=("Mall", "Park"),
                       text="slow trip with the speed of 20 km/h slower than usual"))
    s.add(make_summary("t2", [(U_TURNS, 2.0)], names=("Park", "Station"),
                       text="with conducting two U-turns at the Park"))
    s.add(make_summary("t3", [(SPEED, 80.0)], names=("Mall", "Station"),
                       text="fast smooth trip faster than usual"))
    s.add(make_summary("t4", [], names=("Depot", "Mall"), text="moved smoothly"))
    return s


class TestStoreBasics:
    def test_len_contains_get(self, store):
        assert len(store) == 4
        assert "t2" in store and "tx" not in store
        assert store.get("t3").trajectory_id == "t3"
        with pytest.raises(ConfigError):
            store.get("nope")

    def test_id_required(self):
        with pytest.raises(ConfigError):
            SummaryStore().add(make_summary("", []))

    def test_replace_on_re_add(self, store):
        store.add(make_summary("t4", [(SPEED, 10.0)], text="now slow"))
        assert len(store) == 4
        assert store.query(features=[FeaturePredicate(SPEED)], limit=10)


class TestQueries:
    def test_feature_presence(self, store):
        hits = store.query(features=[FeaturePredicate(U_TURNS)])
        assert [s.trajectory_id for s in hits] == ["t2"]

    def test_feature_value_range(self, store):
        slow = store.query(features=[FeaturePredicate(SPEED, max_value=30.0)])
        assert [s.trajectory_id for s in slow] == ["t1"]
        fast = store.query(features=[FeaturePredicate(SPEED, min_value=50.0)])
        assert [s.trajectory_id for s in fast] == ["t3"]

    def test_landmark_mention(self, store):
        hits = store.query(mentions_landmark="Mall")
        assert {s.trajectory_id for s in hits} == {"t1", "t3", "t4"}

    def test_conjunction(self, store):
        hits = store.query(
            features=[FeaturePredicate(SPEED)], mentions_landmark="Station"
        )
        assert [s.trajectory_id for s in hits] == ["t3"]

    def test_text_ranking(self, store):
        hits = store.query(text="U-turns park")
        assert hits[0].trajectory_id == "t2"

    def test_text_plus_feature(self, store):
        hits = store.query(text="trip", features=[FeaturePredicate(SPEED)])
        assert {s.trajectory_id for s in hits} == {"t1", "t3"}

    def test_limit(self, store):
        assert len(store.query(limit=2)) == 2
        with pytest.raises(ConfigError):
            store.query(limit=0)

    def test_count_by_feature(self, store):
        counts = store.count_by_feature()
        assert counts[SPEED] == 2
        assert counts[U_TURNS] == 1


class TestWithRealSummaries:
    def test_store_over_simulated_corpus(self, scenario):
        rng = np.random.default_rng(81)
        trips = scenario.simulate_trips(10, depart_time=8 * 3600.0, rng=rng)
        store = SummaryStore()
        store.add_all(scenario.stmaker.summarize(t.raw, k=2) for t in trips)
        assert len(store) == 10
        slow = store.query(
            features=[FeaturePredicate(SPEED, max_value=40.0)], limit=5
        )
        for summary in slow:
            assert SPEED in summary.selected_feature_keys()
