"""Admission control: budgets, shedding, degrade-to-cheap-k, tenants.

Unit tests drive :class:`AdmissionPolicy` / :class:`AdmissionController`
directly; integration tests prove the intake actually guards both entry
points — the serial loop in ``summarize_many`` and the sharded pool —
rejecting before any work starts and degrading to ``degrade_k`` without
losing items.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ConfigError, OverloadError
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    SHED_POLICIES,
    AdmissionController,
    AdmissionPolicy,
)
from repro.trajectory import RawTrajectory


@pytest.fixture()
def clean_obs():
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    obs.disable_events()


# -- policy: the stateless per-batch budget -----------------------------------


class TestAdmissionPolicy:
    def test_validation(self):
        assert SHED_POLICIES == ("reject", "degrade")
        with pytest.raises(ConfigError):
            AdmissionPolicy(shed="drop")
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_queued_items=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_in_flight_shards=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(degrade_k=0)

    def test_unbounded_accepts_anything(self):
        ticket = AdmissionPolicy().admit(10_000)
        assert ticket.decision.action == "accept"
        assert ticket.decision.k_override is None

    def test_within_budget_accepts(self):
        ticket = AdmissionPolicy(max_queued_items=10).admit(10)
        assert ticket.decision.action == "accept"

    def test_over_budget_rejects_with_typed_error(self, clean_obs):
        registry = obs.enable_metrics(MetricsRegistry())
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        policy = AdmissionPolicy(max_queued_items=10)
        with pytest.raises(OverloadError, match="11 items"):
            policy.admit(11)
        assert registry.counter("serving.shed_items").value == 11.0
        [shed] = log.events("load_shed")
        assert shed.payload["action"] == "reject"
        assert shed.payload["items"] == 11

    def test_over_budget_degrades_when_asked(self, clean_obs):
        registry = obs.enable_metrics(MetricsRegistry())
        log = obs.EventLog()
        obs.enable_events().subscribe(log)
        policy = AdmissionPolicy(max_queued_items=10, shed="degrade", degrade_k=1)
        ticket = policy.admit(11)
        assert ticket.decision.action == "degrade"
        assert ticket.decision.k_override == 1
        assert registry.counter("serving.degraded_admissions").value == 1.0
        [shed] = log.events("load_shed")
        assert shed.payload["action"] == "degrade"
        assert shed.payload["k"] == 1

    def test_priority_bypasses_budget(self):
        policy = AdmissionPolicy(max_queued_items=1, bypass_priority=9)
        ticket = policy.admit(500, priority=9)
        assert ticket.decision.action == "bypass"
        with pytest.raises(OverloadError):
            policy.admit(500, priority=8)

    def test_ticket_release_is_idempotent_noop(self):
        ticket = AdmissionPolicy().admit(1)
        ticket.release()
        ticket.release()


# -- controller: live multi-batch state ---------------------------------------


class TestAdmissionController:
    def test_budget_held_until_release(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queued_items=10))
        first = ctrl.admit(6)
        assert ctrl.queued_items == 6
        with pytest.raises(OverloadError):
            ctrl.admit(5)  # 6 + 5 > 10
        first.release()
        assert ctrl.queued_items == 0
        ctrl.admit(5)  # fits again

    def test_ticket_is_a_context_manager(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queued_items=10))
        with ctrl.admit(6):
            assert ctrl.queued_items == 6
        assert ctrl.queued_items == 0

    def test_tenant_budget_checked_on_top_of_global(self):
        ctrl = AdmissionController(
            AdmissionPolicy(max_queued_items=100),
            tenant_budgets={"small": 5},
        )
        ctrl.admit(5, tenant="small")
        assert ctrl.queued_for("small") == 5
        with pytest.raises(OverloadError, match="tenant 'small'"):
            ctrl.admit(1, tenant="small")
        # Other tenants only answer to the global budget.
        ctrl.admit(50, tenant="big")
        assert ctrl.queued_items == 55

    def test_tenant_release_returns_tenant_budget(self):
        ctrl = AdmissionController(
            AdmissionPolicy(), tenant_budgets={"t": 4}
        )
        ticket = ctrl.admit(4, tenant="t")
        ticket.release()
        assert ctrl.queued_for("t") == 0
        ctrl.admit(4, tenant="t")  # budget actually returned

    def test_queued_items_gauge_tracks_live_load(self, clean_obs):
        registry = obs.enable_metrics(MetricsRegistry())
        ctrl = AdmissionController(AdmissionPolicy(max_queued_items=10))
        ticket = ctrl.admit(7)
        assert registry.gauge("serving.admission.queued_items").value == 7.0
        ticket.release()
        assert registry.gauge("serving.admission.queued_items").value == 0.0

    def test_max_in_flight_shards_exposed_for_the_pool(self):
        ctrl = AdmissionController(AdmissionPolicy(max_in_flight_shards=2))
        assert ctrl.max_in_flight_shards == 2


# -- integration through summarize_many ---------------------------------------


@pytest.fixture(scope="module")
def trips(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(33)
    sims = [
        scenario.simulate_trips(1, depart_time=(9.0 + 0.4 * i) * 3600.0, rng=rng)[0]
        for i in range(6)
    ]
    return [
        RawTrajectory(s.raw.points, f"at-{i:02d}") for i, s in enumerate(sims)
    ]


class TestAdmissionIntegration:
    def test_reject_raises_before_any_work_serial(self, scenario, trips, clean_obs):
        registry = obs.enable_metrics(MetricsRegistry())
        policy = AdmissionPolicy(max_queued_items=3)
        with pytest.raises(OverloadError):
            scenario.stmaker.summarize_many(trips, k=2, admission=policy)
        # Nothing was summarized: the reject happened at the front door.
        assert registry.get("summarize.calls") is None
        assert registry.counter("serving.shed_items").value == float(len(trips))

    @pytest.mark.parametrize("workers,executor", [(1, None), (2, "thread"),
                                                  (2, "process")])
    def test_degrade_serves_batch_at_cheap_k(
        self, scenario, trips, workers, executor, clean_obs
    ):
        policy = AdmissionPolicy(max_queued_items=3, shed="degrade", degrade_k=1)
        kwargs = {} if executor is None else {
            "workers": workers, "shard_size": 2, "executor": executor,
        }
        batch = scenario.stmaker.summarize_many(
            trips, k=3, admission=policy, **kwargs
        )
        assert batch.ok_count == len(trips)
        # The k=3 ask was overridden to degrade_k=1: every summary is the
        # single-partition cheap shape.
        assert all(len(s.partitions) == 1 for s in batch.summaries)

    def test_reject_raises_before_any_work_sharded(self, scenario, trips, clean_obs):
        policy = AdmissionPolicy(max_queued_items=3)
        with pytest.raises(OverloadError):
            scenario.stmaker.summarize_many(
                trips, k=2, workers=2, shard_size=2, admission=policy
            )

    def test_bypass_priority_serves_over_budget(self, scenario, trips):
        policy = AdmissionPolicy(max_queued_items=1, bypass_priority=10)
        batch = scenario.stmaker.summarize_many(
            trips, k=2, admission=policy, priority=10
        )
        assert batch.ok_count == len(trips)

    def test_controller_budget_released_after_batch(self, scenario, trips):
        ctrl = AdmissionController(AdmissionPolicy(max_queued_items=50))
        scenario.stmaker.summarize_many(trips, k=2, admission=ctrl)
        assert ctrl.queued_items == 0  # released even though we kept no ticket
        scenario.stmaker.summarize_many(
            trips, k=2, workers=2, shard_size=2, admission=ctrl,
            tenant="acme",
        )
        assert ctrl.queued_items == 0
        assert ctrl.queued_for("acme") == 0

    def test_max_in_flight_caps_supervisor_window(self, scenario, trips):
        """A 1-shard window serializes the pool but changes no results."""
        ctrl = AdmissionController(
            AdmissionPolicy(max_in_flight_shards=1)
        )
        serial = scenario.stmaker.summarize_many(trips, k=2)
        windowed = scenario.stmaker.summarize_many(
            trips, k=2, workers=2, shard_size=2, executor="process",
            admission=ctrl,
        )
        assert windowed.ok_count == serial.ok_count
        for ours, theirs in zip(windowed.summaries, serial.summaries, strict=True):
            assert ours.text == theirs.text
