"""Tests for the shared benchmark harness (benchmarks/harness.py).

benchmarks/ is not a package, so the module is loaded straight from its
file path — the same way the record_* scripts find it (script dir on
``sys.path``).  The statistical core, history, and regression gate run on
synthetic callables; only the figures-suite execution test builds a
(small) scenario.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_HARNESS_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "harness.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_harness"] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop("bench_harness", None)


class TestBenchStats:
    def test_median_iqr_min_max(self, harness):
        stats = harness.stats_from_samples(
            "s", [5.0, 1.0, 3.0, 9.0, 7.0], warmup=1
        )
        assert stats.median_ms == 5.0
        assert stats.min_ms == 1.0 and stats.max_ms == 9.0
        assert stats.mean_ms == 5.0
        assert stats.iqr_ms > 0.0
        assert stats.repeats == 5

    def test_single_sample_iqr_zero(self, harness):
        stats = harness.stats_from_samples("s", [4.2])
        assert stats.iqr_ms == 0.0 and stats.median_ms == 4.2

    def test_empty_samples_raise(self, harness):
        with pytest.raises(ValueError, match="no samples"):
            harness.stats_from_samples("s", [])

    def test_to_dict_keys(self, harness):
        data = harness.stats_from_samples("s", [1.0, 2.0], warmup=3).to_dict()
        assert set(data) == {
            "repeats", "warmup", "median_ms", "iqr_ms", "min_ms",
            "max_ms", "mean_ms", "samples_ms",
        }
        assert data["warmup"] == 3 and data["samples_ms"] == [1.0, 2.0]


class TestMeasure:
    def test_warmup_not_counted(self, harness):
        calls = []
        stats = harness.measure(
            lambda: calls.append(1), name="m", repeats=4, warmup=2
        )
        assert len(calls) == 6
        assert stats.repeats == 4 and stats.warmup == 2

    def test_per_unit_division(self, harness):
        # fn reports 10 units of work; per-item samples must be ~1/10 of
        # the wall samples of an identical fn reporting 1 unit.
        def busy():
            sum(range(20_000))

        def one_unit():
            busy()
            return 1

        def ten_units():
            busy()
            return 10

        wall = harness.measure(one_unit, name="w", repeats=5, warmup=1)
        per_item = harness.measure(ten_units, name="p", repeats=5, warmup=1)
        assert per_item.median_ms < wall.median_ms

    def test_returned_sampling(self, harness):
        samples = iter([7.0, 8.0, 9.0])
        stats = harness.measure(
            lambda: next(samples), name="r", repeats=3, warmup=0, sample="returned"
        )
        assert stats.samples_ms == (7.0, 8.0, 9.0)

    def test_bad_repeats(self, harness):
        with pytest.raises(ValueError, match="repeats"):
            harness.measure(lambda: None, name="x", repeats=0)

    def test_interleaved_shares_rounds(self, harness):
        order = []
        stats = harness.measure_interleaved(
            {
                "a": lambda: order.append("a"),
                "b": lambda: order.append("b"),
            },
            repeats=3, warmup=1,
        )
        # warmup round + 3 measured rounds, strictly alternating
        assert order == ["a", "b"] * 4
        assert stats["a"].repeats == stats["b"].repeats == 3


class TestHistory:
    def test_append_history_jsonl(self, harness, tmp_path):
        path = tmp_path / "history.jsonl"
        results = {"x": harness.stats_from_samples("x", [1.0, 2.0])}
        harness.append_history(results, path=path, mode="unit-test")
        harness.append_history(
            results, path=path, gate=[{"name": "x", "status": "ok"}],
            extra={"tag": "second"},
        )
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        first, second = lines
        assert first["mode"] == "unit-test"
        assert "gate" not in first
        assert first["results"]["x"]["median_ms"] == 1.5
        assert set(first["environment"]) >= {"python", "platform"}
        assert second["gate"][0]["status"] == "ok"
        assert second["tag"] == "second"


class TestBaselineAndGate:
    def test_baseline_roundtrip(self, harness, tmp_path):
        path = tmp_path / "baseline.json"
        assert harness.load_baseline(path) is None
        results = {"x": harness.stats_from_samples("x", [2.0, 4.0, 6.0])}
        written = harness.write_baseline(results, path=path, tolerance_pct=15.0)
        loaded = harness.load_baseline(path)
        assert loaded["medians_ms"] == {"x": 4.0}
        assert loaded["tolerance_pct"] == 15.0
        assert loaded == json.loads(json.dumps(written, default=str))

    def _baseline(self, medians, tolerance=20.0):
        return {"tolerance_pct": tolerance, "medians_ms": medians}

    def test_within_tolerance_is_ok(self, harness):
        results = {"x": harness.stats_from_samples("x", [11.0])}
        [finding] = harness.check_regressions(results, self._baseline({"x": 10.0}))
        assert finding["status"] == "ok"
        assert finding["delta_pct"] == pytest.approx(10.0)

    def test_beyond_tolerance_regresses(self, harness):
        results = {"x": harness.stats_from_samples("x", [13.0])}
        [finding] = harness.check_regressions(results, self._baseline({"x": 10.0}))
        assert finding["status"] == "regressed"
        assert finding["delta_pct"] == pytest.approx(30.0)

    def test_faster_is_ok(self, harness):
        results = {"x": harness.stats_from_samples("x", [1.0])}
        [finding] = harness.check_regressions(results, self._baseline({"x": 10.0}))
        assert finding["status"] == "ok"

    def test_unknown_benchmark_is_new(self, harness):
        results = {"y": harness.stats_from_samples("y", [1.0])}
        [finding] = harness.check_regressions(results, self._baseline({"x": 10.0}))
        assert finding["status"] == "new"
        assert finding["baseline_ms"] is None

    def test_no_baseline_all_new(self, harness):
        results = {"x": harness.stats_from_samples("x", [1.0])}
        [finding] = harness.check_regressions(results, None)
        assert finding["status"] == "new"

    def test_explicit_tolerance_overrides_baseline(self, harness):
        results = {"x": harness.stats_from_samples("x", [11.0])}
        [finding] = harness.check_regressions(
            results, self._baseline({"x": 10.0}, tolerance=50.0), tolerance_pct=5.0
        )
        assert finding["status"] == "regressed"


class TestTrendGate:
    def _history(self, medians):
        """One smoke-mode history record per median value for benchmark x."""
        return [
            {"mode": "smoke", "results": {"x": {"median_ms": m}}}
            for m in medians
        ]

    def test_load_history_filters_mode_and_skips_garbage(self, harness, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"mode": "smoke", "results": {}}) + "\n"
            "not json at all\n"
            + json.dumps({"mode": "obs_baseline", "results": {}}) + "\n"
            "\n"
            + json.dumps({"mode": "smoke", "results": {"x": {"median_ms": 1.0}}})
            + "\n",
            encoding="utf-8",
        )
        records = harness.load_history(path, mode="smoke")
        assert len(records) == 2
        assert records[1]["results"]["x"]["median_ms"] == 1.0
        assert len(harness.load_history(path, mode=None)) == 3

    def test_load_history_missing_file_is_empty(self, harness, tmp_path):
        assert harness.load_history(tmp_path / "absent.jsonl") == []

    def test_trend_is_median_of_window(self, harness):
        # last-5 window over medians [10, 10, 10, 10, 100]: trend = 10,
        # so a 10.5 ms run is within the default tolerance even though
        # one historical run was wildly noisy.
        results = {"x": harness.stats_from_samples("x", [10.5])}
        history = self._history([10.0, 10.0, 10.0, 10.0, 100.0])
        [finding] = harness.check_trend(results, history, window=5)
        assert finding["status"] == "ok"
        assert finding["trend_ms"] == 10.0
        assert finding["window"] == 5

    def test_regression_beyond_tolerance(self, harness):
        results = {"x": harness.stats_from_samples("x", [20.0])}
        [finding] = harness.check_trend(
            results, self._history([10.0, 10.0, 10.0]), window=5,
            tolerance_pct=25.0,
        )
        assert finding["status"] == "regressed"
        assert finding["delta_pct"] == pytest.approx(100.0)

    def test_window_limits_lookback(self, harness):
        # Old slow runs fall outside the window: trend over the last 2
        # medians [1, 1] flags a 2 ms run that the full history would not.
        results = {"x": harness.stats_from_samples("x", [2.0])}
        history = self._history([50.0, 50.0, 1.0, 1.0])
        [finding] = harness.check_trend(results, history, window=2)
        assert finding["status"] == "regressed"
        assert finding["trend_ms"] == 1.0

    def test_fewer_than_two_priors_is_new(self, harness):
        results = {"x": harness.stats_from_samples("x", [5.0])}
        [finding] = harness.check_trend(results, self._history([10.0]), window=5)
        assert finding["status"] == "new"
        assert finding["trend_ms"] is None and finding["window"] == 1

    def test_benchmark_absent_from_history_is_new(self, harness):
        results = {"y": harness.stats_from_samples("y", [5.0])}
        [finding] = harness.check_trend(
            results, self._history([10.0, 10.0, 10.0]), window=5
        )
        assert finding["status"] == "new" and finding["window"] == 0


class TestAttribution:
    def test_profile_stages_collects_span_totals(self, harness):
        from repro import obs

        def workload():
            with obs.span("partition"):
                with obs.span("select"):
                    pass

        assert obs.get_collector() is None
        profile = harness.profile_stages(workload)
        assert set(profile) == {"partition", "select"}
        assert all(ms >= 0.0 for ms in profile.values())
        # The profiling pass leaves global tracing the way it found it.
        assert obs.get_collector() is None

    def test_profile_stages_restores_prior_collector(self, harness):
        from repro import obs

        mine = obs.enable_tracing()
        try:
            harness.profile_stages(lambda: None)
            assert obs.get_collector() is mine
        finally:
            obs.disable_tracing()

    def test_attribution_diffs_against_last_profiled_run(self, harness):
        history = [
            {"stage_profile": {"x": {"partition": 5.0, "select": 1.0}}},
            {"results": {}},  # runs without profiles are skipped
        ]
        rows = harness.attribute_trend_regression(
            "x", {"partition": 9.0, "select": 1.0, "realize": 0.5}, history
        )
        assert [row["stage"] for row in rows] == [
            "partition", "realize", "select"
        ]  # sorted by |delta|, biggest contributor first
        assert rows[0]["delta_ms"] == pytest.approx(4.0)
        assert rows[1]["then_ms"] == 0.0  # stage new in this run

    def test_attribution_without_prior_profile_is_empty(self, harness):
        assert harness.attribute_trend_regression("x", {"a": 1.0}, []) == []
        assert harness.attribute_trend_regression(
            "x", {"a": 1.0}, [{"stage_profile": {"y": {"a": 1.0}}}]
        ) == []

    def test_main_records_stage_profiles_with_trend_gate(
        self, harness, tmp_path, monkeypatch, capsys
    ):
        from repro import obs

        def fake_suite(**kwargs):
            def workload():
                with obs.span("partition"):
                    pass
                return 1
            return {"smoke.x_ms": workload}

        monkeypatch.setattr(harness, "smoke_suite", fake_suite)
        history = tmp_path / "history.jsonl"
        common = [
            "--repeats", "1", "--warmup", "0",
            "--history", str(history),
            "--baseline", str(tmp_path / "baseline.json"),
        ]
        assert harness.main(["--trend-window", "3", *common]) == 0
        record = json.loads(history.read_text().splitlines()[-1])
        assert "partition" in record["stage_profile"]["smoke.x_ms"]
        # Without the trend gate, no profiling pass runs or is recorded.
        assert harness.main(common) == 0
        record = json.loads(history.read_text().splitlines()[-1])
        assert "stage_profile" not in record


class TestSuites:
    def test_figures_suite_covers_every_figure_workload(self, harness):
        """Every per-figure runner is wrapped, and each workload really
        runs end to end at the miniature sizes, reporting its work units."""
        suite = harness.figures_suite(training=25)
        assert set(suite) == {
            "figures.fig06_case_study_per_k_ms",
            "figures.fig08_time_of_day_per_trip_ms",
            "figures.fig09_landmark_usage_per_trip_ms",
            "figures.fig10a_feature_weight_per_cell_ms",
            "figures.fig10b_partition_size_per_cell_ms",
            "figures.fig11_user_study_per_summary_ms",
            "figures.fig12_efficiency_per_trip_ms",
        }
        for name, fn in suite.items():
            units = fn()
            assert isinstance(units, int) and units > 0, name

    def test_main_tags_history_with_the_selected_suites(
        self, harness, tmp_path, monkeypatch
    ):
        """--smoke / --figures select suites and stamp the history mode,
        so the trend gate never compares one suite against the other."""

        def fake_suite(tag):
            return lambda **kwargs: {f"{tag}.x_ms": lambda: 1}

        monkeypatch.setattr(harness, "smoke_suite", fake_suite("smoke"))
        monkeypatch.setattr(harness, "figures_suite", fake_suite("figures"))
        history = tmp_path / "history.jsonl"
        common = [
            "--repeats", "1", "--warmup", "0",
            "--history", str(history),
            "--baseline", str(tmp_path / "baseline.json"),
        ]
        assert harness.main(common) == 0  # default: smoke
        assert harness.main(["--figures", *common]) == 0
        assert harness.main(["--smoke", "--figures", *common]) == 0

        records = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert [r["mode"] for r in records] == [
            "smoke", "figures", "smoke+figures",
        ]
        assert set(records[0]["results"]) == {"smoke.x_ms"}
        assert set(records[1]["results"]) == {"figures.x_ms"}
        assert set(records[2]["results"]) == {"smoke.x_ms", "figures.x_ms"}
        # The trend gate reads back only the matching mode.
        assert len(harness.load_history(history, mode="figures")) == 1
