"""Tests for tokenizer, TF-IDF, k-means, and the inverted index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.textproc import (
    InvertedIndex,
    TfidfVectorizer,
    cosine_similarity_matrix,
    kmeans,
    tokenize,
    tokenize_filtered,
    top_terms,
)

DOCS = [
    "The car started from the Daoxiang Community to the Haidian Hospital "
    "with two staying points.",
    "Then it moved through a highway with the speed of 80 km/h.",
    "The car moved through a feeder road with conducting one U-turn.",
    "The car started from the Haidian Hospital to the Suzhou Station smoothly.",
]


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("The Car MOVED") == ["the", "car", "moved"]

    def test_hyphenated_preserved(self):
        assert "u-turn" in tokenize("one U-turn at Zhichun Road")

    def test_filtered_removes_stopwords_and_numbers(self):
        tokens = tokenize_filtered("the car moved with 2 staying points")
        assert "the" not in tokens
        assert "2" not in tokens
        assert "staying" in tokens

    def test_empty(self):
        assert tokenize("") == []


class TestTfidf:
    def test_fit_requires_documents(self):
        with pytest.raises(ConfigError):
            TfidfVectorizer().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ConfigError):
            TfidfVectorizer().transform(DOCS)

    def test_shapes(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(DOCS)
        assert matrix.shape == (4, len(vec.vocabulary))

    def test_rows_unit_norm(self):
        matrix = TfidfVectorizer().fit_transform(DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_similar_documents_closer(self):
        matrix = TfidfVectorizer().fit_transform(DOCS)
        sims = cosine_similarity_matrix(matrix)
        # Doc 0 and 3 share 'daoxiang/haidian hospital' vocabulary; doc 0
        # and 1 share almost nothing.
        assert sims[0, 3] > sims[0, 1]

    def test_min_df_prunes_rare_terms(self):
        loose = TfidfVectorizer(min_df=1).fit(DOCS)
        strict = TfidfVectorizer(min_df=2).fit(DOCS)
        assert len(strict.vocabulary) < len(loose.vocabulary)

    def test_unknown_terms_ignored_at_transform(self):
        vec = TfidfVectorizer().fit(DOCS[:2])
        out = vec.transform(["completely unrelated xylophone zebra"])
        assert np.allclose(out, 0.0)


class TestKMeans:
    def test_invalid_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            kmeans(np.zeros((0, 2)), 1, rng)
        with pytest.raises(ConfigError):
            kmeans(np.zeros((3, 2)), 4, rng)
        with pytest.raises(ConfigError):
            kmeans(np.zeros(3), 1, rng)

    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(1)
        a = rng.normal((0, 0), 0.1, size=(30, 2))
        b = rng.normal((10, 10), 0.1, size=(30, 2))
        result = kmeans(np.vstack([a, b]), 2, rng)
        labels_a = set(result.labels[:30].tolist())
        labels_b = set(result.labels[30:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_k_clusters_always_nonempty(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, size=(20, 3))
        result = kmeans(data, 5, rng)
        assert set(result.labels.tolist()) == set(range(5))

    def test_k_equals_n(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, size=(6, 2))
        result = kmeans(data, 6, rng)
        assert sorted(set(result.labels.tolist())) == list(range(6))
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_inertia_nonincreasing_in_k(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, size=(25, 2))
        inertias = []
        for k in (1, 3, 6):
            best = min(
                kmeans(data, k, np.random.default_rng(seed + rep)).inertia
                for rep in range(3)
            )
            inertias.append(best)
        assert inertias[0] >= inertias[1] - 1e-9
        assert inertias[1] >= inertias[2] - 1e-9

    def test_top_terms(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(DOCS)
        rng = np.random.default_rng(4)
        result = kmeans(matrix, 2, rng)
        terms = top_terms(result.centroids[0], vec.vocabulary, n=3)
        assert 1 <= len(terms) <= 3


class TestInvertedIndex:
    def make(self):
        index = InvertedIndex()
        for i, doc in enumerate(DOCS):
            index.add(f"d{i}", doc)
        return index

    def test_document_count(self):
        assert self.make().document_count == 4

    def test_boolean_lookup(self):
        index = self.make()
        assert index.documents_with("highway") == {"d1"}
        assert index.documents_with("hospital") == {"d0", "d3"}

    def test_search_all_is_conjunctive(self):
        index = self.make()
        assert index.search_all("haidian hospital smoothly") == {"d3"}
        assert index.search_all("highway u-turn") == set()

    def test_search_ranked_orders_by_relevance(self):
        index = self.make()
        ranked = index.search_ranked("u-turn")
        assert ranked[0][0] == "d2"

    def test_search_ranked_limit(self):
        index = self.make()
        assert len(index.search_ranked("car", limit=2)) <= 2
        with pytest.raises(ConfigError):
            index.search_ranked("car", limit=0)

    def test_remove(self):
        index = self.make()
        index.remove("d1")
        assert index.document_count == 3
        assert index.documents_with("highway") == set()
        index.remove("d1")  # idempotent

    def test_re_add_replaces(self):
        index = self.make()
        index.add("d1", "entirely new content about parks")
        assert index.documents_with("highway") == set()
        assert "d1" in index.documents_with("parks")

    def test_empty_query(self):
        index = self.make()
        assert index.search_all("") == set()
        assert index.search_ranked("the of and") == []
