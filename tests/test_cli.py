"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import write_trajectory_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 7
        assert args.hour == 8.5

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig9"])
        assert args.figure == "fig9"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_resilience_flag_defaults(self):
        args = build_parser().parse_args(["summarize", "x.csv"])
        assert args.sanitize is False
        assert args.strict is False
        assert args.max_retries == 1
        assert args.deadline is None

    def test_resilience_flags_parse(self):
        args = build_parser().parse_args([
            "summarize", "x.csv", "--sanitize", "--strict",
            "--max-retries", "3", "--deadline", "2.5",
        ])
        assert args.sanitize and args.strict
        assert args.max_retries == 3
        assert args.deadline == 2.5


class TestCommands:
    def test_demo_prints_summaries(self, capsys):
        code = main(["--training", "40", "demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k = 1:" in out and "k = 3:" in out
        assert "The car started from" in out

    def test_summarize_csv(self, tmp_path, capsys):
        # Produce a CSV from the same seed the CLI will rebuild.
        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, path)
        code = main(["--training", "40", "summarize", str(path), "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "The car started from" in out

    def test_train_then_summarize_with_model(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["--training", "40", "train", "--out", str(model_path)]) == 0
        assert model_path.exists()
        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=11 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        capsys.readouterr()
        code = main(["summarize", str(csv_path), "--model", str(model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "The car started from" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,trajectory\n")
        code = main(["--training", "40", "summarize", str(bad)])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err
        assert "Traceback" not in err

    def test_unsummarizable_input_is_quarantined(self, tmp_path, capsys):
        # A trajectory far outside the scenario map cannot be calibrated
        # even by the geometric fallback; the batch layer quarantines it
        # and the CLI turns that into a one-line diagnostic.
        from repro.trajectory import RawTrajectory, TrajectoryPoint

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        projector = scenario.network.projector
        off_map = RawTrajectory(
            [
                TrajectoryPoint(
                    projector.to_point(90_000.0 + i * 50.0, 90_000.0), i * 5.0
                )
                for i in range(20)
            ],
            "offmap",
        )
        path = tmp_path / "offmap.csv"
        write_trajectory_csv(off_map, path)
        code = main(["--training", "40", "summarize", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err and "quarantined" in err
        assert "Traceback" not in err

    def test_strict_flag_raises_without_quarantine(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("91.5,116.3,100\n")
        code = main(["--training", "40", "summarize", str(bad), "--strict"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err and "quarantined" not in err


class TestObservabilityFlags:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        import json

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        metrics_path = tmp_path / "m.json"
        capsys.readouterr()

        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--trace", "--metrics-out", str(metrics_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "The car started from" in captured.out

        # The trace dump lands on stderr as JSON with all five stage spans.
        trace = json.loads(captured.err[captured.err.index("{"):])
        names = {span["name"] for span in trace["spans"]}
        for stage in ("calibrate", "extract_features", "partition", "select", "realize"):
            assert stage in names

        # The metrics snapshot holds a healthy number of distinct series.
        snapshot = json.loads(metrics_path.read_text())
        assert len(snapshot) >= 8
        assert snapshot["summarize.calls"]["value"] == 1.0

    def test_trace_out_writes_file(self, tmp_path, capsys):
        import json

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        trace_path = tmp_path / "trace.json"
        capsys.readouterr()

        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--trace-out", str(trace_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        names = {s["name"] for s in json.loads(trace_path.read_text())["spans"]}
        assert "summarize" in names
        assert "{" not in captured.err  # dump went to the file, not stderr

    def test_obs_disabled_after_run(self, tmp_path, capsys):
        from repro import obs

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        assert main(["--training", "40", "summarize", str(csv_path), "--trace"]) == 0
        capsys.readouterr()
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()

    def test_verbose_flag_parses(self):
        args = build_parser().parse_args(["summarize", "x.csv", "-vv"])
        assert args.verbose == 2
        args = build_parser().parse_args(["demo"])
        assert args.verbose == 0 and args.trace is False

    def test_exporter_flags_parse(self):
        args = build_parser().parse_args([
            "summarize", "x.csv",
            "--trace-chrome", "t.json", "--metrics-prom", "m.prom",
            "--events-out", "e.jsonl", "--report-out", "run", "--progress",
        ])
        assert args.trace_chrome == "t.json"
        assert args.metrics_prom == "m.prom"
        assert args.events_out == "e.jsonl"
        assert args.report_out == "run"
        assert args.progress is True


class TestExporters:
    @pytest.fixture
    def csv_path(self, tmp_path):
        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, path)
        return path

    def test_chrome_trace_and_prometheus_files(self, csv_path, tmp_path, capsys):
        import json

        chrome_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--trace-chrome", str(chrome_path), "--metrics-prom", str(prom_path),
        ])
        captured = capsys.readouterr()
        assert code == 0
        trace = json.loads(chrome_path.read_text())
        assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "summarize" in names
        assert "{" not in captured.err  # no raw span dump when only --trace-chrome
        prom = prom_path.read_text()
        assert "summarize_calls_total 1" in prom
        assert 'le="+Inf"' in prom

    def test_events_out_jsonl(self, csv_path, tmp_path, capsys):
        import json

        events_path = tmp_path / "events.jsonl"
        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--events-out", str(events_path),
        ])
        capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert events
        kinds = {e["kind"] for e in events}
        assert {"batch_start", "stage_start", "stage_end", "batch_end"} <= kinds
        from repro import obs

        assert not obs.events_enabled()  # cleaned up after the run

    def test_report_out_writes_pair(self, csv_path, tmp_path, capsys):
        import json

        prefix = tmp_path / "run-report"
        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--report-out", str(prefix),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "The car started from" in captured.out
        report = json.loads((tmp_path / "run-report.json").read_text())
        assert report["quality"]["summaries"] == 1
        assert report["metrics"], "report embeds the metrics snapshot"
        md = (tmp_path / "run-report.md").read_text()
        assert md.startswith("# STMaker run report")

    def test_progress_flag_prints_to_stderr(self, csv_path, capsys):
        code = main([
            "--training", "40", "summarize", str(csv_path), "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "progress:" in captured.err
        assert "items/s" in captured.err


class TestOpsSurface:
    def test_ops_flags_parse(self):
        args = build_parser().parse_args([
            "summarize", "x.csv", "--ops-port", "0", "--flight-dir", "fl",
        ])
        assert args.ops_port == 0
        assert args.flight_dir == "fl"
        args = build_parser().parse_args(["demo"])
        assert args.ops_port is None and args.flight_dir is None

    def test_ops_serve_parser_defaults(self):
        args = build_parser().parse_args(["ops-serve"])
        assert args.port == 0
        assert args.trips == 5
        assert args.duration is None
        assert args.interval == 1.0

    def test_summarize_with_ops_port_serves_and_tears_down(
        self, tmp_path, capsys, monkeypatch
    ):
        import urllib.request

        from repro import obs
        from repro.cli import _cmd_summarize

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        scraped = {}
        original = _cmd_summarize

        def probing(args):
            # The server is up before the command body runs; scrape now.
            server = obs.active_ops_server()
            assert server is not None
            scraped["healthz"] = urllib.request.urlopen(
                server.url + "/healthz", timeout=5.0
            ).status
            code = original(args)
            # mark_ready() ran after the model build inside the command.
            scraped["readyz"] = urllib.request.urlopen(
                server.url + "/readyz", timeout=5.0
            ).status
            body = urllib.request.urlopen(
                server.url + "/metrics", timeout=5.0
            ).read().decode("utf-8")
            scraped["families"] = obs.parse_prometheus(body)
            return code

        monkeypatch.setattr("repro.cli._cmd_summarize", probing)
        # parser binds func=_cmd_summarize at build time, so go through a
        # rebuilt parser rather than main()'s default wiring
        from repro.cli import main as cli_main

        code = cli_main([
            "--training", "40", "summarize", str(csv_path), "--ops-port", "0",
        ])
        capsys.readouterr()
        assert code == 0
        assert scraped["healthz"] == 200
        assert scraped["readyz"] == 200
        assert "summarize_calls_total" in scraped["families"]
        assert obs.active_ops_server() is None, "server torn down after the run"

    def test_ops_serve_loop_runs_batches(self, capsys):
        from repro import obs
        from repro.cli import main as cli_main

        code = cli_main([
            "--training", "40", "ops-serve",
            "--duration", "0.1", "--interval", "0", "--trips", "1",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "ops surface listening on" in captured.err
        assert "served" in captured.err and "batch(es)" in captured.err
        assert obs.active_ops_server() is None
        assert not obs.metrics_enabled() and not obs.events_enabled()

    def test_flight_dir_dumps_on_quarantine(self, tmp_path, capsys):
        from repro.trajectory import RawTrajectory, TrajectoryPoint

        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        projector = scenario.network.projector
        off_map = RawTrajectory(
            [
                TrajectoryPoint(
                    projector.to_point(90_000.0 + i * 50.0, 90_000.0), i * 5.0
                )
                for i in range(20)
            ],
            "offmap",
        )
        csv_path = tmp_path / "offmap.csv"
        write_trajectory_csv(off_map, csv_path)
        flight_dir = tmp_path / "flight"
        code = main([
            "--training", "40", "summarize", str(csv_path),
            "--flight-dir", str(flight_dir),
        ])
        capsys.readouterr()
        assert code == 1, "the quarantine still fails the command"
        dumps = list(flight_dir.glob("flight-*.jsonl"))
        assert dumps, "the quarantine left a flight-recorder dump"
        import json

        records = [json.loads(line) for line in dumps[0].read_text().splitlines()]
        assert records[0]["record"] == "flight"
        kinds = {r["kind"] for r in records if r["record"] == "event"}
        assert "quarantine" in kinds
        from repro import obs

        assert obs.flight_recorder() is None, "recorder disabled after the run"


class TestReportCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.trips == 20
        assert args.out == "run-report"
        assert args.progress is False

    def test_report_command_end_to_end(self, tmp_path, capsys):
        import json

        prefix = tmp_path / "rr"
        code = main([
            "--training", "40", "report", "--trips", "3",
            "--out", str(prefix), "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "# STMaker run report" in captured.out
        assert "progress:" in captured.err
        report = json.loads((tmp_path / "rr.json").read_text())
        assert report["quality"]["summaries"] == 3
        assert report["stages"], "report command runs with tracing enabled"
        stage_names = {s["name"] for s in report["stages"]}
        assert "summarize_many" in stage_names
        from repro import obs

        assert not obs.metrics_enabled() and not obs.tracing_enabled()
