"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.simulate import CityScenario, ScenarioConfig
from repro.trajectory import write_trajectory_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 7
        assert args.hour == 8.5

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig9"])
        assert args.figure == "fig9"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_demo_prints_summaries(self, capsys):
        code = main(["--training", "40", "demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k = 1:" in out and "k = 3:" in out
        assert "The car started from" in out

    def test_summarize_csv(self, tmp_path, capsys):
        # Produce a CSV from the same seed the CLI will rebuild.
        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=10 * 3600.0)
        path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, path)
        code = main(["--training", "40", "summarize", str(path), "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "The car started from" in out

    def test_train_then_summarize_with_model(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(["--training", "40", "train", "--out", str(model_path)]) == 0
        assert model_path.exists()
        scenario = CityScenario.build(ScenarioConfig(seed=7, n_training_trips=40))
        trip = scenario.simulate_trip(depart_time=11 * 3600.0)
        csv_path = tmp_path / "trip.csv"
        write_trajectory_csv(trip.raw, csv_path)
        capsys.readouterr()
        code = main(["summarize", str(csv_path), "--model", str(model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "The car started from" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,trajectory\n")
        code = main(["--training", "40", "summarize", str(bad)])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err
