"""Integration tests for FeatureSelector internals on the scenario."""

import numpy as np
import pytest

from repro.core import SummarizerConfig
from repro.core.types import PartitionSpan
from repro.features import (
    GRADE_OF_ROAD,
    ROAD_WIDTH,
    SPEED,
    STAY_POINTS,
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    FeatureRegistry,
    default_registry,
)


@pytest.fixture(scope="module")
def assessed(scenario):
    """A calibrated trip with its whole-trip assessment."""
    rng = np.random.default_rng(71)
    trip = scenario.simulate_trips(1, depart_time=8 * 3600.0, rng=rng)[0]
    symbolic = scenario.stmaker.calibrator.calibrate(trip.raw)
    features = scenario.stmaker.pipeline.extract(trip.raw, symbolic)
    span = PartitionSpan(0, symbolic.segment_count - 1)
    assessment = scenario.stmaker.selector.assess(symbolic, features, span)
    return trip, symbolic, features, assessment


class TestAssessmentStructure:
    def test_one_assessment_per_feature(self, scenario, assessed):
        _, _, _, assessment = assessed
        keys = [a.key for a in assessment.assessments]
        assert keys == scenario.registry.keys()

    def test_rates_non_negative(self, assessed):
        _, _, _, assessment = assessed
        assert all(a.irregular_rate >= 0.0 for a in assessment.assessments)

    def test_selection_subset(self, scenario, assessed):
        _, _, _, assessment = assessed
        threshold = scenario.stmaker.config.irregular_threshold
        selected_keys = {a.key for a in assessment.selected}
        for a in assessment.assessments:
            assert (a.key in selected_keys) == (a.irregular_rate >= threshold)

    def test_grade_extras_present(self, assessed):
        _, _, _, assessment = assessed
        grade = next(a for a in assessment.assessments if a.key == GRADE_OF_ROAD)
        assert "observed_road_name" in grade.extras
        assert "observed_grade" in grade.extras

    def test_speed_representative_reasonable(self, assessed):
        _, _, _, assessment = assessed
        speed = next(a for a in assessment.assessments if a.key == SPEED)
        assert 3.0 < speed.observed < 120.0
        assert 3.0 < speed.regular < 120.0

    def test_stay_counts_are_totals(self, assessed, scenario):
        _, _, features, assessment = assessed
        stay = next(a for a in assessment.assessments if a.key == STAY_POINTS)
        expected = sum(f.values[STAY_POINTS] for f in features)
        assert stay.observed == pytest.approx(expected)


class TestWeightsInSelection:
    def test_zero_weight_kills_selection(self, scenario, assessed):
        trip, symbolic, features, _ = assessed
        muted = scenario.summarizer_with(
            SummarizerConfig(feature_weights={SPEED: 0.0, ROAD_WIDTH: 0.0})
        )
        span = PartitionSpan(0, symbolic.segment_count - 1)
        assessment = muted.selector.assess(symbolic, features, span)
        for a in assessment.assessments:
            if a.key in (SPEED, ROAD_WIDTH):
                assert a.irregular_rate == 0.0
                assert a not in assessment.selected


class TestCustomRoutingHopValue:
    def test_hop_value_hook_feeds_regular_sequence(self, scenario):
        """A custom routing feature with hop_value gets a real comparison."""
        rng = np.random.default_rng(72)
        trip = scenario.simulate_trips(1, rng=rng)[0]

        definitions = list(default_registry())
        definitions.append(
            FeatureDefinition(
                "free_flow", "FF", FeatureKind.ROUTING, FeatureDtype.NUMERIC,
                extractor=lambda ctx: ctx.routing.grade.free_flow_speed_kmh,
                hop_value=lambda hop: hop.grade.free_flow_speed_kmh,
            )
        )
        registry = FeatureRegistry(definitions)
        from repro.core import STMaker

        stmaker = STMaker(
            scenario.network, scenario.landmarks,
            scenario.stmaker.transfers, scenario.stmaker.feature_map,
            registry=registry,
        )
        summary = stmaker.summarize(trip.raw, k=1)
        ff = next(
            a for p in summary.partitions for a in p.assessments
            if a.key == "free_flow"
        )
        # Regular comes from the hop_value hook (a plausible km/h figure),
        # not the 0.0 placeholder for hook-less customs.
        assert ff.regular > 0.0

    def test_custom_routing_without_hook_never_selected(self, scenario):
        rng = np.random.default_rng(73)
        trip = scenario.simulate_trips(1, rng=rng)[0]
        definitions = list(default_registry())
        definitions.append(
            FeatureDefinition(
                "mystery", "M", FeatureKind.ROUTING, FeatureDtype.NUMERIC,
                extractor=lambda ctx: 42.0,
            )
        )
        registry = FeatureRegistry(definitions)
        from repro.core import STMaker

        stmaker = STMaker(
            scenario.network, scenario.landmarks,
            scenario.stmaker.transfers, scenario.stmaker.feature_map,
            registry=registry,
        )
        summary = stmaker.summarize(trip.raw, k=1)
        mystery = next(
            a for p in summary.partitions for a in p.assessments
            if a.key == "mystery"
        )
        assert mystery.irregular_rate == 0.0
