"""Tests for road-network JSON serialization."""

import pytest

from repro.exceptions import RoadNetworkError
from repro.roadnet import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestRoundtrip:
    def test_dict_roundtrip_preserves_structure(self, micro_network):
        rebuilt = network_from_dict(network_to_dict(micro_network))
        assert rebuilt.node_count == micro_network.node_count
        assert rebuilt.edge_count == micro_network.edge_count
        for edge in micro_network.edges():
            twin = rebuilt.edge(edge.edge_id)
            assert (twin.u, twin.v) == (edge.u, edge.v)
            assert twin.grade == edge.grade
            assert twin.width_m == edge.width_m
            assert twin.direction == edge.direction
            assert twin.name == edge.name
            assert twin.length_m == pytest.approx(edge.length_m, rel=1e-9)

    def test_file_roundtrip(self, micro_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_network, path)
        rebuilt = load_network(path)
        assert rebuilt.node_count == micro_network.node_count
        assert rebuilt.edge_count == micro_network.edge_count

    def test_projector_origin_preserved(self, micro_network, tmp_path):
        path = tmp_path / "net.json"
        save_network(micro_network, path)
        rebuilt = load_network(path)
        assert rebuilt.projector.origin == micro_network.projector.origin

    def test_city_roundtrip(self, city, tmp_path):
        path = tmp_path / "city.json"
        save_network(city, path)
        rebuilt = load_network(path)
        assert rebuilt.edge_count == city.edge_count
        # Spot-check routing still works on the rebuilt network.
        ids = rebuilt.node_ids()
        from repro.roadnet import dijkstra

        cost, _ = dijkstra(rebuilt, ids[0], ids[-1])
        assert cost > 0.0

    def test_unsupported_version_rejected(self, micro_network):
        data = network_to_dict(micro_network)
        data["version"] = 999
        with pytest.raises(RoadNetworkError):
            network_from_dict(data)
