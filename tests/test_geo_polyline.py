"""Tests for polyline length, interpolation, resampling and projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo import (
    GeoPoint,
    LocalProjector,
    cumulative_lengths_m,
    interpolate_along,
    nearest_point_on_polyline,
    polyline_length_m,
    resample_polyline,
)

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


@pytest.fixture(scope="module")
def l_shape(projector):
    """An L-shaped polyline: 1000 m east then 500 m north."""
    return [
        projector.to_point(0.0, 0.0),
        projector.to_point(1000.0, 0.0),
        projector.to_point(1000.0, 500.0),
    ]


class TestPolylineLength:
    def test_l_shape_length(self, l_shape, projector):
        assert polyline_length_m(l_shape, projector) == pytest.approx(1500.0, rel=1e-6)

    def test_empty_and_single(self, projector):
        assert polyline_length_m([], projector) == 0.0
        assert polyline_length_m([CENTER], projector) == 0.0

    def test_cumulative(self, l_shape, projector):
        cum = cumulative_lengths_m(l_shape, projector)
        assert cum[0] == 0.0
        assert cum[1] == pytest.approx(1000.0, rel=1e-6)
        assert cum[2] == pytest.approx(1500.0, rel=1e-6)

    def test_cumulative_empty(self, projector):
        assert cumulative_lengths_m([], projector) == []


class TestInterpolateAlong:
    def test_at_zero_returns_start(self, l_shape, projector):
        assert interpolate_along(l_shape, 0.0, projector) == l_shape[0]

    def test_midpoint_of_first_leg(self, l_shape, projector):
        p = interpolate_along(l_shape, 500.0, projector)
        x, y = projector.to_xy(p)
        assert x == pytest.approx(500.0, abs=0.01)
        assert y == pytest.approx(0.0, abs=0.01)

    def test_into_second_leg(self, l_shape, projector):
        p = interpolate_along(l_shape, 1250.0, projector)
        x, y = projector.to_xy(p)
        assert x == pytest.approx(1000.0, abs=0.01)
        assert y == pytest.approx(250.0, abs=0.01)

    def test_overshoot_clamps_to_end(self, l_shape, projector):
        assert interpolate_along(l_shape, 99_999.0, projector) == l_shape[-1]

    def test_negative_clamps_to_start(self, l_shape, projector):
        assert interpolate_along(l_shape, -10.0, projector) == l_shape[0]

    def test_empty_polyline_rejected(self, projector):
        with pytest.raises(GeometryError):
            interpolate_along([], 10.0, projector)

    @given(st.floats(min_value=0.0, max_value=1500.0))
    def test_interpolated_point_lies_on_polyline(self, distance):
        projector = LocalProjector(CENTER)
        shape = [
            projector.to_point(0.0, 0.0),
            projector.to_point(1000.0, 0.0),
            projector.to_point(1000.0, 500.0),
        ]
        p = interpolate_along(shape, distance, projector)
        perp, offset = nearest_point_on_polyline(p, shape, projector)
        assert perp == pytest.approx(0.0, abs=0.01)
        assert offset == pytest.approx(distance, abs=0.5)


class TestResample:
    def test_spacing_respected(self, l_shape, projector):
        pts = resample_polyline(l_shape, 100.0, projector)
        # 1500 m at 100 m spacing: interior points at 100..1400 plus both ends.
        assert len(pts) == 16
        assert pts[0] == l_shape[0]
        assert pts[-1] == l_shape[-1]

    def test_consecutive_gaps_do_not_exceed_spacing(self, l_shape, projector):
        pts = resample_polyline(l_shape, 90.0, projector)
        gaps = [projector.distance_m(a, b) for a, b in zip(pts, pts[1:])]
        assert all(g <= 90.0 + 1e-6 for g in gaps)

    def test_invalid_spacing_rejected(self, l_shape, projector):
        with pytest.raises(GeometryError):
            resample_polyline(l_shape, 0.0, projector)

    def test_short_polyline_passthrough(self, projector):
        assert resample_polyline([CENTER], 10.0, projector) == [CENTER]


class TestNearestPointOnPolyline:
    def test_offset_on_second_leg(self, l_shape, projector):
        p = projector.to_point(1080.0, 250.0)
        perp, offset = nearest_point_on_polyline(p, l_shape, projector)
        assert perp == pytest.approx(80.0, abs=0.1)
        assert offset == pytest.approx(1250.0, abs=0.5)

    def test_single_point_polyline(self, projector):
        p = projector.to_point(30.0, 40.0)
        perp, offset = nearest_point_on_polyline(p, [CENTER], projector)
        assert perp == pytest.approx(50.0, abs=0.1)
        assert offset == 0.0

    def test_empty_rejected(self, projector):
        with pytest.raises(GeometryError):
            nearest_point_on_polyline(CENTER, [], projector)
