"""Tests for HMM map matching and the nearest-edge baseline."""

import numpy as np
import pytest

from repro.exceptions import MapMatchError
from repro.mapmatch import (
    HMMMapMatcher,
    MapMatchConfig,
    NearestEdgeMatcher,
    candidates_for_point,
)
from repro.trajectory import TrajectoryPoint


def drive(projector, xy_times, noise=0.0, rng=None):
    pts = []
    for (x, y), t in xy_times:
        if noise and rng is not None:
            x += float(rng.normal(0, noise))
            y += float(rng.normal(0, noise))
        pts.append(TrajectoryPoint(projector.to_point(x, y), t))
    return pts


def eastbound_row0(projector, n=11, noise=0.0, rng=None):
    """Points along row 0 of the micro network (y = 0), x = 0..1000."""
    return drive(
        projector,
        [((i * 100.0, 0.0), i * 10.0) for i in range(n)],
        noise=noise,
        rng=rng,
    )


class TestCandidates:
    def test_candidates_sorted_and_capped(self, micro_network, projector):
        p = projector.to_point(250.0, 20.0)
        cands = candidates_for_point(micro_network, p, radius_m=600.0, max_candidates=3)
        assert len(cands) == 3
        dists = [c.distance_m for c in cands]
        assert dists == sorted(dists)

    def test_no_candidates_far_away(self, micro_network, projector):
        p = projector.to_point(90_000.0, 0.0)
        assert candidates_for_point(micro_network, p, 60.0, 5) == []

    def test_fraction_measured_from_u(self, micro_network, projector):
        edge = micro_network.edge_between(0, 1)
        p = projector.to_point(125.0, 10.0)
        cands = candidates_for_point(micro_network, p, 60.0, 5)
        target = next(c for c in cands if c.edge_id == edge.edge_id)
        assert target.fraction == pytest.approx(0.25, abs=0.02)


class TestHMMMatcher:
    def test_config_validation(self):
        with pytest.raises(MapMatchError):
            MapMatchConfig(sigma_z_m=0.0)
        with pytest.raises(MapMatchError):
            MapMatchConfig(max_candidates=0)

    def test_empty_input_rejected(self, micro_network):
        with pytest.raises(MapMatchError):
            HMMMapMatcher(micro_network).match([])

    def test_all_points_offroad_rejected(self, micro_network, projector):
        pts = [TrajectoryPoint(projector.to_point(50_000, 50_000), 0.0)]
        with pytest.raises(MapMatchError):
            HMMMapMatcher(micro_network).match(pts)

    def test_clean_straight_match(self, micro_network, projector):
        matcher = HMMMapMatcher(micro_network)
        result = matcher.match(eastbound_row0(projector))
        # Samples at intersections are legitimately ambiguous between the
        # incident edges, so assert on travelled length, not mere presence.
        significant = {
            e.name for e, w in result.edge_traversals(micro_network) if w > 50.0
        }
        assert significant == {"Row 0 Avenue"}
        assert result.breaks == []
        assert len(result.matched) == 11

    def test_edge_traversals_cover_route_length(self, micro_network, projector):
        result = HMMMapMatcher(micro_network).match(eastbound_row0(projector))
        total = sum(w for _, w in result.edge_traversals(micro_network))
        assert total == pytest.approx(1000.0, abs=20.0)

    def test_noisy_match_stays_on_route(self, micro_network, projector):
        rng = np.random.default_rng(0)
        matcher = HMMMapMatcher(micro_network)
        pts = eastbound_row0(projector, noise=8.0, rng=rng)
        result = matcher.match(pts)
        names = {e.name for e in result.edge_sequence(micro_network)}
        assert names == {"Row 0 Avenue"}

    def test_l_shaped_route(self, micro_network, projector):
        # East along row 0 to x=1000 then north along column 2.
        east = [((i * 100.0, 0.0), i * 10.0) for i in range(11)]
        north = [((1000.0, j * 100.0), 100.0 + j * 10.0) for j in range(1, 11)]
        pts = drive(projector, east + north)
        result = HMMMapMatcher(micro_network).match(pts)
        significant = [
            e.name for e, w in result.edge_traversals(micro_network) if w > 50.0
        ]
        assert significant[0] == "Row 0 Avenue"
        assert significant[-1] == "Col 2 Lane"
        assert set(significant) == {"Row 0 Avenue", "Col 2 Lane"}

    def test_continuity_beats_nearest_edge(self, micro_network, projector):
        # A point nudged toward the parallel row must still match row 0
        # because the route continuity dominates: jumping to row 1 and back
        # would require a 1 km detour.
        pts = eastbound_row0(projector)
        nudged = list(pts)
        nudged[5] = TrajectoryPoint(projector.to_point(500.0, 251.0), 50.0)
        result = HMMMapMatcher(
            micro_network, MapMatchConfig(candidate_radius_m=300.0)
        ).match(nudged)
        matched_5 = next(m for m in result.matched if m.point_index == 5)
        edge = micro_network.edge(matched_5.edge_id)
        assert edge.name in ("Row 0 Avenue", "Col 1 Lane")

    def test_offroad_gap_recorded_as_break(self, micro_network, projector):
        pts = eastbound_row0(projector)
        pts[4] = TrajectoryPoint(projector.to_point(400.0, 30_000.0), 40.0)
        result = HMMMapMatcher(micro_network).match(pts)
        assert 4 in result.breaks
        assert len(result.matched) == 10

    def test_matched_points_sorted(self, micro_network, projector):
        result = HMMMapMatcher(micro_network).match(eastbound_row0(projector))
        idx = [m.point_index for m in result.matched]
        assert idx == sorted(idx)


class TestNearestEdgeBaseline:
    def test_matches_straight_route(self, micro_network, projector):
        result = NearestEdgeMatcher(micro_network).match(eastbound_row0(projector))
        significant = {
            e.name for e, w in result.edge_traversals(micro_network) if w > 50.0
        }
        assert significant == {"Row 0 Avenue"}

    def test_empty_rejected(self, micro_network):
        with pytest.raises(MapMatchError):
            NearestEdgeMatcher(micro_network).match([])

    def test_offroad_becomes_break(self, micro_network, projector):
        pts = eastbound_row0(projector)
        pts[2] = TrajectoryPoint(projector.to_point(200.0, 40_000.0), 20.0)
        result = NearestEdgeMatcher(micro_network).match(pts)
        assert result.breaks == [2]
