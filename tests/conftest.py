"""Shared fixtures: projector, hand-built micro network, generated city."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo import GeoPoint, LocalProjector
from repro.roadnet import (
    CityConfig,
    RoadGrade,
    RoadNetwork,
    TrafficDirection,
    generate_city,
)

CITY_CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(autouse=True)
def _isolate_process_globals():
    """Reset process-wide singletons after every test.

    The breaker registry (:func:`repro.serving.get_breaker`), the tracked
    ops server, the status-section registry, and the obs enable/disable
    globals are process-wide by design — which means a test that enables
    one and fails (or just forgets to disable) leaks it into every test
    that runs after it.  This guard makes each test see the pristine
    disabled-by-default world, so suites pass in any order and under
    ``-p no:randomly``-style reshuffles alike.
    """
    yield
    from repro import obs
    from repro.serving import reset_breakers

    reset_breakers()
    obs.stop_ops_server()
    for name in list(obs.status_sections()):
        obs.unregister_status_section(name)
    obs.disable_slo()
    obs.disable_flight_recorder()
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    obs.clear_span_context()
    obs.clear_stage_sink()


@pytest.fixture(scope="session")
def projector() -> LocalProjector:
    return LocalProjector(CITY_CENTER)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def micro_network() -> RoadNetwork:
    """A 3x3 grid network with mixed grades and one one-way street.

    Layout (node ids), spacing 500 m::

        6 - 7 - 8
        |   |   |
        3 - 4 - 5
        |   |   |
        0 - 1 - 2

    Horizontal rows are NATIONAL roads; vertical columns are FEEDER lanes,
    the middle column (1-4-7) one-way northbound.
    """
    projector = LocalProjector(CITY_CENTER)
    network = RoadNetwork(projector)
    for j in range(3):
        for i in range(3):
            network.add_node(projector.to_point(i * 500.0, j * 500.0))
    for j in range(3):  # horizontal edges
        for i in range(2):
            network.add_edge(
                j * 3 + i, j * 3 + i + 1, RoadGrade.NATIONAL, 18.0,
                TrafficDirection.TWO_WAY, f"Row {j} Avenue",
            )
    for i in range(3):  # vertical edges
        direction = TrafficDirection.ONE_WAY if i == 1 else TrafficDirection.TWO_WAY
        for j in range(2):
            network.add_edge(
                j * 3 + i, (j + 1) * 3 + i, RoadGrade.FEEDER, 5.0,
                direction, f"Col {i} Lane",
            )
    return network


@pytest.fixture(scope="session")
def city() -> RoadNetwork:
    """A small generated city shared across the test session."""
    rng = np.random.default_rng(7)
    return generate_city(CityConfig(blocks=10), rng)


@pytest.fixture(scope="session")
def scenario():
    """A fully built scenario (city + landmarks + trained STMaker)."""
    from repro.simulate import CityScenario, ScenarioConfig

    return CityScenario.build(ScenarioConfig(seed=7, n_training_trips=120))
