"""Tests for trajectory CSV/JSON IO and timestamp parsing."""

import pytest

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint
from repro.trajectory import (
    RawTrajectory,
    TrajectoryPoint,
    format_timestamp,
    load_trajectories_json,
    parse_timestamp,
    read_trajectory_csv,
    save_trajectories_json,
    trajectory_from_dict,
    trajectory_to_dict,
    write_trajectory_csv,
)


@pytest.fixture()
def sample_trajectory():
    return RawTrajectory(
        [
            TrajectoryPoint(GeoPoint(39.9383, 116.339), 1383383876.0),
            TrajectoryPoint(GeoPoint(39.9382, 116.337), 1383383882.0),
            TrajectoryPoint(GeoPoint(39.9259, 116.310), 1383384806.0),
        ],
        "paper-table-1",
    )


class TestTimestamps:
    def test_paper_format_roundtrip(self):
        t = parse_timestamp("20131102 09:17:56")
        assert format_timestamp(t) == "20131102 09:17:56"

    def test_numeric_passthrough(self):
        assert parse_timestamp("1234.5") == 1234.5

    def test_invalid_rejected(self):
        with pytest.raises(TrajectoryError):
            parse_timestamp("yesterday at noon")

    def test_ordering_preserved(self):
        early = parse_timestamp("20131102 09:17:56")
        late = parse_timestamp("20131102 09:34:31")
        assert late - early == pytest.approx(995.0)


class TestCsv:
    def test_roundtrip(self, sample_trajectory, tmp_path):
        path = tmp_path / "t.csv"
        write_trajectory_csv(sample_trajectory, path)
        back = read_trajectory_csv(path)
        assert len(back) == 3
        assert back[0].point.lat == pytest.approx(39.9383)
        assert back[0].t == sample_trajectory[0].t

    def test_header_detected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "latitude,longitude,timestamp\n"
            "39.9383,116.339,20131102 09:17:56\n"
            "39.9382,116.337,20131102 09:18:02\n"
        )
        t = read_trajectory_csv(path)
        assert len(t) == 2

    def test_headerless_accepted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "39.9383,116.339,100\n39.9382,116.337,200\n"
        )
        assert len(read_trajectory_csv(path)) == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("39.9,116.3,100\n\n39.8,116.2,200\n")
        assert len(read_trajectory_csv(path)) == 2

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("39.9,116.3\n")
        with pytest.raises(TrajectoryError):
            read_trajectory_csv(path)

    def test_bad_coordinates_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("north,east,100\nalso,bad,200\n")
        with pytest.raises(TrajectoryError):
            read_trajectory_csv(path)

    def test_id_defaults_to_stem(self, sample_trajectory, tmp_path):
        path = tmp_path / "taxi42.csv"
        write_trajectory_csv(sample_trajectory, path)
        assert read_trajectory_csv(path).trajectory_id == "taxi42"


    def test_nan_coordinate_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("nan,116.3,100\n39.9,116.3,200\n")
        with pytest.raises(TrajectoryError, match="bad coordinates"):
            read_trajectory_csv(path)

    def test_out_of_range_latitude_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("200.0,116.3,100\n")
        with pytest.raises(TrajectoryError, match="bad coordinates"):
            read_trajectory_csv(path)

    def test_nonfinite_timestamp_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("39.9,116.3,inf\n")
        with pytest.raises(TrajectoryError, match="non-finite timestamp"):
            read_trajectory_csv(path)


class TestJson:
    def test_dict_roundtrip(self, sample_trajectory):
        back = trajectory_from_dict(trajectory_to_dict(sample_trajectory))
        assert back.trajectory_id == sample_trajectory.trajectory_id
        assert [p.t for p in back] == [p.t for p in sample_trajectory]

    def test_malformed_dict_rejected(self):
        with pytest.raises(TrajectoryError):
            trajectory_from_dict({"points": [{"lat": 1.0}]})

    def test_missing_points_key_rejected(self):
        with pytest.raises(TrajectoryError, match="malformed trajectory dict"):
            trajectory_from_dict({"id": "x"})

    def test_non_numeric_field_rejected(self):
        with pytest.raises(TrajectoryError, match="malformed trajectory dict"):
            trajectory_from_dict(
                {"points": [{"lat": "north", "lon": 116.3, "t": 1.0}]}
            )

    def test_nan_values_rejected(self):
        with pytest.raises(TrajectoryError):
            trajectory_from_dict(
                {"points": [{"lat": float("nan"), "lon": 116.3, "t": 1.0}]}
            )
        with pytest.raises(TrajectoryError, match="non-finite timestamp"):
            trajectory_from_dict(
                {"points": [{"lat": 39.9, "lon": 116.3, "t": float("inf")}]}
            )

    def test_multi_trajectory_file(self, sample_trajectory, tmp_path):
        path = tmp_path / "many.json"
        save_trajectories_json([sample_trajectory, sample_trajectory], path)
        back = load_trajectories_json(path)
        assert len(back) == 2
        assert all(len(t) == 3 for t in back)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("   \n")
        with pytest.raises(TrajectoryError, match="empty trajectory file"):
            load_trajectories_json(path)

    def test_truncated_file_rejected(self, sample_trajectory, tmp_path):
        path = tmp_path / "cut.json"
        save_trajectories_json([sample_trajectory], path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(TrajectoryError, match="truncated or invalid JSON"):
            load_trajectories_json(path)

    def test_non_list_payload_rejected(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text("{}")
        with pytest.raises(TrajectoryError, match="expected a JSON list"):
            load_trajectories_json(path)
