"""Tests for Landmark, LandmarkIndex, and the POI generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigError, GeometryError
from repro.geo import BoundingBox, GeoPoint, LocalProjector
from repro.landmarks import (
    Landmark,
    LandmarkIndex,
    LandmarkKind,
    POICategory,
    POIConfig,
    generate_pois,
)

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


def make_landmarks(projector, coords):
    return [
        Landmark(i, projector.to_point(x, y), f"L{i}", LandmarkKind.TURNING_POINT)
        for i, (x, y) in enumerate(coords)
    ]


class TestLandmark:
    def test_significance_range_enforced(self):
        with pytest.raises(GeometryError):
            Landmark(0, CENTER, "x", LandmarkKind.POI_CLUSTER, significance=1.5)
        with pytest.raises(GeometryError):
            Landmark(0, CENTER, "x", LandmarkKind.POI_CLUSTER, significance=-0.1)

    def test_default_significance_zero(self):
        lm = Landmark(0, CENTER, "x", LandmarkKind.POI_CLUSTER)
        assert lm.significance == 0.0

    def test_significance_mutable(self):
        lm = Landmark(0, CENTER, "x", LandmarkKind.POI_CLUSTER)
        lm.significance = 0.7
        assert lm.significance == 0.7


class TestLandmarkIndex:
    def test_duplicate_ids_rejected(self, projector):
        landmarks = make_landmarks(projector, [(0, 0), (10, 10)])
        landmarks[1] = Landmark(0, landmarks[1].point, "dup", LandmarkKind.POI_CLUSTER)
        with pytest.raises(GeometryError):
            LandmarkIndex(landmarks, projector)

    def test_get_and_contains(self, projector):
        index = LandmarkIndex(make_landmarks(projector, [(0, 0), (500, 0)]), projector)
        assert index.get(1).name == "L1"
        assert 0 in index and 2 not in index
        with pytest.raises(GeometryError):
            index.get(99)

    def test_len_and_iter(self, projector):
        index = LandmarkIndex(make_landmarks(projector, [(0, 0), (500, 0)]), projector)
        assert len(index) == 2
        assert {lm.landmark_id for lm in index} == {0, 1}

    def test_nearest(self, projector):
        index = LandmarkIndex(
            make_landmarks(projector, [(0, 0), (500, 0), (1000, 0)]), projector
        )
        hit = index.nearest(projector.to_point(520, 10))
        assert hit is not None
        assert hit[1].landmark_id == 1

    def test_nearest_out_of_range(self, projector):
        index = LandmarkIndex(make_landmarks(projector, [(0, 0)]), projector)
        assert index.nearest(projector.to_point(9000, 9000), max_radius_m=100.0) is None

    def test_within_sorted_by_distance(self, projector):
        index = LandmarkIndex(
            make_landmarks(projector, [(0, 0), (300, 0), (100, 0)]), projector
        )
        hits = index.within(projector.to_point(0, 0), 400.0)
        assert [lm.landmark_id for _, lm in hits] == [0, 2, 1]
        dists = [d for d, _ in hits]
        assert dists == sorted(dists)


class TestPOIGenerator:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            POIConfig(count=0)
        with pytest.raises(ConfigError):
            POIConfig(activity_centers=0)
        with pytest.raises(ConfigError):
            POIConfig(background_fraction=1.2)

    def test_count_and_bbox(self, projector):
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        pois = generate_pois(POIConfig(count=500), bbox, projector, np.random.default_rng(0))
        assert len(pois) == 500
        assert all(bbox.contains(p.point) for p in pois)

    def test_unique_ids(self, projector):
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        pois = generate_pois(POIConfig(count=300), bbox, projector, np.random.default_rng(1))
        assert len({p.poi_id for p in pois}) == 300

    def test_deterministic(self, projector):
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        a = generate_pois(POIConfig(count=200), bbox, projector, np.random.default_rng(9))
        b = generate_pois(POIConfig(count=200), bbox, projector, np.random.default_rng(9))
        assert [(p.point, p.category, p.name) for p in a] == [
            (p.point, p.category, p.name) for p in b
        ]

    def test_clustered_structure(self, projector):
        # Clustered POIs must be denser than uniform: mean nearest-neighbour
        # distance should be clearly below the uniform expectation.
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        config = POIConfig(count=600, background_fraction=0.1)
        pois = generate_pois(config, bbox, projector, np.random.default_rng(2))
        pts = [projector.to_xy(p.point) for p in pois]
        arr = np.array(pts)
        # Sample 100 points, find each one's nearest neighbour distance.
        rng = np.random.default_rng(3)
        idx = rng.choice(len(arr), size=100, replace=False)
        nn = []
        for i in idx:
            d = np.hypot(arr[:, 0] - arr[i, 0], arr[:, 1] - arr[i, 1])
            d[i] = np.inf
            nn.append(d.min())
        area_extent = max(np.ptp(arr[:, 0]), np.ptp(arr[:, 1]))
        uniform_nn = 0.5 * area_extent / np.sqrt(len(arr))
        assert float(np.mean(nn)) < uniform_nn

    def test_all_categories_reachable(self, projector):
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        pois = generate_pois(POIConfig(count=2000), bbox, projector, np.random.default_rng(4))
        seen = {p.category for p in pois}
        assert len(seen) == len(POICategory)

    def test_names_follow_category(self, projector):
        bbox = BoundingBox(39.88, 116.36, 39.94, 116.44)
        pois = generate_pois(POIConfig(count=50), bbox, projector, np.random.default_rng(5))
        for poi in pois:
            assert poi.name.endswith(poi.category.label)
