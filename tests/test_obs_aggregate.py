"""Tests for cross-process telemetry aggregation: merge_snapshot,
scoped registries, span batches, event relays, TelemetrySnapshot, and the
shard-boundary differential (merged per-shard deltas == serial registry)."""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    EventBus,
    EventLog,
    MetricsRegistry,
    TelemetrySnapshot,
    TraceCollector,
    apply_telemetry,
    capture_telemetry,
)
from repro.obs.metrics import scoped_metrics
from repro.obs.trace import SpanRecord


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


BOUNDS = (1.0, 5.0, 25.0)


def _random_delta(seed: int) -> MetricsRegistry:
    """A worker-style delta registry with exactly-representable values.

    Observations are quarter-integers so float addition is exact and the
    associativity/commutativity assertions can use ``==``, not approx.
    """
    rng = random.Random(seed)
    registry = MetricsRegistry()
    registry.counter("work.calls").inc(rng.randint(0, 10))
    if rng.random() < 0.8:
        registry.counter("work.items").inc(rng.randint(1, 50))
    h = registry.histogram("work.latency_ms", buckets=BOUNDS)
    for _ in range(rng.randint(0, 25)):
        h.observe(rng.randint(0, 200) / 4.0)
    if rng.random() < 0.5:
        registry.gauge("work.offset").inc(rng.randint(-5, 5))
    return registry


def _fold(deltas) -> dict:
    target = MetricsRegistry()
    for delta in deltas:
        target.merge_snapshot(delta.snapshot())
    return target.snapshot()


class TestMergeSnapshot:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("calls").inc(3)
        b.counter("calls").inc(4)
        b.counter("only_b").inc(1)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["calls"]["value"] == 7.0
        assert snap["only_b"]["value"] == 1.0

    def test_gauges_merge_as_signed_offsets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("backlog").set(10.0)
        b.gauge("backlog").inc(-3.0)
        a.merge_snapshot(b.snapshot())
        assert a.snapshot()["backlog"]["value"] == 7.0

    def test_histograms_merge_counts_sums_extremes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", buckets=BOUNDS)
        hb = b.histogram("lat", buckets=BOUNDS)
        for v in (0.5, 2.0):
            ha.observe(v)
        for v in (10.0, 100.0):
            hb.observe(v)
        a.merge_snapshot(b.snapshot())
        data = a.snapshot()["lat"]
        assert data["count"] == 4
        assert data["sum"] == 112.5
        assert data["min"] == 0.5 and data["max"] == 100.0
        assert data["buckets"] == {"1": 1, "5": 1, "25": 1, "+inf": 1}

    def test_empty_histogram_delta_is_noop(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=BOUNDS).observe(2.0)
        b.histogram("lat", buckets=BOUNDS)  # created, never observed
        before = a.snapshot()
        a.merge_snapshot(b.snapshot())
        assert a.snapshot() == before

    def test_bucket_layout_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("lat", buckets=(10.0, 20.0)).observe(15.0)
        with pytest.raises(ValueError, match="bucket layout"):
            a.merge_snapshot(b.snapshot())

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            MetricsRegistry().merge_snapshot(
                {"weird": {"type": "summary", "value": 1.0}}
            )

    def test_merge_into_empty_reproduces_source(self):
        source = _random_delta(7)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestMergeProperties:
    def test_associative(self):
        deltas = [_random_delta(seed) for seed in range(12)]
        left = MetricsRegistry()
        for delta in deltas[:6]:
            left.merge_snapshot(delta.snapshot())
        right = MetricsRegistry()
        for delta in deltas[6:]:
            right.merge_snapshot(delta.snapshot())
        # fold(fold(first half), fold(second half)) == fold(all)
        regrouped = MetricsRegistry()
        regrouped.merge_snapshot(left.snapshot())
        regrouped.merge_snapshot(right.snapshot())
        assert regrouped.snapshot() == _fold(deltas)

    def test_commutative(self):
        deltas = [_random_delta(seed) for seed in range(10)]
        shuffled = list(deltas)
        random.Random(99).shuffle(shuffled)
        assert _fold(deltas) == _fold(shuffled)

    def test_concurrent_merges_equal_serial_fold(self):
        deltas = [_random_delta(seed) for seed in range(16)]
        target = MetricsRegistry()
        barrier = threading.Barrier(len(deltas))
        errors: list[Exception] = []

        def worker(delta: MetricsRegistry) -> None:
            try:
                barrier.wait()
                target.merge_snapshot(delta.snapshot())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(d,)) for d in deltas]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert target.snapshot() == _fold(deltas)


class TestScopedMetrics:
    def test_scoped_registry_shadows_active(self):
        registry = obs.enable_metrics()
        local = MetricsRegistry()
        with scoped_metrics(local):
            obs.metrics().counter("scoped.calls").inc()
        obs.metrics().counter("global.calls").inc()
        assert local.snapshot()["scoped.calls"]["value"] == 1.0
        assert "scoped.calls" not in registry.snapshot()
        assert "global.calls" not in local.snapshot()

    def test_scope_restored_after_exception(self):
        registry = obs.enable_metrics()
        with pytest.raises(RuntimeError):
            with scoped_metrics(MetricsRegistry()):
                raise RuntimeError("boom")
        assert obs.metrics() is registry

    def test_new_threads_start_unscoped(self):
        registry = obs.enable_metrics()
        seen: list[object] = []
        with scoped_metrics(MetricsRegistry()):
            t = threading.Thread(target=lambda: seen.append(obs.metrics()))
            t.start()
            t.join()
        assert seen == [registry], "a worker thread must not inherit the scope"


class TestSpanBatches:
    def _record(self, span_id, parent_id=None, name="stage"):
        return SpanRecord(span_id, parent_id, name, 0.0, 1.0, "ok", None, 0)

    def test_ids_reassigned_and_parents_remapped(self):
        target = TraceCollector()
        batch = [self._record(1), self._record(2, parent_id=1, name="child")]
        added = target.add_batch([r.to_dict() for r in batch])
        assert added == 2
        spans = {s.name: s for s in target.spans()}
        assert spans["child"].parent_id == spans["stage"].span_id

    def test_batches_from_two_workers_never_collide(self):
        target = TraceCollector()
        target.add_batch([self._record(1, name="w0")])
        target.add_batch([self._record(1, name="w1")])
        ids = [s.span_id for s in target.spans()]
        assert len(ids) == len(set(ids)) == 2

    def test_out_of_batch_parent_becomes_root(self):
        target = TraceCollector()
        target.add_batch([self._record(5, parent_id=99)])
        [span] = target.spans()
        assert span.parent_id is None

    def test_max_spans_cap_counts_drops(self):
        target = TraceCollector(max_spans=1)
        added = target.add_batch([self._record(1), self._record(2)])
        assert added == 1 and target.dropped == 1

    def test_roundtrip_from_dict(self):
        record = SpanRecord(3, 1, "partition", 0.5, 2.0, "error", "boom", 2,
                            {"k": 2}, 777)
        assert SpanRecord.from_dict(record.to_dict()) == record


class TestEventRelay:
    def test_relay_resequences_and_tags_source(self):
        worker_bus, parent_bus = EventBus(), EventBus()
        worker_log = EventLog()
        worker_bus.subscribe(worker_log)
        worker_bus.emit("quarantine", trajectory_id="t-1", error="boom")
        worker_bus.emit("retry", trajectory_id="t-1")
        parent_log = EventLog()
        parent_bus.subscribe(parent_log)
        parent_bus.emit("batch_start", items=2)
        relayed = parent_bus.relay(
            [e.to_dict() for e in worker_log], source="shard-0"
        )
        assert [e.seq for e in parent_log] == [1, 2, 3]
        assert [e.kind for e in relayed] == ["quarantine", "retry"]
        q = relayed[0]
        assert q.payload["error"] == "boom"
        assert q.payload["relay_seq"] == 1
        assert q.payload["relay_source"] == "shard-0"
        assert q.trajectory_id == "t-1"

    def test_relay_unknown_kind_raises(self):
        bad = {"seq": 1, "ts_s": 0.0, "kind": "made_up", "stage": None,
               "trajectory_id": None, "payload": {}}
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().relay([bad])

    def test_relay_accepts_event_objects(self):
        bus = EventBus()
        source = EventBus().emit("progress", done=1)
        [out] = bus.relay([source])
        assert out.kind == "progress" and out.payload["done"] == 1


class TestTelemetrySnapshot:
    def _worker_bundle(self):
        registry = MetricsRegistry()
        registry.counter("work.calls").inc(2)
        registry.histogram("work.ms", buckets=BOUNDS).observe(3.0)
        collector = TraceCollector()
        collector.add(SpanRecord(1, None, "stage", 0.0, 1.5, "ok", None, 0))
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.emit("quarantine", trajectory_id="t-9", error_type="Boom")
        return capture_telemetry(
            registry=registry, collector=collector, events=log, source="shard-1"
        )

    def test_json_roundtrip(self):
        snapshot = self._worker_bundle()
        assert not snapshot.empty
        again = TelemetrySnapshot.from_json(snapshot.to_json())
        assert again.to_dict() == snapshot.to_dict()

    def test_empty_bundle(self):
        assert capture_telemetry().empty

    def test_apply_folds_all_three_sinks(self):
        snapshot = self._worker_bundle()
        registry = MetricsRegistry()
        collector = TraceCollector()
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        apply_telemetry(
            snapshot.to_dict(), registry=registry, collector=collector, bus=bus
        )
        assert registry.snapshot()["work.calls"]["value"] == 2.0
        assert [s.name for s in collector.spans()] == ["stage"]
        [event] = log.events("quarantine")
        assert event.payload["relay_source"] == "shard-1"

    def test_apply_skips_missing_sinks(self):
        snapshot = self._worker_bundle()
        registry = MetricsRegistry()
        apply_telemetry(snapshot, registry=registry)  # no collector, no bus
        assert registry.snapshot()["work.calls"]["value"] == 2.0


def _deterministic_view(snapshot: dict) -> dict:
    """Counter values and histogram bucket counts — the series that must be
    bit-identical between serial and sharded runs.  Gauges and histogram
    sums carry wall-clock timings, so they are excluded by design."""
    out = {}
    for name, data in snapshot.items():
        if name.startswith("serving."):
            continue  # pool bookkeeping only exists on the sharded path
        if data["type"] == "counter":
            out[name] = ("counter", data["value"])
        elif data["type"] == "histogram":
            counts = dict(data["buckets"])
            if "latency" in name or name.endswith("_ms"):
                # Timing histograms bucket non-deterministically; only the
                # total observation count must match.
                out[name] = ("histogram", data["count"])
            else:
                out[name] = ("histogram", data["count"], counts)
    return out


class TestShardMergeDifferential:
    def test_merged_shard_deltas_equal_serial_registry(self, scenario):
        rng = np.random.default_rng(1234)
        trips = [
            t.raw for t in scenario.simulate_trips(6, depart_time=9 * 3600.0, rng=rng)
        ]
        serial = obs.enable_metrics(MetricsRegistry())
        scenario.stmaker.summarize_many(trips, k=2)
        serial_view = _deterministic_view(serial.snapshot())
        obs.disable_metrics()

        sharded = obs.enable_metrics(MetricsRegistry())
        scenario.stmaker.summarize_many(trips, k=2, workers=3)
        sharded_view = _deterministic_view(sharded.snapshot())

        assert serial_view == sharded_view
        assert serial_view["summarize.calls"] == ("counter", 6.0)
