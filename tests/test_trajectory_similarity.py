"""Tests for classical trajectory similarity measures and simplification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint, LocalProjector
from repro.trajectory import (
    douglas_peucker,
    dtw_distance,
    euclidean_sync_distance,
    hausdorff_distance,
    lcss_similarity,
)

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


def line(projector, n=10, dy=0.0, spacing=50.0):
    return [projector.to_point(i * spacing, dy) for i in range(n)]


coords = st.lists(
    st.tuples(
        st.floats(min_value=-2000.0, max_value=2000.0, allow_nan=False),
        st.floats(min_value=-2000.0, max_value=2000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


class TestEuclideanSync:
    def test_parallel_lines(self, projector):
        a = line(projector)
        b = line(projector, dy=30.0)
        assert euclidean_sync_distance(a, b, projector) == pytest.approx(30.0, abs=0.1)

    def test_identity(self, projector):
        a = line(projector)
        assert euclidean_sync_distance(a, a, projector) == 0.0

    def test_length_mismatch_rejected(self, projector):
        with pytest.raises(TrajectoryError):
            euclidean_sync_distance(line(projector, 5), line(projector, 6), projector)

    def test_empty_rejected(self, projector):
        with pytest.raises(TrajectoryError):
            euclidean_sync_distance([], [], projector)


class TestDTW:
    def test_identity_zero(self, projector):
        a = line(projector)
        assert dtw_distance(a, a, projector) == pytest.approx(0.0, abs=1e-9)

    def test_robust_to_resampling(self, projector):
        # The same path sampled at different densities stays far closer
        # under DTW than a genuinely different (parallel-offset) path.
        dense = line(projector, n=20, spacing=25.0)
        sparse = line(projector, n=10, spacing=50.0)
        offset = line(projector, n=20, spacing=25.0, dy=100.0)
        same_path = dtw_distance(dense, sparse, projector)
        different_path = dtw_distance(dense, offset, projector)
        assert same_path < 500.0
        assert same_path < different_path / 4.0

    def test_parallel_offset_grows_with_length(self, projector):
        short = dtw_distance(line(projector, 5), line(projector, 5, dy=30.0), projector)
        long = dtw_distance(line(projector, 10), line(projector, 10, dy=30.0), projector)
        assert long > short

    @settings(max_examples=30, deadline=None)
    @given(coords, coords)
    def test_symmetry_and_nonnegativity(self, ca, cb):
        projector = LocalProjector(CENTER)
        a = [projector.to_point(x, y) for x, y in ca]
        b = [projector.to_point(x, y) for x, y in cb]
        d_ab = dtw_distance(a, b, projector)
        d_ba = dtw_distance(b, a, projector)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-9)


class TestLCSS:
    def test_identical_is_one(self, projector):
        a = line(projector)
        assert lcss_similarity(a, a, projector) == 1.0

    def test_disjoint_is_zero(self, projector):
        a = line(projector)
        b = [projector.to_point(x, 5_000.0) for x in range(0, 500, 50)]
        assert lcss_similarity(a, b, projector) == 0.0

    def test_epsilon_controls_matching(self, projector):
        a = line(projector)
        b = line(projector, dy=60.0)
        assert lcss_similarity(a, b, projector, epsilon_m=50.0) == 0.0
        assert lcss_similarity(a, b, projector, epsilon_m=80.0) == 1.0

    def test_invalid_epsilon(self, projector):
        with pytest.raises(TrajectoryError):
            lcss_similarity(line(projector), line(projector), projector, epsilon_m=0.0)

    @settings(max_examples=30, deadline=None)
    @given(coords, coords)
    def test_range_and_symmetry(self, ca, cb):
        projector = LocalProjector(CENTER)
        a = [projector.to_point(x, y) for x, y in ca]
        b = [projector.to_point(x, y) for x, y in cb]
        s = lcss_similarity(a, b, projector)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(lcss_similarity(b, a, projector))


class TestHausdorff:
    def test_identity_zero(self, projector):
        a = line(projector)
        assert hausdorff_distance(a, a, projector) == 0.0

    def test_offset_lines(self, projector):
        a = line(projector)
        b = line(projector, dy=40.0)
        assert hausdorff_distance(a, b, projector) == pytest.approx(40.0, abs=0.5)

    def test_outlier_dominates(self, projector):
        a = line(projector)
        b = list(a)
        b[-1] = projector.to_point(450.0, 900.0)
        assert hausdorff_distance(a, b, projector) > 800.0

    @settings(max_examples=30, deadline=None)
    @given(coords, coords)
    def test_metric_properties(self, ca, cb):
        projector = LocalProjector(CENTER)
        a = [projector.to_point(x, y) for x, y in ca]
        b = [projector.to_point(x, y) for x, y in cb]
        d = hausdorff_distance(a, b, projector)
        assert d >= 0.0
        assert d == pytest.approx(hausdorff_distance(b, a, projector))


class TestDouglasPeucker:
    def test_straight_line_collapses(self, projector):
        pts = line(projector, n=20)
        simplified = douglas_peucker(pts, 5.0, projector)
        assert simplified == [pts[0], pts[-1]]

    def test_corner_preserved(self, projector):
        pts = [projector.to_point(x, 0.0) for x in range(0, 501, 50)]
        pts += [projector.to_point(500.0, y) for y in range(50, 501, 50)]
        simplified = douglas_peucker(pts, 10.0, projector)
        corners = {projector.to_xy(p) for p in simplified}
        assert any(abs(x - 500.0) < 1 and abs(y) < 1 for x, y in corners)
        assert len(simplified) == 3

    def test_tolerance_monotonicity(self, projector):
        rng = np.random.default_rng(0)
        pts = [
            projector.to_point(i * 30.0, float(rng.normal(0, 15)))
            for i in range(40)
        ]
        loose = douglas_peucker(pts, 40.0, projector)
        tight = douglas_peucker(pts, 5.0, projector)
        assert len(loose) <= len(tight)

    def test_endpoints_always_kept(self, projector):
        pts = line(projector, n=8)
        simplified = douglas_peucker(pts, 1_000.0, projector)
        assert simplified[0] == pts[0]
        assert simplified[-1] == pts[-1]

    def test_short_input_passthrough(self, projector):
        pts = line(projector, n=2)
        assert douglas_peucker(pts, 1.0, projector) == pts

    def test_invalid_tolerance(self, projector):
        with pytest.raises(TrajectoryError):
            douglas_peucker(line(projector), 0.0, projector)

    @settings(max_examples=25, deadline=None)
    @given(coords, st.floats(min_value=1.0, max_value=200.0))
    def test_simplified_within_tolerance(self, cs, tolerance):
        from repro.geo import nearest_point_on_polyline

        projector = LocalProjector(CENTER)
        pts = [projector.to_point(x, y) for x, y in cs]
        simplified = douglas_peucker(pts, tolerance, projector)
        if len(simplified) < 2:
            return
        # Every original vertex stays within tolerance of the simplification.
        for p in pts:
            d, _ = nearest_point_on_polyline(p, simplified, projector)
            assert d <= tolerance + 1e-6
