"""Tests for the typed pipeline event stream (repro.obs.events)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.exceptions import TransientError
from repro.obs.events import EVENT_KINDS, EventBus, EventLog, PipelineEvent
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


@pytest.fixture
def log():
    log = EventLog()
    obs.enable_events().subscribe(log)
    return log


class TestEventBus:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().emit("not_a_kind")

    def test_seq_is_monotonic_and_payload_kept(self):
        bus = EventBus()
        first = bus.emit("stage_start", "calibrate", "t-1")
        second = bus.emit("stage_end", "calibrate", "t-1", duration_ms=1.0)
        assert (first.seq, second.seq) == (1, 2)
        assert second.payload == {"duration_ms": 1.0}
        assert second.ts_s >= first.ts_s

    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.emit("retry")
        bus.unsubscribe(log)
        bus.emit("retry")
        assert len(log) == 1 and bus.subscriber_count == 0

    def test_subscriber_exception_swallowed_and_counted(self):
        bus = EventBus()

        def broken(event: PipelineEvent) -> None:
            raise RuntimeError("sink died")

        log = EventLog()
        bus.subscribe(broken)
        bus.subscribe(log)
        bus.emit("quarantine")
        assert bus.errors == 1
        assert len(log) == 1, "later subscribers still receive the event"

    def test_raising_subscriber_does_not_abort_the_pipeline(self, scenario):
        """Regression: a broken sink on the live bus must not take down a
        summarize call, and every drop lands on the error counter."""
        registry = obs.enable_metrics()
        bus = obs.enable_events()

        def broken(event: PipelineEvent) -> None:
            raise RuntimeError("sink died mid-run")

        log = EventLog()
        bus.subscribe(broken)
        bus.subscribe(log)
        rng = np.random.default_rng(77)
        trip = scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]
        summary = scenario.stmaker.summarize(trip.raw, k=2)  # must not raise
        assert summary.text
        assert len(log) > 0, "healthy subscribers keep receiving events"
        assert bus.errors == len(log), "broken sink failed on every event"
        errors = registry.snapshot()["obs.events.subscriber_errors"]
        assert errors["value"] == float(bus.errors)

    def test_every_subscriber_isolated_not_just_the_first(self):
        bus = EventBus()
        order: list[str] = []

        def broken_a(event):
            order.append("a")
            raise RuntimeError("a died")

        def broken_b(event):
            order.append("b")
            raise RuntimeError("b died")

        bus.subscribe(broken_a)
        bus.subscribe(broken_b)
        bus.subscribe(lambda e: order.append("c"))
        bus.emit("retry")
        assert order == ["a", "b", "c"]
        assert bus.errors == 2

    def test_concurrent_emission_is_sequenced(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def worker() -> None:
            barrier.wait()
            for _ in range(per_thread):
                bus.emit("progress")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = sorted(e.seq for e in log)
        assert seqs == list(range(1, n_threads * per_thread + 1))


class TestModuleGlobals:
    def test_disabled_by_default(self):
        assert not obs.events_enabled()
        obs.emit_event("retry")  # must be a silent no-op

    def test_enable_disable_roundtrip(self):
        bus = obs.enable_events()
        assert obs.events_enabled() and obs.events() is bus
        assert obs.enable_events() is bus, "enable twice keeps the same bus"
        obs.disable_events()
        assert obs.events() is None

    def test_stage_scope_disabled_is_shared_noop(self):
        assert obs.stage_scope("a") is obs.stage_scope("b")

    def test_stage_scope_emits_start_and_end(self, log):
        with obs.stage_scope("partition", "t-9"):
            pass
        start, end = log.events()
        assert (start.kind, start.stage, start.trajectory_id) == (
            "stage_start", "partition", "t-9",
        )
        assert end.kind == "stage_end"
        assert end.payload["status"] == "ok"
        assert end.payload["duration_ms"] >= 0.0

    def test_stage_scope_records_error_and_reraises(self, log):
        with pytest.raises(KeyError):
            with obs.stage_scope("select"):
                raise KeyError("missing")
        end = log.events("stage_end")[0]
        assert end.payload["status"] == "error"
        assert "KeyError" in end.payload["error"]


class TestJsonlEventSink:
    def test_writes_parseable_lines_and_closes_idempotently(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.JsonlEventSink(path) as sink:
            bus = obs.enable_events()
            bus.subscribe(sink)
            bus.emit("batch_start", items=3)
            bus.emit("batch_end", ok=3, quarantined=0)
            assert sink.written == 2
        sink.close()  # second close is a no-op
        bus.emit("retry")  # dropped silently after close, not an error
        assert bus.errors == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["batch_start", "batch_end"]
        assert lines[0]["payload"] == {"items": 3}
        assert set(lines[0]) == {
            "seq", "ts_s", "kind", "stage", "trajectory_id", "payload",
        }


@pytest.fixture(scope="module")
def base_trip(scenario):
    rng = np.random.default_rng(404)
    return scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]


class TestPipelineIntegration:
    def test_summarize_emits_balanced_stage_events(self, scenario, base_trip, log):
        scenario.stmaker.summarize(base_trip.raw, k=2)
        starts = log.events("stage_start")
        ends = log.events("stage_end")
        assert [e.stage for e in starts] and len(starts) == len(ends)
        stages = {e.stage for e in starts}
        assert {"summarize", "extract", "partition", "select", "realize"} <= stages
        assert all(e.payload["status"] == "ok" for e in ends)
        assert all(e.trajectory_id == base_trip.raw.trajectory_id for e in starts)

    def test_every_emitted_kind_is_in_vocabulary(self, scenario, base_trip, log):
        scenario.stmaker.summarize_many([base_trip.raw], k=2)
        assert log.events()
        assert {e.kind for e in log} <= EVENT_KINDS

    def test_degradation_event_from_stage_fault(self, scenario, base_trip, log):
        injector = FaultInjector.raising("partition")
        with injector.installed(scenario.stmaker):
            scenario.stmaker.summarize(base_trip.raw, k=2)
        [event] = log.events("degradation")
        assert event.stage == "partition"
        assert event.payload["fallback"] == "single_partition"
        assert "InjectedFault" in event.payload["reason"]
        failed_end = [
            e for e in log.events("stage_end")
            if e.stage == "partition" and e.payload["status"] == "error"
        ]
        assert failed_end, "the absorbed failure still emits its stage_end"

    def test_retry_and_batch_events(self, scenario, base_trip, log):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=2)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                [base_trip.raw], k=2,
                retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            )
        assert result.ok_count == 1
        assert len(log.events("retry")) == 2
        retry = log.events("retry")[0]
        assert retry.payload["attempt"] >= 1
        assert "TransientError" in retry.payload["error"]
        [start] = log.events("batch_start")
        [end] = log.events("batch_end")
        assert start.payload["items"] == 1
        assert end.payload["ok"] == 1 and end.payload["quarantined"] == 0
        progress = log.events("progress")
        assert progress and progress[-1].payload["done"] == 1

    def test_quarantine_event(self, scenario, base_trip, log):
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=None)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                [base_trip.raw],
                retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
            )
        assert result.quarantined_count == 1
        [event] = log.events("quarantine")
        assert event.payload["error_type"] == "TransientError"
        assert event.payload["attempts"] == 2

    def test_sanitization_event(self, scenario, base_trip, log):
        from repro.trajectory import RawTrajectory, TrajectoryPoint

        pts = list(base_trip.raw.points)
        mid = len(pts) // 2
        projector = scenario.network.projector
        x, y = projector.to_xy(pts[mid].point)
        pts[mid] = TrajectoryPoint(projector.to_point(x + 30_000.0, y), pts[mid].t)
        scenario.stmaker.summarize_many([RawTrajectory(pts, "glitch")], k=2)
        [event] = log.events("sanitization")
        assert event.trajectory_id == "glitch"
        assert event.payload["dropped"] >= 1

    def test_no_events_leak_when_disabled(self, scenario, base_trip):
        log = EventLog()
        bus = obs.enable_events()
        bus.subscribe(log)
        obs.disable_events()
        scenario.stmaker.summarize(base_trip.raw, k=2)
        assert len(log) == 0
