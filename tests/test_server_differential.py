"""Differential suite: the request front-end ≡ ``summarize_many``.

The contract of :mod:`repro.server` is that putting the queue, the
weighted-round-robin consumer, admission, and the hot query caches in
front of the pipeline changes *nothing* semantically: for identical
inputs, a served request's :class:`~repro.resilience.BatchResult` is
byte-identical to calling :meth:`STMaker.summarize_many` directly —
summary texts, partitions (with their exact Γ floats), degradation
reports, quarantine verdicts, sanitization reports.

Parameterization mirrors the serving differential suite:
``SERVING_TEST_WORKERS`` / ``SERVING_TEST_EXECUTOR`` (CI matrix
thread/process) shape the pool each request is served with, every
equivalence is checked **cold** (first request against fresh caches) and
**warm** (repeat requests served from cache hits), and the stage-fault
tests hold the server to the same degradation verdicts as the serial
loop under deterministic fault injection.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import TransientError
from repro.geo import GeoPoint
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.server import ServerConfig, SummarizationServer
from repro.trajectory import RawTrajectory, TrajectoryPoint

#: Worker count each request is served with (CI matrix 1/4).
WORKERS = int(os.environ.get("SERVING_TEST_WORKERS", "4"))

#: Pool backend each request is served with (CI matrix thread/process).
EXECUTOR = os.environ.get("SERVING_TEST_EXECUTOR", "thread")

#: The five stages, for per-stage fault-injection comparisons.
STAGES = ("calibrate", "extract", "partition", "select", "realize")

#: Generous per-response wait; a lost response should fail loudly, fast.
RESULT_TIMEOUT_S = 600.0


def _no_sleep(seconds: float) -> None:
    """A sleeper that doesn't — module-level so it crosses process pools."""


def _mutants(trips) -> list[RawTrajectory]:
    """Corrupted variants exercising sanitization, degradation, quarantine."""
    out = []

    pts = []
    for p in trips[0].raw:
        pts.append(p)
        pts.append(TrajectoryPoint(p.point, p.t))  # exact duplicate samples
    out.append(RawTrajectory(pts, "mut-dup-timestamps"))

    pts = list(trips[1].raw.points)
    mid = len(pts) // 2
    pts[mid] = TrajectoryPoint(  # ~100 km teleport glitch mid-trip
        GeoPoint(pts[mid].point.lat + 1.0, pts[mid].point.lon), pts[mid].t
    )
    out.append(RawTrajectory(pts, "mut-teleport"))

    out.append(RawTrajectory(  # fully off-map: nowhere near any landmark
        [
            TrajectoryPoint(GeoPoint(10.0, 10.0 + 0.001 * i), float(i * 30))
            for i in range(12)
        ],
        "mut-off-map",
    ))

    pts = trips[2].raw.points
    out.append(RawTrajectory([pts[0], pts[-1]], "mut-minimal"))

    return out


@pytest.fixture(scope="module")
def corpus(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(4321)
    trips = [
        scenario.simulate_trips(1, depart_time=(6.0 + 1.1 * i) * 3600.0, rng=rng)[0]
        for i in range(8)
    ]
    healthy = [
        RawTrajectory(trip.raw.points, f"trip-{i:02d}")
        for i, trip in enumerate(trips)
    ]
    return healthy + _mutants(trips)


@pytest.fixture(scope="module")
def stmaker(scenario):
    return scenario.stmaker


def server_config(**overrides) -> ServerConfig:
    base: dict = dict(
        workers=WORKERS, shard_size=3, executor=EXECUTOR, consumers=2,
    )
    base.update(overrides)
    return ServerConfig(**base)


def assert_batches_identical(direct, served) -> None:
    """Element-wise equality of everything a BatchResult carries."""
    assert served.ok_count == direct.ok_count
    assert served.quarantined_count == direct.quarantined_count
    for ours, theirs in zip(served.summaries, direct.summaries, strict=True):
        assert ours.trajectory_id == theirs.trajectory_id
        assert ours.text == theirs.text
        # Dataclass equality covers spans, landmark names, selected
        # features, and the exact Γ (irregular_rate) floats.
        assert ours.partitions == theirs.partitions
        assert ours.degradation.to_dict() == theirs.degradation.to_dict()
    assert served.quarantined == direct.quarantined
    assert served.sanitization == direct.sanitization


def serve(stmaker, corpus, *, submits=1, config=None, **submit_kwargs):
    """Push *corpus* through a fresh server *submits* times.

    Returns ``(responses, server)`` — the server is stopped (context
    manager), but its cache/stat counters remain readable.
    """
    responses = []
    with SummarizationServer(stmaker, config or server_config()) as server:
        for _ in range(submits):
            handle = server.submit(corpus, **submit_kwargs)
            responses.append(handle.result(timeout=RESULT_TIMEOUT_S))
    return responses, server


# -- cold and warm cache ------------------------------------------------------


def test_corpus_is_diverse(stmaker, corpus):
    assert len({raw.trajectory_id for raw in corpus}) == len(corpus)
    direct = stmaker.summarize_many(corpus, k=2)
    # The corpus genuinely exercises every outcome class.
    assert direct.ok_count > 0
    assert direct.quarantined_count > 0
    assert any(r is not None and not r.clean for r in direct.sanitization)


def test_cold_cache_equals_summarize_many(stmaker, corpus):
    direct = stmaker.summarize_many(corpus, k=2)
    (served,), server = serve(stmaker, corpus, k=2)
    assert_batches_identical(direct, served)
    if EXECUTOR == "thread":
        # Cold means cold: the first request populated, never hit, the
        # route cache (anchor lookups repeat within one request, so only
        # cross-request hits are asserted cold-zero here).  (Process
        # workers rebuild the model from the artifact and keep no
        # parent-side caches — equivalence still holds, but there is
        # nothing to count.)
        assert server.caches.routes.stats()["misses"] > 0


def test_warm_cache_equals_summarize_many(stmaker, corpus):
    direct = stmaker.summarize_many(corpus, k=2)
    responses, server = serve(stmaker, corpus, submits=3, k=2)
    for served in responses:
        assert_batches_identical(direct, served)
    if EXECUTOR == "thread":
        # Warm means warm: repeat requests were actually served from the
        # caches.  (Process workers rebuild the model from the artifact
        # and keep no parent-side caches — equivalence still holds, but
        # there is nothing to count.)
        assert server.caches.routes.stats()["hits"] > 0
        assert server.caches.anchors.stats()["hits"] > 0


def test_optimal_k_equals_summarize_many(stmaker, corpus):
    direct = stmaker.summarize_many(corpus, k=None)
    responses, _ = serve(stmaker, corpus, submits=2, k=None)
    for served in responses:
        assert_batches_identical(direct, served)


def test_without_sanitizer_equals_summarize_many(stmaker, corpus):
    direct = stmaker.summarize_many(corpus, k=2, sanitize=False)
    responses, _ = serve(stmaker, corpus, submits=2, k=2, sanitize=False)
    for served in responses:
        assert_batches_identical(direct, served)
    assert direct.sanitization == [None] * len(corpus)


# -- injected faults ----------------------------------------------------------


@pytest.mark.parametrize("stage", STAGES)
def test_stage_faults_cold_and_warm(stmaker, corpus, stage):
    """Every item degrades at *stage*; the server must degrade identically.

    The injector is armed on the underlying model *after* the server is
    built (the consumer syncs it per request, like ``with_config``
    siblings share theirs), and the second, cache-warm request must
    produce the same degraded bytes as the first.
    """
    injector = FaultInjector([FaultSpec(stage=stage, times=None)])
    with injector.installed(stmaker):
        direct = stmaker.summarize_many(corpus, k=2)
    with injector.installed(stmaker):
        responses, _ = serve(stmaker, corpus, submits=2, k=2)
    for served in responses:
        assert_batches_identical(direct, served)
    degraded = [s for s in direct.summaries if s.degradation.degraded]
    assert degraded, f"stage {stage!r} faults never degraded anything"


def test_transient_storm_equals_summarize_many(stmaker, corpus):
    """Unrelenting TransientErrors quarantine everything — identically."""
    retry = RetryPolicy(max_retries=2, backoff_base_s=0.0)
    injector = FaultInjector(
        [FaultSpec(stage="extract", error=TransientError, times=None)]
    )
    with injector.installed(stmaker):
        direct = stmaker.summarize_many(
            corpus, k=2, retry=retry, sleeper=_no_sleep
        )
    with injector.installed(stmaker):
        (served,), _ = serve(
            stmaker, corpus, k=2, retry=retry, sleeper=_no_sleep
        )
    assert_batches_identical(direct, served)
    assert direct.ok_count == 0


# -- strict mode --------------------------------------------------------------


def test_strict_mode_identical_on_clean_corpus(stmaker, corpus):
    clean = corpus[:8]  # the healthy simulated trips
    direct = stmaker.summarize_many(clean, k=2, strict=True)
    responses, _ = serve(stmaker, clean, submits=2, k=2, strict=True)
    for served in responses:
        assert_batches_identical(direct, served)
    assert direct.quarantined_count == 0


def test_strict_mode_raises_like_summarize_many(stmaker, corpus):
    with pytest.raises(Exception) as direct_exc:
        stmaker.summarize_many(corpus, k=2, strict=True)
    with SummarizationServer(stmaker, server_config()) as server:
        handle = server.submit(corpus, k=2, strict=True)
        with pytest.raises(Exception) as served_exc:
            handle.result(timeout=RESULT_TIMEOUT_S)
    assert type(served_exc.value) is type(direct_exc.value)


# -- admission degrade and model swap -----------------------------------------


def test_degraded_admission_equals_summarize_many_at_degrade_k(stmaker, corpus):
    """An over-budget request served at ``degrade_k`` matches a direct
    ``summarize_many`` at that k — the degrade path changes the partition
    count, nothing else."""
    direct = stmaker.summarize_many(corpus, k=1)
    config = server_config(
        max_queued_items=1, shed="degrade", degrade_k=1
    )
    (served,), _ = serve(stmaker, corpus, config=config, k=2)
    assert_batches_identical(direct, served)


def test_model_swap_serves_new_model_bytes(stmaker, corpus):
    """After ``swap_model`` the server answers with the *new* model's
    bytes, and the caches were invalidated with the fingerprint."""
    from dataclasses import replace

    other = stmaker.with_config(
        replace(stmaker.config, irregular_threshold=0.0)
    )
    direct_old = stmaker.summarize_many(corpus, k=2)
    direct_new = other.summarize_many(corpus, k=2)
    with SummarizationServer(stmaker, server_config()) as server:
        first = server.submit(corpus, k=2).result(timeout=RESULT_TIMEOUT_S)
        warm_size = len(server.caches.anchors)
        assert server.swap_model(other) is True
        assert len(server.caches.anchors) == 0 or warm_size == 0
        second = server.submit(corpus, k=2).result(timeout=RESULT_TIMEOUT_S)
    assert_batches_identical(direct_old, first)
    assert_batches_identical(direct_new, second)
