"""Tests for the naive-Bayes summary classifier."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.textproc import NaiveBayesClassifier

CONGESTED = [
    "with the speed of 12 km/h which was 30 km/h slower than usual",
    "with three staying points and the speed of 15 km/h slower than usual",
    "slower than usual with two staying points in heavy traffic",
    "with four staying points in total for about 300 seconds slower",
]
SMOOTH = [
    "moved smoothly through the highway",
    "with the speed of 80 km/h which was 15 km/h faster than usual",
    "moved smoothly to the station faster than usual",
    "through express road smoothly faster",
]


class TestNaiveBayes:
    def fitted(self):
        docs = CONGESTED + SMOOTH
        labels = ["congested"] * len(CONGESTED) + ["smooth"] * len(SMOOTH)
        return NaiveBayesClassifier().fit(docs, labels)

    def test_validation(self):
        with pytest.raises(ConfigError):
            NaiveBayesClassifier(smoothing=0.0)
        with pytest.raises(ConfigError):
            NaiveBayesClassifier().fit(["a"], [])
        with pytest.raises(ConfigError):
            NaiveBayesClassifier().fit([], [])
        with pytest.raises(ConfigError):
            NaiveBayesClassifier().predict("hello")

    def test_classifies_obvious_cases(self):
        clf = self.fitted()
        assert clf.predict("slower than usual with staying points") == "congested"
        assert clf.predict("moved smoothly and faster") == "smooth"

    def test_training_accuracy_high(self):
        clf = self.fitted()
        docs = CONGESTED + SMOOTH
        labels = ["congested"] * len(CONGESTED) + ["smooth"] * len(SMOOTH)
        assert clf.accuracy(docs, labels) >= 0.9

    def test_tokenless_input_falls_back_to_prior(self):
        docs = CONGESTED * 3 + SMOOTH  # skewed prior toward 'congested'
        labels = ["congested"] * len(CONGESTED) * 3 + ["smooth"] * len(SMOOTH)
        clf = NaiveBayesClassifier().fit(docs, labels)
        # "the" is a stopword, so no evidence reaches the likelihood and
        # the class prior decides.
        assert clf.predict("the") == "congested"

    def test_classes(self):
        assert set(self.fitted().classes) == {"congested", "smooth"}

    def test_predict_many(self):
        clf = self.fitted()
        out = clf.predict_many(["smoothly faster", "slower staying points"])
        assert out == ["smooth", "congested"]

    def test_real_summaries_separable(self, scenario):
        """Rush-hour vs night summaries are learnable from text alone."""
        rng = np.random.default_rng(2)
        rush = [
            scenario.stmaker.summarize(t.raw, k=2).text
            for t in scenario.simulate_trips(14, depart_time=8 * 3600.0, rng=rng)
        ]
        night = [
            scenario.stmaker.summarize(t.raw, k=2).text
            for t in scenario.simulate_trips(14, depart_time=3 * 3600.0, rng=rng)
        ]
        train_docs = rush[:10] + night[:10]
        train_labels = ["rush"] * 10 + ["night"] * 10
        test_docs = rush[10:] + night[10:]
        test_labels = ["rush"] * 4 + ["night"] * 4
        clf = NaiveBayesClassifier().fit(train_docs, train_labels)
        # Better than coin-flipping on held-out summaries.
        assert clf.accuracy(test_docs, test_labels) >= 0.625
