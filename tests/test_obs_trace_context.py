"""Request-scoped tracing: context propagation and per-trace tree invariants.

Two layers:

* **unit** — :class:`~repro.obs.TraceContext` plumbing (pickling, span
  adoption, fork hygiene, ``add_batch`` grafting, cross-process timeline
  alignment) driven on hand-built collectors;
* **property** — real batches through ``summarize_many`` under the
  ``SERVING_TEST_EXECUTOR`` matrix (CI: thread and process), including
  injected retry and crash faults, asserting the invariants
  :func:`repro.obs.trace_problems` encodes: within every trace, span ids
  are unique, every parent resolves in-trace or the span is the single
  root, and parent chains are acyclic.

The checker is the same code ``stmaker obs analyze`` runs, so the tested
invariant and the reported one cannot drift apart.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro import obs
from repro.exceptions import TransientError
from repro.obs.trace import SpanRecord, clear_span_context
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.serving import ShardRetryPolicy
from repro.trajectory import RawTrajectory

#: Worker count / pool backend of the matrix tests (CI: 1/4 × thread/process).
WORKERS = int(os.environ.get("SERVING_TEST_WORKERS", "4"))
EXECUTOR = os.environ.get("SERVING_TEST_EXECUTOR", "thread")

FAST_RETRY = ShardRetryPolicy(max_retries=1, backoff_base_s=0.0)


# -- unit: context plumbing ----------------------------------------------------


def test_trace_context_roundtrips():
    ctx = obs.start_trace(anchor_unix_s=123.0)
    assert ctx.trace_id
    assert ctx.anchor_unix_s == 123.0
    assert obs.TraceContext.from_dict(ctx.to_dict()) == ctx
    assert pickle.loads(pickle.dumps(ctx)) == ctx


def test_trace_ids_are_unique():
    ids = {obs.start_trace().trace_id for _ in range(1000)}
    assert len(ids) == 1000


def test_use_trace_none_is_a_noop():
    with obs.use_trace(None):
        assert obs.current_trace() is None


def test_span_adopts_active_trace(clean_tracing):
    collector = clean_tracing
    ctx = obs.start_trace()
    with obs.use_trace(ctx):
        with obs.span("item"):
            with obs.span("summarize"):
                pass
    assert obs.current_trace() is None
    inner, outer = collector.spans()
    assert outer.trace_id == inner.trace_id == ctx.trace_id
    assert inner.parent_id == outer.span_id
    assert obs.trace_problems(collector.spans()) == []


def test_link_only_context_reparents_without_trace(clean_tracing):
    # The thread-pool handshake: a link-only context carries the batch
    # span's id so shard spans opened in pool threads join its tree, but
    # assigns no request identity.
    collector = clean_tracing
    link = obs.TraceContext(trace_id=None, parent_span_id=77, parent_depth=3)
    with obs.use_trace(link):
        with obs.span("shard"):
            pass
    (shard,) = collector.spans()
    assert shard.parent_id == 77
    assert shard.depth == 4
    assert shard.trace_id is None


def test_clear_span_context_drops_inherited_state(clean_tracing):
    # What a fork-started worker must do: without the reset, the next
    # span would claim the (parent-process) stack top as its parent.
    collector = clean_tracing
    with obs.use_trace(obs.start_trace()):
        with obs.span("outer"):
            clear_span_context()
            assert obs.current_trace() is None
            with obs.span("orphan"):
                pass
    orphan = collector.by_name("orphan")[0]
    assert orphan.parent_id is None
    assert orphan.trace_id is None


# -- unit: grafting ------------------------------------------------------------


def _worker_record(
    span_id: int,
    parent_id: int | None,
    name: str,
    *,
    trace_id: str | None = None,
    start_s: float = 0.0,
    start_unix_s: float = 0.0,
) -> dict[str, object]:
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name, start_s=start_s,
        duration_ms=1.0, status="ok", error=None, depth=0,
        trace_id=trace_id, start_unix_s=start_unix_s,
    ).to_dict()


def test_add_batch_grafts_infra_root_and_keeps_trace_roots():
    parent = obs.TraceCollector()
    batch_id = parent.next_span_id()
    added = parent.add_batch(
        [
            _worker_record(1, None, "shard"),              # infra root
            _worker_record(2, 1, "item", trace_id="t1"),   # under shard
            _worker_record(3, 2, "attempt", trace_id="t1"),
        ],
        graft_parent_id=batch_id,
    )
    assert added == 3
    by_name = {r.name: r for r in parent.spans()}
    assert by_name["shard"].parent_id == batch_id
    assert by_name["item"].parent_id == by_name["shard"].span_id
    assert by_name["attempt"].parent_id == by_name["item"].span_id
    assert obs.trace_problems(parent.spans()) == []
    # The item span roots its trace: its parent is outside trace t1.
    trace = obs.group_traces(parent.spans())["t1"]
    assert [r.name for r in obs.trace_roots(trace)] == ["item"]


def test_add_batch_without_graft_keeps_old_semantics():
    parent = obs.TraceCollector()
    parent.add_batch([
        _worker_record(1, None, "shard"),
        _worker_record(2, 99, "lost-parent"),
    ])
    shard, lost = parent.spans()
    assert shard.parent_id is None
    assert lost.parent_id is None  # unshipped parent, no graft target


def test_two_worker_batches_never_collide(clean_tracing):
    collector = clean_tracing
    with obs.span("summarize_many") as batch:
        for _ in range(2):
            # Both fake workers mint the same local ids 1..2.
            collector.add_batch(
                [
                    _worker_record(1, None, "shard"),
                    _worker_record(2, 1, "item", trace_id=obs.new_trace_id()),
                ],
                graft_parent_id=batch.span_id,
            )
    spans = collector.spans()
    assert len({r.span_id for r in spans}) == len(spans) == 5
    shard_parents = {r.parent_id for r in spans if r.name == "shard"}
    assert shard_parents == {batch.span_id}
    assert obs.trace_problems(spans) == []


def test_grafted_timeline_aligns_on_wall_clock(clean_tracing):
    # Regression for cross-process timelines: two fake workers whose
    # perf_counter epochs disagree wildly must still land at their true
    # wall-clock offsets in the exported Chrome trace.
    collector = clean_tracing
    with obs.span("summarize_many") as batch:
        pass
    (root,) = collector.spans()
    base = root.start_unix_s
    assert base > 0.0
    collector.add_batch(
        [_worker_record(
            1, None, "shard-a", start_s=9999.5, start_unix_s=base + 0.5,
        )],
        graft_parent_id=root.span_id,
    )
    collector.add_batch(
        [_worker_record(
            1, None, "shard-b", start_s=0.001, start_unix_s=base + 1.0,
        )],
        graft_parent_id=root.span_id,
    )
    events = {
        e["name"]: e for e in obs.chrome_trace_events(collector)
        if e.get("ph") == "X"
    }
    assert events["summarize_many"]["ts"] == pytest.approx(0.0, abs=1.0)
    assert events["shard-a"]["ts"] == pytest.approx(0.5e6, rel=1e-6)
    assert events["shard-b"]["ts"] == pytest.approx(1.0e6, rel=1e-6)


def test_timeline_falls_back_when_any_anchor_missing(clean_tracing):
    # One legacy anchor-less record poisons alignment wholesale — mixing
    # unix and perf timelines would interleave incomparable clocks.
    collector = clean_tracing
    with obs.span("summarize_many"):
        pass
    collector.add_batch(
        [_worker_record(1, None, "legacy", start_s=42.0, start_unix_s=0.0)]
    )
    events = {
        e["name"]: e for e in obs.chrome_trace_events(collector)
        if e.get("ph") == "X"
    }
    assert events["legacy"]["ts"] == pytest.approx(42.0e6, rel=1e-6)


# -- property: real batches under the executor matrix --------------------------


@pytest.fixture(scope="module")
def corpus(scenario) -> list[RawTrajectory]:
    rng = np.random.default_rng(412)
    sims = [
        scenario.simulate_trips(1, depart_time=(7.0 + 0.5 * i) * 3600.0, rng=rng)[0]
        for i in range(8)
    ]
    return [
        RawTrajectory(s.raw.points, f"tc-{i:02d}") for i, s in enumerate(sims)
    ]


@pytest.fixture(scope="module")
def stmaker(scenario):
    return scenario.stmaker


@pytest.fixture()
def clean_tracing():
    collector = obs.enable_tracing()
    yield collector
    obs.disable_tracing()


@pytest.fixture()
def clean_obs():
    yield
    obs.disable_slo()
    obs.disable_tracing()
    obs.disable_events()
    obs.disable_metrics()


def _assert_invariants(spans, corpus, batch):
    problems = obs.trace_problems(spans)
    assert problems == []
    traces = obs.group_traces(spans)
    # One trace per item, each carrying at least an item and attempt span.
    assert len(traces) == len(corpus)
    batch_spans = [s for s in spans if s.name == "summarize_many"]
    assert len(batch_spans) == 1
    for records in traces.values():
        names = {r.name for r in records}
        assert "item" in names
        path = obs.critical_path(records)
        assert path, "well-formed trace must yield a critical path"
        assert path[0].name == "item"
    # Shard spans are infrastructure grafted under the batch span, never
    # floating roots.
    for shard in (s for s in spans if s.name == "shard"):
        assert shard.parent_id == batch_spans[0].span_id
        assert shard.trace_id is None
    # Latency accounting rides along for every settled item.
    assert len(batch.latencies) == len(corpus)
    by_trace = {lat.trace_id: lat for lat in batch.latencies if lat}
    assert set(by_trace) == set(traces)


def test_batch_traces_are_well_formed(stmaker, corpus, clean_obs):
    collector = obs.enable_tracing()
    batch = stmaker.summarize_many(corpus, workers=WORKERS, executor=EXECUTOR)
    spans = collector.spans()
    assert batch.ok_count == len(corpus)
    _assert_invariants(spans, corpus, batch)


def test_traces_stay_well_formed_under_retry_faults(stmaker, corpus, clean_obs):
    collector = obs.enable_tracing()
    stmaker.fault_injector = FaultInjector(
        (FaultSpec(
            stage="partition", kind="error", error=TransientError,
            trajectory_id="tc-03", times=1,
        ),),
        seed=5,
    )
    try:
        batch = stmaker.summarize_many(
            corpus, workers=WORKERS, executor=EXECUTOR,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        )
    finally:
        stmaker.fault_injector = None
    spans = collector.spans()
    assert batch.ok_count == len(corpus)
    _assert_invariants(spans, corpus, batch)
    retried = [lat for lat in batch.latencies if lat and lat.attempts > 1]
    assert len(retried) == 1
    trace = obs.group_traces(spans)[retried[0].trace_id]
    attempts = [r for r in trace if r.name == "attempt"]
    assert len(attempts) == 2
    assert retried[0].backoff_s >= 0.0


def test_traces_stay_well_formed_under_crash_faults(stmaker, corpus, clean_obs):
    collector = obs.enable_tracing()
    stmaker.fault_injector = FaultInjector(
        (FaultSpec(
            stage="extract", kind="crash", trajectory_id="tc-05", times=None,
        ),),
        seed=5,
    )
    try:
        batch = stmaker.summarize_many(
            corpus, workers=WORKERS, executor=EXECUTOR,
            shard_retry=FAST_RETRY,
        )
    finally:
        stmaker.fault_injector = None
    spans = collector.spans()
    assert batch.ok_count == len(corpus) - 1
    assert [e.trajectory_id for e in batch.quarantined] == ["tc-05"]
    # Spans from crashed worker attempts die with the worker (telemetry
    # ships at shard end), so the poison item's trace may be absent — but
    # every trace that did make it home must still be a well-formed tree.
    assert obs.trace_problems(spans) == []
    traces = obs.group_traces(spans)
    healthy = [lat for lat in batch.latencies if lat and lat.attempts <= 1]
    for lat in healthy:
        if lat.trace_id in traces:
            path = obs.critical_path(traces[lat.trace_id])
            assert path and path[0].name == "item"
    # The synthesized quarantine entry still carries its accounting.
    entry = batch.quarantined[0]
    assert entry.latency is not None
    assert entry.latency.attempts >= 1


def test_slo_breach_fires_on_live_batch(stmaker, corpus, clean_obs):
    # Acceptance: a configured p95 SLO breach over a real batch emits
    # slo_breach on the bus (and therefore into /status and the flight
    # recorder's trigger set).
    engine = obs.enable_slo([obs.SLObjective(
        name="lat", kind="latency_p95", threshold_ms=0.001,
        min_samples=2, fast_window_s=60.0, window_s=60.0,
    )])
    log = obs.EventLog()
    obs.events().subscribe(log)
    batch = stmaker.summarize_many(corpus, workers=WORKERS, executor=EXECUTOR)
    assert batch.ok_count == len(corpus)
    assert len(log.events("item_end")) == len(corpus)
    breaches = log.events("slo_breach")
    assert len(breaches) == 1
    assert breaches[0].payload["name"] == "lat"
    state = engine.snapshot()["objectives"][0]
    assert state["breached"] is True
    assert state["samples"] == len(corpus)
