"""Tests for the uniform-grid spatial index, including brute-force checks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo import GeoPoint, GridIndex, LocalProjector

CENTER = GeoPoint(39.91, 116.40)


def make_index(points_xy, cell_size=250.0):
    projector = LocalProjector(CENTER)
    grid = GridIndex(projector, cell_size_m=cell_size)
    pts = [projector.to_point(x, y) for x, y in points_xy]
    grid.extend((p, i) for i, p in enumerate(pts))
    return projector, grid, pts


class TestGridIndexBasics:
    def test_len(self):
        _, grid, _ = make_index([(0, 0), (10, 10), (3000, -2000)])
        assert len(grid) == 3

    def test_invalid_cell_size(self):
        with pytest.raises(GeometryError):
            GridIndex(LocalProjector(CENTER), cell_size_m=0.0)

    def test_negative_radius_rejected(self):
        _, grid, _ = make_index([(0, 0)])
        with pytest.raises(GeometryError):
            grid.query_radius(CENTER, -1.0)

    def test_empty_nearest_returns_none(self):
        projector = LocalProjector(CENTER)
        grid = GridIndex(projector)
        assert grid.nearest(CENTER) is None

    def test_query_radius_exact_hit(self):
        projector, grid, pts = make_index([(0, 0), (100, 0), (600, 0)])
        hits = grid.query_radius(projector.to_point(0, 0), 150.0)
        assert sorted(i for _, i in hits) == [0, 1]

    def test_query_radius_boundary_inclusive(self):
        projector, grid, _ = make_index([(100, 0)])
        hits = grid.query_radius(projector.to_point(0, 0), 100.0 + 1e-6)
        assert len(hits) == 1

    def test_nearest_picks_closest(self):
        projector, grid, _ = make_index([(0, 0), (50, 0), (-30, 0)])
        hit = grid.nearest(projector.to_point(40, 0))
        assert hit is not None
        dist, item = hit
        assert item == 1
        assert dist == pytest.approx(10.0, abs=1e-6)

    def test_nearest_respects_max_radius(self):
        projector, grid, _ = make_index([(5000, 0)])
        assert grid.nearest(projector.to_point(0, 0), max_radius_m=100.0) is None

    def test_nearest_across_cells(self):
        # Item in a far cell must still be found when nothing is nearby.
        projector, grid, _ = make_index([(2400, 1900)], cell_size=100.0)
        hit = grid.nearest(projector.to_point(0, 0), max_radius_m=10_000.0)
        assert hit is not None
        assert hit[1] == 0
        assert hit[0] == pytest.approx(math.hypot(2400, 1900), rel=1e-6)


coords = st.tuples(
    st.floats(min_value=-5_000.0, max_value=5_000.0, allow_nan=False),
    st.floats(min_value=-5_000.0, max_value=5_000.0, allow_nan=False),
)


class TestGridIndexAgainstBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(coords, min_size=1, max_size=60),
        coords,
        st.floats(min_value=1.0, max_value=4_000.0),
    )
    def test_query_radius_matches_brute_force(self, pts_xy, query_xy, radius):
        projector, grid, pts = make_index(pts_xy, cell_size=333.0)
        q = projector.to_point(*query_xy)
        hits = {i for _, i in grid.query_radius(q, radius)}
        expected = {
            i for i, p in enumerate(pts) if projector.distance_m(q, p) <= radius
        }
        assert hits == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(coords, min_size=1, max_size=60), coords)
    def test_nearest_matches_brute_force(self, pts_xy, query_xy):
        projector, grid, pts = make_index(pts_xy, cell_size=333.0)
        q = projector.to_point(*query_xy)
        hit = grid.nearest(q, max_radius_m=50_000.0)
        assert hit is not None
        best = min(projector.distance_m(q, p) for p in pts)
        assert hit[0] == pytest.approx(best, rel=1e-9, abs=1e-9)

    def test_random_bulk(self):
        rng = np.random.default_rng(3)
        pts_xy = [(float(x), float(y)) for x, y in rng.uniform(-8000, 8000, size=(500, 2))]
        projector, grid, pts = make_index(pts_xy)
        q = projector.to_point(123.0, -456.0)
        hits = {i for _, i in grid.query_radius(q, 1_000.0)}
        expected = {
            i for i, p in enumerate(pts) if projector.distance_m(q, p) <= 1_000.0
        }
        assert hits == expected
