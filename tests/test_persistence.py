"""Tests for landmark and STMaker persistence."""

import numpy as np
import pytest

from repro.core import (
    SummarizerConfig,
    load_stmaker,
    save_stmaker,
    stmaker_from_dict,
    stmaker_to_dict,
)
from repro.exceptions import ConfigError, GeometryError
from repro.features import (
    FeatureDefinition,
    FeatureDtype,
    FeatureKind,
    default_registry,
)
from repro.landmarks import (
    landmarks_from_dict,
    landmarks_to_dict,
    load_landmarks,
    save_landmarks,
)
from repro.routes import HistoricalFeatureMap, TransferNetwork


class TestLandmarkIO:
    def test_roundtrip(self, scenario, tmp_path):
        path = tmp_path / "landmarks.json"
        save_landmarks(scenario.landmarks, path)
        back = load_landmarks(path)
        assert len(back) == len(scenario.landmarks)
        for lm in scenario.landmarks:
            twin = back.get(lm.landmark_id)
            assert twin.name == lm.name
            assert twin.kind == lm.kind
            assert twin.significance == pytest.approx(lm.significance)
            assert twin.point == lm.point

    def test_spatial_queries_survive(self, scenario, tmp_path):
        path = tmp_path / "landmarks.json"
        save_landmarks(scenario.landmarks, path)
        back = load_landmarks(path)
        probe = next(iter(scenario.landmarks)).point
        hit = back.nearest(probe)
        assert hit is not None and hit[0] == pytest.approx(0.0, abs=1e-6)

    def test_bad_version_rejected(self, scenario):
        data = landmarks_to_dict(scenario.landmarks)
        data["version"] = 99
        with pytest.raises(GeometryError):
            landmarks_from_dict(data)


class TestHistoryDicts:
    def test_transfer_roundtrip(self):
        tn = TransferNetwork()
        tn.add_transition(1, 2, 5)
        tn.add_transition(2, 3, 1)
        back = TransferNetwork.from_dict(tn.to_dict())
        assert back.transition_count(1, 2) == 5
        assert back.total_transitions == 6

    def test_feature_map_roundtrip_exact(self):
        fm = HistoricalFeatureMap()
        fm.add_observation(1, 2, {"speed": 10.0, "stays": 1.0})
        fm.add_observation(1, 2, {"speed": 14.0})
        back = HistoricalFeatureMap.from_dict(fm.to_dict())
        assert back.regular_value(1, 2, "speed") == pytest.approx(12.0)
        assert back.observation_count(1, 2, "speed") == 2
        assert back.global_average("stays") == pytest.approx(1.0)
        # Further observations keep accumulating correctly.
        back.add_observation(1, 2, {"speed": 18.0})
        assert back.regular_value(1, 2, "speed") == pytest.approx(14.0)


class TestSTMakerPersistence:
    def test_roundtrip_preserves_summaries(self, scenario, tmp_path):
        path = tmp_path / "model.json"
        save_stmaker(scenario.stmaker, path)
        loaded = load_stmaker(path)
        trip = scenario.simulate_trip(
            depart_time=9 * 3600.0, rng=np.random.default_rng(5)
        )
        original = scenario.stmaker.summarize(trip.raw, k=2)
        restored = loaded.summarize(trip.raw, k=2)
        assert restored.text == original.text

    def test_config_preserved(self, scenario, tmp_path):
        tuned = scenario.summarizer_with(
            SummarizerConfig(ca=0.8, feature_weights={"speed": 2.0})
        )
        path = tmp_path / "tuned.json"
        save_stmaker(tuned, path)
        loaded = load_stmaker(path)
        assert loaded.config.ca == 0.8
        assert loaded.config.weight("speed") == 2.0

    def test_bad_version_rejected(self, scenario):
        data = stmaker_to_dict(scenario.stmaker)
        data["version"] = 42
        with pytest.raises(ConfigError):
            stmaker_from_dict(data)

    def test_custom_feature_requires_registry(self, scenario):
        registry = default_registry()
        registry.register(
            FeatureDefinition(
                "fuel", "F", FeatureKind.MOVING, FeatureDtype.NUMERIC,
                extractor=lambda ctx: 0.0,
            )
        )
        stmaker = scenario.stmaker
        data = stmaker_to_dict(stmaker)
        data["feature_keys"] = data["feature_keys"] + ["fuel"]
        with pytest.raises(ConfigError):
            stmaker_from_dict(data)  # registry lacking "fuel"
        rebuilt = stmaker_from_dict(data, registry=registry)
        assert "fuel" in rebuilt.registry
