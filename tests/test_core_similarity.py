"""Tests for the Eq. 3 weighted cosine similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import segment_similarities, weighted_cosine_similarity
from repro.exceptions import FeatureError

vec3 = st.lists(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=3, max_size=3
)
weights3 = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=3, max_size=3
)


class TestWeightedCosine:
    def test_identical_vectors(self):
        assert weighted_cosine_similarity([1, 2, 3], [1, 2, 3], [1, 1, 1]) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        assert weighted_cosine_similarity([1, 0], [-1, 0], [1, 1]) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        assert weighted_cosine_similarity([1, 0], [0, 1], [1, 1]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        a = weighted_cosine_similarity([1, 2], [2, 1], [1, 1])
        b = weighted_cosine_similarity([10, 20], [2, 1], [1, 1])
        assert a == pytest.approx(b)

    def test_zero_weight_removes_dimension(self):
        # With weight 0 on the second axis the vectors become parallel.
        s = weighted_cosine_similarity([1, 5], [1, -5], [1, 0])
        assert s == pytest.approx(1.0)

    def test_both_zero_vectors_are_identical(self):
        assert weighted_cosine_similarity([0, 0], [0, 0], [1, 1]) == 1.0

    def test_one_zero_vector_is_neutral(self):
        assert weighted_cosine_similarity([0, 0], [1, 1], [1, 1]) == 0.5

    def test_dimension_mismatch(self):
        with pytest.raises(FeatureError):
            weighted_cosine_similarity([1], [1, 2], [1, 1])

    def test_negative_weight_rejected(self):
        with pytest.raises(FeatureError):
            weighted_cosine_similarity([1], [1], [-1])

    def test_subnormal_weight_stays_symmetric(self):
        # w=5e-324 underflows (w*a)*b differently from (w*b)*a; the
        # peak-rescaling inside the similarity keeps it symmetric.
        u, v, w = [0.0, 3.0, 0.0], [0.0, 1.5, 0.0], [0.0, 5e-324, 0.0]
        assert weighted_cosine_similarity(u, v, w) == pytest.approx(1.0)
        assert weighted_cosine_similarity(v, u, w) == pytest.approx(1.0)

    @given(vec3, vec3, weights3)
    def test_range_and_symmetry(self, u, v, w):
        s = weighted_cosine_similarity(u, v, w)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(weighted_cosine_similarity(v, u, w))

    @given(vec3, weights3)
    def test_self_similarity_is_max(self, u, w):
        s = weighted_cosine_similarity(u, u, w)
        assert s == pytest.approx(1.0)


class TestSegmentSimilarities:
    def test_pairwise_count(self):
        vectors = [[1, 0], [1, 0], [0, 1]]
        sims = segment_similarities(vectors, [1, 1])
        assert len(sims) == 2
        assert sims[0] == pytest.approx(1.0)
        assert sims[1] == pytest.approx(0.5)

    def test_single_vector(self):
        assert segment_similarities([[1, 2]], [1, 1]) == []
