"""Tests for geographic bounding boxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo import BoundingBox, GeoPoint

lat = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)
lon = st.floats(min_value=-170.0, max_value=170.0, allow_nan=False)


class TestBoundingBox:
    def test_degenerate_box_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(10.0, 0.0, 5.0, 1.0)

    def test_point_box_allowed(self):
        box = BoundingBox(1.0, 2.0, 1.0, 2.0)
        assert box.contains(GeoPoint(1.0, 2.0))

    def test_from_points(self):
        pts = [GeoPoint(1.0, 5.0), GeoPoint(-2.0, 7.0), GeoPoint(0.5, 6.0)]
        box = BoundingBox.from_points(pts)
        assert box == BoundingBox(-2.0, 5.0, 1.0, 7.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([])

    def test_contains_boundary(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(1.0, 1.0))
        assert not box.contains(GeoPoint(1.0001, 0.5))

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center == GeoPoint(1.0, 2.0)

    def test_expanded(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(0.5)
        assert box == BoundingBox(-0.5, -0.5, 1.5, 1.5)

    def test_intersects_overlapping(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 3.0)
        assert not a.intersects(b)

    def test_intersects_touching_edge(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)

    @given(st.lists(st.tuples(lat, lon), min_size=1, max_size=20))
    def test_from_points_contains_all(self, coords):
        pts = [GeoPoint(la, lo) for la, lo in coords]
        box = BoundingBox.from_points(pts)
        assert all(box.contains(p) for p in pts)
