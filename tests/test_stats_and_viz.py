"""Tests for scenario statistics and ASCII rendering."""

import numpy as np
import pytest

from repro.exceptions import ConfigError, GeometryError
from repro.simulate.stats import (
    corpus_statistics,
    landmark_statistics,
    network_statistics,
)
from repro.viz import render_summary_map, render_trajectory


class TestNetworkStatistics:
    def test_city_statistics(self, city):
        stats = network_statistics(city)
        assert stats.nodes == city.node_count
        assert stats.edges == city.edge_count
        assert stats.total_length_km > 10.0
        assert sum(stats.length_share_by_grade.values()) == pytest.approx(1.0)
        assert 0.0 < stats.one_way_share < 0.5

    def test_empty_network_rejected(self, projector):
        from repro.roadnet import RoadNetwork

        with pytest.raises(ConfigError):
            network_statistics(RoadNetwork(projector))


class TestCorpusStatistics:
    def test_corpus(self, scenario):
        rng = np.random.default_rng(3)
        trips = scenario.simulate_trips(10, rng=rng)
        stats = corpus_statistics(trips, scenario.network)
        assert stats.trips == 10
        assert stats.mean_samples_per_trip > 10
        assert stats.mean_length_km > 1.0
        assert 5.0 < stats.mean_speed_kmh < 120.0
        assert 0.0 <= stats.trips_with_stops <= 1.0

    def test_empty_rejected(self, scenario):
        with pytest.raises(ConfigError):
            corpus_statistics([], scenario.network)


class TestLandmarkStatistics:
    def test_scenario_landmarks(self, scenario):
        stats = landmark_statistics(scenario.landmarks)
        assert stats["total"] == len(scenario.landmarks)
        assert stats["poi_clusters"] + stats["turning_points"] == stats["total"]
        assert stats["significance_max"] == 1.0


class TestAsciiRendering:
    def test_render_trajectory_shape(self, scenario):
        rng = np.random.default_rng(4)
        trip = scenario.simulate_trips(1, rng=rng)[0]
        canvas = render_trajectory(scenario.network, trip.raw, width=60, height=20)
        assert len(canvas.rows) == 20
        assert all(len(row) == 60 for row in canvas.rows)
        joined = "\n".join(canvas.rows)
        assert "*" in joined  # the track is drawn
        assert "." in joined or ":" in joined  # roads are drawn

    def test_mentioned_landmarks_lettered(self, scenario):
        rng = np.random.default_rng(5)
        trip = scenario.simulate_trips(1, rng=rng)[0]
        summary = scenario.stmaker.summarize(trip.raw, k=2)
        canvas = render_summary_map(
            scenario.network, trip.raw, summary, scenario.landmarks
        )
        assert canvas.legend
        assert canvas.legend[0] == "landmarks:"
        assert any("A = " in line for line in canvas.legend)
        assert "A" in canvas.text()

    def test_canvas_too_small_rejected(self, scenario):
        rng = np.random.default_rng(6)
        trip = scenario.simulate_trips(1, rng=rng)[0]
        with pytest.raises(GeometryError):
            render_trajectory(scenario.network, trip.raw, width=5, height=2)
