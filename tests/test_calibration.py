"""Tests for anchor-based calibration."""

import pytest

from repro.calibration import AnchorCalibrator, CalibrationConfig
from repro.exceptions import CalibrationError
from repro.geo import GeoPoint, LocalProjector
from repro.landmarks import Landmark, LandmarkIndex, LandmarkKind
from repro.trajectory import RawTrajectory, TrajectoryPoint, downsample_by_time

CENTER = GeoPoint(39.91, 116.40)


@pytest.fixture(scope="module")
def projector():
    return LocalProjector(CENTER)


@pytest.fixture(scope="module")
def landmarks(projector):
    """Three landmarks on the x axis, 500 m apart, plus one far away."""
    coords = [(0.0, 0.0), (500.0, 0.0), (1000.0, 0.0), (5000.0, 5000.0)]
    lms = [
        Landmark(i, projector.to_point(x, y), f"L{i}", LandmarkKind.TURNING_POINT)
        for i, (x, y) in enumerate(coords)
    ]
    return LandmarkIndex(lms, projector)


def straight_trip(projector, speed_ms=10.0, spacing_m=50.0, length_m=1000.0, y_offset=5.0):
    """A trajectory driving east along y = y_offset."""
    n = int(length_m / spacing_m) + 1
    return RawTrajectory(
        [
            TrajectoryPoint(
                projector.to_point(i * spacing_m, y_offset), i * spacing_m / speed_ms
            )
            for i in range(n)
        ],
        "trip",
    )


class TestConfig:
    def test_invalid_values(self):
        with pytest.raises(CalibrationError):
            CalibrationConfig(search_radius_m=0.0)
        with pytest.raises(CalibrationError):
            CalibrationConfig(revisit_gap_s=-1.0)


class TestCalibration:
    def test_anchors_in_order(self, landmarks, projector):
        calibrator = AnchorCalibrator(landmarks)
        symbolic = calibrator.calibrate(straight_trip(projector))
        assert symbolic.landmark_ids() == [0, 1, 2]

    def test_times_interpolated(self, landmarks, projector):
        calibrator = AnchorCalibrator(landmarks)
        symbolic = calibrator.calibrate(straight_trip(projector, speed_ms=10.0))
        times = [e.t for e in symbolic]
        # 500 m at 10 m/s: anchors at ~0, ~50, ~100 seconds.
        assert times[0] == pytest.approx(0.0, abs=1.0)
        assert times[1] == pytest.approx(50.0, abs=1.0)
        assert times[2] == pytest.approx(100.0, abs=1.0)

    def test_far_landmark_excluded(self, landmarks, projector):
        calibrator = AnchorCalibrator(landmarks)
        symbolic = calibrator.calibrate(straight_trip(projector))
        assert 3 not in symbolic.landmark_ids()

    def test_radius_controls_matching(self, landmarks, projector):
        tight = AnchorCalibrator(landmarks, CalibrationConfig(search_radius_m=3.0))
        # The trip runs at y = 5, so a 3 m radius sees no landmark.
        with pytest.raises(CalibrationError):
            tight.calibrate(straight_trip(projector, y_offset=5.0))

    def test_sampling_rate_invariance(self, landmarks, projector):
        """Paper Sec. II-A: different sampling, same symbolic trajectory."""
        calibrator = AnchorCalibrator(landmarks)
        dense = straight_trip(projector, spacing_m=10.0)
        sparse = downsample_by_time(dense, 20.0)  # every 200 m
        sym_dense = calibrator.calibrate(dense)
        sym_sparse = calibrator.calibrate(sparse)
        assert sym_dense.landmark_ids() == sym_sparse.landmark_ids()
        for a, b in zip(sym_dense, sym_sparse):
            assert a.t == pytest.approx(b.t, abs=2.0)

    def test_revisit_detected(self, landmarks, projector):
        # Drive 0 -> 1000 m then back to 0: landmarks 0,1,2 then 1,0 again.
        out = straight_trip(projector, spacing_m=50.0)
        back_points = [
            TrajectoryPoint(
                projector.to_point(1000.0 - i * 50.0, 5.0), 100.0 + i * 5.0
            )
            for i in range(1, 21)
        ]
        round_trip = RawTrajectory(list(out.points) + back_points, "round")
        calibrator = AnchorCalibrator(landmarks)
        symbolic = calibrator.calibrate(round_trip)
        assert symbolic.landmark_ids() == [0, 1, 2, 1, 0]

    def test_quick_jitter_not_a_revisit(self, landmarks, projector):
        # Hovering near landmark 1 for a few samples must yield one anchor.
        pts = [
            TrajectoryPoint(projector.to_point(480.0 + 5 * (i % 3), 5.0), i * 2.0)
            for i in range(10
            )
        ]
        pts.append(TrajectoryPoint(projector.to_point(1000.0, 5.0), 60.0))
        trip = RawTrajectory(pts, "jitter")
        symbolic = AnchorCalibrator(landmarks).calibrate(trip)
        assert symbolic.landmark_ids() == [1, 2]

    def test_too_few_anchors_raises(self, landmarks, projector):
        pts = [
            TrajectoryPoint(projector.to_point(3000.0, 3000.0), 0.0),
            TrajectoryPoint(projector.to_point(3100.0, 3000.0), 10.0),
        ]
        with pytest.raises(CalibrationError):
            AnchorCalibrator(landmarks).calibrate(RawTrajectory(pts, "lost"))

    def test_landmark_between_sparse_samples_found(self, landmarks, projector):
        # Samples at x = -200 and x = 700 only: landmarks 0 and 1 sit inside
        # the single long leg and must still be detected.
        pts = [
            TrajectoryPoint(projector.to_point(-200.0, 5.0), 0.0),
            TrajectoryPoint(projector.to_point(700.0, 5.0), 90.0),
            TrajectoryPoint(projector.to_point(1100.0, 5.0), 130.0),
        ]
        symbolic = AnchorCalibrator(landmarks).calibrate(RawTrajectory(pts, "sparse"))
        assert symbolic.landmark_ids() == [0, 1, 2]
