"""The versioned city-model artifact: codecs, fingerprints, cache, atomicity.

The load-bearing properties:

* **round-trip** — train → save → load yields a model that produces
  byte-identical summaries on a seeded corpus, for both codecs;
* **fingerprint** — codec-independent content identity, verified on
  load, so truncation/tampering is an :class:`ArtifactError`, never a
  silently different model;
* **cache** — one rebuild per ``(path, fingerprint)`` per process;
* **atomic writes** — a save that dies mid-write (simulated by making
  the final rename fail) leaves the previous artifact intact and no
  temp debris behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.artifact import (
    ARTIFACT_FORMATS,
    BINARY_MAGIC,
    artifact_cache_clear,
    artifact_cache_size,
    artifact_info,
    cached_stmaker,
    compute_fingerprint,
    ensure_artifact,
    load_artifact,
    save_artifact,
)
from repro.core import load_stmaker, save_stmaker
from repro.core.persistence import stmaker_to_dict
from repro.exceptions import ArtifactError, ConfigError


@pytest.fixture()
def stmaker(scenario):
    return scenario.stmaker


@pytest.fixture()
def trips(scenario):
    rng = np.random.default_rng(42)
    return [
        scenario.simulate_trips(1, depart_time=(7.0 + 0.5 * i) * 3600.0, rng=rng)[
            0
        ].raw
        for i in range(5)
    ]


def _texts(stmaker, trips):
    return [stmaker.summarize(t, k=2).text for t in trips]


# -- round-trips --------------------------------------------------------------


@pytest.mark.parametrize("format", ARTIFACT_FORMATS)
def test_round_trip_identical_summaries(stmaker, trips, tmp_path, format):
    path = tmp_path / f"model.{format}"
    info = save_artifact(stmaker, path, format=format)
    loaded, loaded_info = load_artifact(path)
    assert _texts(loaded, trips) == _texts(stmaker, trips)
    assert info.format == loaded_info.format == format
    assert info.fingerprint == loaded_info.fingerprint


def test_format_inferred_from_extension(stmaker, tmp_path):
    json_info = save_artifact(stmaker, tmp_path / "m.json")
    bin_info = save_artifact(stmaker, tmp_path / "m.stm")
    assert json_info.format == "json"
    assert bin_info.format == "binary"
    # The JSON file really is JSON; the binary file really leads with magic.
    assert json.loads((tmp_path / "m.json").read_text())["version"] == 1
    assert (tmp_path / "m.stm").read_bytes()[: len(BINARY_MAGIC)] == BINARY_MAGIC


def test_load_sniffs_codec_regardless_of_extension(stmaker, trips, tmp_path):
    path = tmp_path / "model.json"  # lying extension: binary content
    save_artifact(stmaker, path, format="binary")
    loaded, info = load_artifact(path)
    assert info.format == "binary"
    assert _texts(loaded, trips[:1]) == _texts(stmaker, trips[:1])


def test_unknown_format_rejected(stmaker, tmp_path):
    with pytest.raises(ArtifactError, match="unknown artifact format"):
        save_artifact(stmaker, tmp_path / "m.bin", format="msgpack")


def test_save_load_stmaker_wrappers(stmaker, trips, tmp_path):
    save_stmaker(stmaker, tmp_path / "m.json")
    save_stmaker(stmaker, tmp_path / "m.stm")
    for name in ("m.json", "m.stm"):
        assert _texts(load_stmaker(tmp_path / name), trips[:2]) == _texts(
            stmaker, trips[:2]
        )


def test_legacy_fingerprintless_json_still_loads(stmaker, trips, tmp_path):
    """Files written before fingerprints existed load (and verify) fine."""
    path = tmp_path / "old.json"
    path.write_text(json.dumps(stmaker_to_dict(stmaker)), encoding="utf-8")
    loaded, info = load_artifact(path)
    assert _texts(loaded, trips[:1]) == _texts(stmaker, trips[:1])
    assert info.fingerprint == compute_fingerprint(stmaker_to_dict(stmaker))


def test_unsupported_version_raises_config_error(stmaker, tmp_path):
    data = stmaker_to_dict(stmaker)
    data["version"] = 99
    path = tmp_path / "future.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    with pytest.raises(ConfigError, match="format version"):
        load_artifact(path)


# -- fingerprints -------------------------------------------------------------


def test_fingerprint_is_codec_independent(stmaker, tmp_path):
    a = save_artifact(stmaker, tmp_path / "a.json")
    b = save_artifact(stmaker, tmp_path / "b.stm")
    assert a.fingerprint == b.fingerprint
    assert len(a.fingerprint) == 64  # sha256 hex


def test_fingerprint_ignores_key_order():
    data = {"version": 1, "alpha": [1, 2], "beta": {"x": 1.5}}
    shuffled = {"beta": {"x": 1.5}, "alpha": [1, 2], "version": 1}
    assert compute_fingerprint(data) == compute_fingerprint(shuffled)
    assert compute_fingerprint({**data, "fingerprint": "zzz"}) == (
        compute_fingerprint(data)
    )


def test_artifact_info_reads_binary_header_only(stmaker, tmp_path):
    path = tmp_path / "m.stm"
    saved = save_artifact(stmaker, path)
    info = artifact_info(path)
    assert info == saved
    assert info.size_bytes == path.stat().st_size


def test_truncated_binary_rejected(stmaker, tmp_path):
    path = tmp_path / "m.stm"
    save_artifact(stmaker, path)
    raw = path.read_bytes()
    bad = tmp_path / "truncated.stm"
    bad.write_bytes(raw[:-20])
    with pytest.raises(ArtifactError, match="truncated"):
        load_artifact(bad)


def test_tampered_binary_payload_rejected(stmaker, tmp_path):
    path = tmp_path / "m.stm"
    save_artifact(stmaker, path)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip one payload bit, keep the length
    bad = tmp_path / "tampered.stm"
    bad.write_bytes(bytes(raw))
    with pytest.raises(ArtifactError):
        load_artifact(bad)


def test_tampered_json_rejected(stmaker, tmp_path):
    path = tmp_path / "m.json"
    save_artifact(stmaker, path)
    data = json.loads(path.read_text())
    data["config"]["ca"] = data["config"]["ca"] + 1.0  # content/fingerprint split
    path.write_text(json.dumps(data))
    with pytest.raises(ArtifactError, match="fingerprint mismatch"):
        load_artifact(path)


def test_garbage_file_rejected(tmp_path):
    path = tmp_path / "garbage.stm"
    path.write_bytes(b"\x00\x01\x02 definitely not an artifact")
    with pytest.raises(ArtifactError):
        load_artifact(path)
    with pytest.raises(ArtifactError):
        load_artifact(tmp_path / "does-not-exist.stm")


# -- per-process cache --------------------------------------------------------


def test_cached_stmaker_loads_once_per_fingerprint(stmaker, tmp_path):
    artifact_cache_clear()
    path = tmp_path / "m.stm"
    info = save_artifact(stmaker, path)
    first = cached_stmaker(path, info.fingerprint)
    second = cached_stmaker(path, info.fingerprint)
    assert first is second
    assert artifact_cache_size() == 1

    # Republishing different content under the same path is a new entry,
    # not a stale hit.
    import dataclasses
    sibling = stmaker.with_config(dataclasses.replace(stmaker.config, ca=0.33))
    new_info = save_artifact(sibling, path)
    assert new_info.fingerprint != info.fingerprint
    third = cached_stmaker(path, new_info.fingerprint)
    assert third is not first
    assert artifact_cache_size() == 2
    artifact_cache_clear()
    assert artifact_cache_size() == 0


def test_cached_stmaker_rejects_stale_fingerprint(stmaker, tmp_path):
    artifact_cache_clear()
    path = tmp_path / "m.stm"
    save_artifact(stmaker, path)
    with pytest.raises(ArtifactError, match="expected fingerprint"):
        cached_stmaker(path, "0" * 64)
    artifact_cache_clear()


def test_ensure_artifact_is_memoized(stmaker, tmp_path):
    first = ensure_artifact(stmaker, directory=tmp_path)
    second = ensure_artifact(stmaker, directory=tmp_path)
    assert first.path == second.path
    assert first.fingerprint == second.fingerprint
    assert Path(first.path).exists()
    assert first.format == "binary"


# -- atomic writes (crash-safety satellite) -----------------------------------


@pytest.mark.parametrize("format", ARTIFACT_FORMATS)
def test_failed_save_leaves_previous_artifact_intact(
    stmaker, trips, tmp_path, monkeypatch, format
):
    """A save that dies at the final rename must be a no-op on the target."""
    path = tmp_path / f"model.{format}"
    save_artifact(stmaker, path, format=format)
    before = path.read_bytes()

    def exploding_replace(src, dst):
        raise OSError("disk died mid-save")

    monkeypatch.setattr(os, "replace", exploding_replace)
    import dataclasses
    victim = stmaker.with_config(dataclasses.replace(stmaker.config, ca=0.9))
    with pytest.raises(OSError, match="disk died"):
        save_artifact(victim, path, format=format)
    monkeypatch.undo()

    assert path.read_bytes() == before  # previous version untouched
    assert [p.name for p in tmp_path.iterdir()] == [path.name]  # no temp debris
    loaded, _ = load_artifact(path)
    assert _texts(loaded, trips[:1]) == _texts(stmaker, trips[:1])


def test_failed_first_save_leaves_no_file(stmaker, tmp_path, monkeypatch):
    path = tmp_path / "model.stm"

    monkeypatch.setattr(os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("boom")))
    with pytest.raises(OSError):
        save_stmaker(stmaker, path)
    monkeypatch.undo()

    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
