"""Tests for GeoPoint and bearing arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geo import GeoPoint, bearing_deg, destination_point, haversine_m, heading_change_deg

finite_lat = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
finite_lon = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(39.9383, 116.339)
        assert p.lat == 39.9383
        assert p.lon == 116.339

    def test_as_tuple(self):
        assert GeoPoint(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(GeometryError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            GeoPoint(0.0, 180.5)
        with pytest.raises(GeometryError):
            GeoPoint(0.0, -181.0)

    def test_boundary_values_accepted(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_is_hashable_and_equal_by_value(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_str_rounds_to_six_decimals(self):
        assert str(GeoPoint(39.9383, 116.339)) == "(39.938300, 116.339000)"


class TestBearing:
    def test_due_north(self):
        assert bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(1.0, 0.0)) == pytest.approx(0.0)

    def test_due_east(self):
        assert bearing_deg(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0)) == pytest.approx(90.0)

    def test_due_south(self):
        assert bearing_deg(GeoPoint(1.0, 0.0), GeoPoint(0.0, 0.0)) == pytest.approx(180.0)

    def test_due_west(self):
        assert bearing_deg(GeoPoint(0.0, 1.0), GeoPoint(0.0, 0.0)) == pytest.approx(270.0)

    @given(finite_lat, finite_lon, finite_lat, finite_lon)
    def test_bearing_always_in_range(self, lat1, lon1, lat2, lon2):
        b = bearing_deg(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert 0.0 <= b < 360.0


class TestHeadingChange:
    def test_identical_headings(self):
        assert heading_change_deg(45.0, 45.0) == 0.0

    def test_reversal_is_180(self):
        assert heading_change_deg(10.0, 190.0) == pytest.approx(180.0)

    def test_wraps_across_north(self):
        assert heading_change_deg(350.0, 10.0) == pytest.approx(20.0)

    @given(
        st.floats(min_value=0.0, max_value=360.0),
        st.floats(min_value=0.0, max_value=360.0),
    )
    def test_folded_range_and_symmetry(self, a, b):
        change = heading_change_deg(a, b)
        assert 0.0 <= change <= 180.0
        assert change == pytest.approx(heading_change_deg(b, a))


class TestDestinationPoint:
    def test_roundtrip_distance(self):
        origin = GeoPoint(39.91, 116.40)
        dest = destination_point(origin, 37.0, 1_000.0)
        assert haversine_m(origin, dest) == pytest.approx(1_000.0, rel=1e-6)

    def test_zero_distance_is_identity(self):
        origin = GeoPoint(39.91, 116.40)
        dest = destination_point(origin, 123.0, 0.0)
        assert haversine_m(origin, dest) < 1e-6

    @given(
        st.floats(min_value=0.0, max_value=359.9),
        st.floats(min_value=1.0, max_value=50_000.0),
    )
    def test_bearing_roundtrip(self, bearing, distance):
        origin = GeoPoint(39.91, 116.40)
        dest = destination_point(origin, bearing, distance)
        assert heading_change_deg(bearing_deg(origin, dest), bearing) < 0.5
