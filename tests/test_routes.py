"""Tests for the transfer network, popular-route miner, and feature map."""

import pytest

from repro.exceptions import ConfigError
from repro.routes import HistoricalFeatureMap, PopularRouteMiner, TransferNetwork
from repro.trajectory import SymbolicEntry, SymbolicTrajectory


def symbolic(ids):
    return SymbolicTrajectory([SymbolicEntry(i, float(k)) for k, i in enumerate(ids)])


class TestTransferNetwork:
    def test_counts_accumulate(self):
        tn = TransferNetwork()
        tn.add_transition(1, 2)
        tn.add_transition(1, 2, count=3)
        assert tn.transition_count(1, 2) == 4
        assert tn.total_transitions == 4

    def test_nonpositive_count_ignored(self):
        tn = TransferNetwork()
        tn.add_transition(1, 2, count=0)
        assert tn.transition_count(1, 2) == 0

    def test_add_trajectory(self):
        tn = TransferNetwork()
        tn.add_trajectory(symbolic([1, 2, 3, 2]))
        assert tn.transition_count(1, 2) == 1
        assert tn.transition_count(2, 3) == 1
        assert tn.transition_count(3, 2) == 1
        assert tn.out_degree(2) == 1

    def test_probability(self):
        tn = TransferNetwork()
        tn.add_transition(1, 2, count=3)
        tn.add_transition(1, 3, count=1)
        assert tn.transition_probability(1, 2) == pytest.approx(0.75)
        assert tn.transition_probability(1, 9) == 0.0
        assert tn.transition_probability(9, 1) == 0.0

    def test_landmarks_and_edges(self):
        tn = TransferNetwork()
        tn.add_trajectories([symbolic([1, 2]), symbolic([2, 3])])
        assert tn.landmarks() == {1, 2, 3}
        assert sorted(tn.edges()) == [(1, 2, 1), (2, 3, 1)]


class TestPopularRouteMiner:
    def build(self):
        """History: 10 trajectories A->B->D, 2 trajectories A->C->D."""
        tn = TransferNetwork()
        for _ in range(10):
            tn.add_trajectory(symbolic(["A", "B", "D"]))
        for _ in range(2):
            tn.add_trajectory(symbolic(["A", "C", "D"]))
        return tn

    def test_majority_route_wins(self):
        miner = PopularRouteMiner(self.build())
        assert miner.popular_route("A", "D") == ["A", "B", "D"]

    def test_source_equals_target(self):
        miner = PopularRouteMiner(self.build())
        assert miner.popular_route("A", "A") == ["A"]

    def test_unreachable_returns_none(self):
        miner = PopularRouteMiner(self.build())
        assert miner.popular_route("D", "A") is None
        assert miner.popular_route("A", "Z") is None

    def test_min_support_filters_rare_edges(self):
        # Direct hop: probability 4/9 = 0.44; two-hop alternative:
        # 5/9 * 5/50 = 0.056.  By probability the direct hop wins, but with
        # min_support = 5 its 4 observations fall below the threshold and the
        # supported two-hop route is returned instead.
        tn = TransferNetwork()
        tn.add_transition("A", "D", count=4)
        tn.add_transition("A", "B", count=5)
        tn.add_transition("B", "D", count=5)
        tn.add_transition("B", "X", count=45)
        assert PopularRouteMiner(tn).popular_route("A", "D") == ["A", "D"]
        miner = PopularRouteMiner(tn, min_support=5)
        assert miner.popular_route("A", "D") == ["A", "B", "D"]

    def test_invalid_min_support(self):
        with pytest.raises(ConfigError):
            PopularRouteMiner(TransferNetwork(), min_support=0)

    def test_popularity_product(self):
        miner = PopularRouteMiner(self.build())
        p_top = miner.route_popularity(["A", "B", "D"])
        p_alt = miner.route_popularity(["A", "C", "D"])
        assert p_top > p_alt > 0.0
        assert miner.route_popularity(["A", "Z"]) == 0.0
        assert miner.route_popularity(["A"]) == 1.0

    def test_longer_but_more_popular_beats_direct(self):
        tn = TransferNetwork()
        # Direct hop A->D exists but is rare; the two-hop route dominates.
        tn.add_transition("A", "D", count=1)
        tn.add_transition("A", "B", count=20)
        tn.add_transition("B", "D", count=20)
        tn.add_transition("B", "X", count=1)
        miner = PopularRouteMiner(tn)
        route = miner.popular_route("A", "D")
        assert route == ["A", "B", "D"]


class TestHistoricalFeatureMap:
    def test_mean_per_edge(self):
        fm = HistoricalFeatureMap()
        fm.add_observation(1, 2, {"speed": 10.0})
        fm.add_observation(1, 2, {"speed": 20.0})
        assert fm.regular_value(1, 2, "speed") == pytest.approx(15.0)
        assert fm.observation_count(1, 2, "speed") == 2

    def test_global_fallback(self):
        fm = HistoricalFeatureMap()
        fm.add_observation(1, 2, {"speed": 10.0})
        fm.add_observation(3, 4, {"speed": 30.0})
        # Edge (5, 6) unseen: fall back to the global mean.
        assert fm.regular_value(5, 6, "speed") == pytest.approx(20.0)

    def test_unknown_feature_returns_none(self):
        fm = HistoricalFeatureMap()
        fm.add_observation(1, 2, {"speed": 10.0})
        assert fm.regular_value(1, 2, "stays") is None
        assert fm.global_average("stays") is None

    def test_has_edge_and_count(self):
        fm = HistoricalFeatureMap()
        assert not fm.has_edge(1, 2)
        fm.add_observation(1, 2, {"speed": 1.0})
        assert fm.has_edge(1, 2)
        assert not fm.has_edge(2, 1)
        assert fm.edge_count == 1

    def test_multi_feature_observation(self):
        fm = HistoricalFeatureMap()
        fm.add_observation(1, 2, {"speed": 12.0, "stays": 1.0})
        assert fm.regular_value(1, 2, "stays") == 1.0
        assert fm.observation_count(1, 2, "speed") == 1
