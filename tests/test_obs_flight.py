"""Tests for the black-box flight recorder (repro.obs.flight)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.exceptions import TransientError
from repro.obs.flight import FlightRecorder
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable_flight_recorder()
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()
    yield
    obs.disable_flight_recorder()
    obs.disable_events()
    obs.disable_tracing()
    obs.disable_metrics()


def _read_dump(path) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


class TestRing:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=4, trigger_kinds=frozenset())
        bus = obs.enable_events()
        bus.subscribe(recorder)
        for i in range(10):
            bus.emit("progress", done=i)
        assert len(recorder) == 4
        assert recorder.events_seen == 10
        assert [e.payload["done"] for e in recorder.tail()] == [6, 7, 8, 9]

    def test_tail_n_semantics(self):
        recorder = FlightRecorder(capacity=8, trigger_kinds=frozenset())
        bus = obs.enable_events()
        bus.subscribe(recorder)
        for i in range(5):
            bus.emit("progress", done=i)
        assert [e.payload["done"] for e in recorder.tail(2)] == [3, 4]
        assert len(recorder.tail(100)) == 5
        assert recorder.tail(0) == []
        recorder.clear()
        assert len(recorder) == 0 and recorder.events_seen == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)


class TestTriggers:
    def test_quarantine_event_freezes_a_capture(self):
        recorder = FlightRecorder(capacity=16)
        bus = obs.enable_events()
        bus.subscribe(recorder)
        bus.emit("batch_start", items=1)
        bus.emit("quarantine", trajectory_id="t-1", error_type="Boom",
                 error="stage exploded")
        [capture] = recorder.captures
        assert capture["trigger"]["kind"] == "quarantine"
        assert capture["trigger"]["payload"]["error"] == "stage exploded"
        kinds = [e["kind"] for e in capture["events"]]
        assert kinds == ["batch_start", "quarantine"]

    def test_non_trigger_kinds_do_not_capture(self):
        recorder = FlightRecorder(capacity=16)
        bus = obs.enable_events()
        bus.subscribe(recorder)
        bus.emit("progress", done=1)
        bus.emit("stage_end", duration_ms=1.0, status="ok")
        assert not recorder.captures

    def test_manual_capture_includes_spans_when_tracing(self):
        obs.enable_tracing()
        with obs.span("partition", k=2):
            pass
        recorder = FlightRecorder(capacity=4)
        capture = recorder.capture()
        assert capture is not None and capture["trigger"] is None
        assert [s["name"] for s in capture["spans"]] == ["partition"]

    def test_max_dumps_budget_suppresses_a_storm(self):
        recorder = FlightRecorder(capacity=4, max_dumps=2)
        bus = obs.enable_events()
        bus.subscribe(recorder)
        for i in range(5):
            bus.emit("quarantine", trajectory_id=f"t-{i}", error_type="Boom")
        assert len(recorder.captures) == 2
        assert recorder.suppressed == 3
        assert recorder.capture() is None, "manual captures obey the budget too"

    def test_dump_file_written_and_parseable(self, tmp_path):
        recorder = FlightRecorder(capacity=8, dump_dir=tmp_path / "flight")
        bus = obs.enable_events()
        bus.subscribe(recorder)
        bus.emit("retry", trajectory_id="trip/42", attempt=1)
        bus.emit("quarantine", trajectory_id="trip/42", error_type="Boom")
        [path] = recorder.dump_paths
        assert "trip-42" in path, "trajectory id is slugified into the name"
        records = _read_dump(path)
        header, body = records[0], records[1:]
        assert header["record"] == "flight"
        assert header["trigger"]["kind"] == "quarantine"
        assert header["events"] == 2
        assert [r["kind"] for r in body if r["record"] == "event"] == [
            "retry", "quarantine",
        ]

    def test_unwritable_dump_dir_is_absorbed(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        recorder = FlightRecorder(capacity=4, dump_dir=blocker)
        bus = obs.enable_events()
        bus.subscribe(recorder)
        bus.emit("quarantine", trajectory_id="t-1", error_type="Boom")
        assert recorder.dump_paths == []
        assert len(recorder.captures) == 1, "the in-memory capture survives"


class TestEnableDisable:
    def test_enable_subscribes_and_is_idempotent(self):
        recorder = obs.enable_flight_recorder(capacity=8)
        assert obs.flight_recorder() is recorder
        again = obs.enable_flight_recorder(recorder)
        assert again is recorder
        obs.emit_event("progress", done=1)
        assert recorder.events_seen == 1, "re-enabling must not double-deliver"

    def test_disable_unsubscribes(self):
        recorder = obs.enable_flight_recorder(capacity=8)
        obs.disable_flight_recorder()
        assert obs.flight_recorder() is None
        obs.emit_event("progress", done=1)
        assert recorder.events_seen == 0

    def test_replacing_recorder_unsubscribes_the_old_one(self):
        old = obs.enable_flight_recorder(capacity=8)
        new = obs.enable_flight_recorder(FlightRecorder(capacity=8))
        obs.emit_event("progress", done=1)
        assert new.events_seen == 1 and old.events_seen == 0


@pytest.fixture(scope="module")
def base_trip(scenario):
    rng = np.random.default_rng(505)
    return scenario.simulate_trips(1, depart_time=9 * 3600.0, rng=rng)[0]


class TestPipelineIntegration:
    def test_fault_injected_quarantine_dumps_the_failing_items_events(
        self, scenario, base_trip, tmp_path
    ):
        recorder = obs.enable_flight_recorder(dump_dir=tmp_path)
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=None)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                [base_trip.raw],
                retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
            )
        assert result.quarantined_count == 1
        assert recorder.dump_paths, "the quarantine must produce a dump"
        records = _read_dump(recorder.dump_paths[0])
        trip_id = base_trip.raw.trajectory_id
        events = [r for r in records if r["record"] == "event"]
        own = [e for e in events if e["trajectory_id"] == trip_id]
        kinds = {e["kind"] for e in own}
        assert "quarantine" in kinds
        assert "retry" in kinds, "the dump shows what led up to the failure"
        [q] = [e for e in own if e["kind"] == "quarantine"]
        assert q["payload"]["error_type"] == "TransientError"
        assert q["payload"]["error"], "quarantine events carry the message"

    def test_degradation_triggers_a_capture(self, scenario, base_trip):
        recorder = obs.enable_flight_recorder(capacity=64)
        injector = FaultInjector.raising("partition")
        with injector.installed(scenario.stmaker):
            scenario.stmaker.summarize(base_trip.raw, k=2)
        assert recorder.captures
        assert recorder.captures[-1]["trigger"]["kind"] == "degradation"

    def test_sharded_pool_quarantines_dump_too(self, scenario, tmp_path):
        rng = np.random.default_rng(506)
        trips = [
            t.raw
            for t in scenario.simulate_trips(4, depart_time=10 * 3600.0, rng=rng)
        ]
        recorder = obs.enable_flight_recorder(dump_dir=tmp_path)
        injector = FaultInjector(
            [FaultSpec(stage="extract", error=TransientError, times=None)]
        )
        with injector.installed(scenario.stmaker):
            result = scenario.stmaker.summarize_many(
                trips, workers=2, retry=RetryPolicy(max_retries=0),
            )
        assert result.quarantined_count == 4
        assert len(recorder.dump_paths) == 4, "worker-thread failures dump too"
