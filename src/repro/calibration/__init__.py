"""Anchor-based calibration of raw trajectories to the landmark set."""

from repro.calibration.anchor import AnchorCalibrator, CalibrationConfig

__all__ = ["AnchorCalibrator", "CalibrationConfig"]
