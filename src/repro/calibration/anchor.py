"""Anchor-based trajectory calibration (paper Sec. II-A, after [31]).

Rewrites a raw trajectory into a symbolic trajectory by aligning it to the
stable landmark set: every landmark the route passes within a search radius
becomes an anchor, time-stamped by linear interpolation along the raw
polyline.  Because anchors are properties of the *route*, two trajectories
recorded over the same route under different sampling strategies calibrate
to (nearly) the same symbolic trajectory — the invariance the paper needs.

Revisits are preserved: if a trajectory passes the same landmark twice
(e.g. around a U-turn), the candidate passes are clustered in time and each
cluster yields its own anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CalibrationError
from repro.geo import point_segment_distance_m
from repro.landmarks import LandmarkId, LandmarkIndex
from repro.obs import metrics, span
from repro.trajectory.model import RawTrajectory, SymbolicEntry, SymbolicTrajectory


@dataclass(frozen=True, slots=True)
class CalibrationConfig:
    """Parameters of anchor-based calibration."""

    #: A landmark becomes an anchor when the route passes within this radius.
    search_radius_m: float = 80.0
    #: Candidate passes of the same landmark separated by more than this gap
    #: are treated as distinct visits (keeps loops and U-turns visible).
    revisit_gap_s: float = 45.0

    def __post_init__(self) -> None:
        if self.search_radius_m <= 0.0:
            raise CalibrationError("search radius must be positive")
        if self.revisit_gap_s <= 0.0:
            raise CalibrationError("revisit gap must be positive")


@dataclass(frozen=True, slots=True)
class _Candidate:
    landmark: LandmarkId
    t: float
    distance_m: float


class AnchorCalibrator:
    """Calibrates raw trajectories against a fixed landmark set."""

    def __init__(
        self, landmarks: LandmarkIndex, config: CalibrationConfig | None = None
    ) -> None:
        self.landmarks = landmarks
        self.config = config or CalibrationConfig()

    def calibrate(self, trajectory: RawTrajectory) -> SymbolicTrajectory:
        """Rewrite *trajectory* into a symbolic trajectory.

        Raises :class:`CalibrationError` when fewer than two anchors are
        found — such a trajectory is too far from every landmark to
        summarize meaningfully.
        """
        m = metrics()
        with span(
            "calibrate",
            trajectory_id=trajectory.trajectory_id,
            points=len(trajectory.points),
        ) as sp:
            candidates = self._collect_candidates(trajectory)
            anchors = self._cluster_passes(candidates)
            anchors.sort(key=lambda c: c.t)
            entries: list[SymbolicEntry] = []
            for candidate in anchors:
                if entries and entries[-1].landmark == candidate.landmark:
                    continue  # collapse consecutive duplicates
                entries.append(SymbolicEntry(candidate.landmark, candidate.t))
            m.counter("calibration.calls").inc()
            if len(entries) < 2:
                m.counter("calibration.failures").inc()
                raise CalibrationError(
                    f"trajectory {trajectory.trajectory_id!r} produced "
                    f"{len(entries)} anchor(s); need at least 2"
                )
            sp.set_tag("anchors", len(entries))
            m.histogram(
                "calibration.landmarks_matched", buckets=(2, 5, 10, 20, 40, 80)
            ).observe(len(entries))
            return SymbolicTrajectory(entries, trajectory.trajectory_id)

    def _collect_candidates(self, trajectory: RawTrajectory) -> list[_Candidate]:
        """Every (landmark, interpolated pass time, distance) within reach.

        Each raw polyline leg is tested against the landmarks near its start
        point; the query radius is padded by the leg length so landmarks
        closest to the middle of a long leg are not missed.
        """
        projector = self.landmarks.projector
        radius = self.config.search_radius_m
        out: list[_Candidate] = []
        for a, b in zip(trajectory.points, trajectory.points[1:]):
            leg_m = projector.distance_m(a.point, b.point)
            nearby = self.landmarks.within(a.point, radius + leg_m)
            for _, landmark in nearby:
                dist, frac = point_segment_distance_m(
                    landmark.point, a.point, b.point, projector
                )
                if dist > radius:
                    continue
                t = a.t + frac * (b.t - a.t)
                out.append(_Candidate(landmark.landmark_id, t, dist))
        return out

    def _cluster_passes(self, candidates: list[_Candidate]) -> list[_Candidate]:
        """Reduce per-leg candidates to one anchor per distinct landmark pass.

        Candidates of the same landmark are sorted by time and split where
        consecutive candidate times differ by more than ``revisit_gap_s``;
        within each pass, the geometrically closest candidate wins.
        """
        by_landmark: dict[LandmarkId, list[_Candidate]] = {}
        for candidate in candidates:
            by_landmark.setdefault(candidate.landmark, []).append(candidate)
        anchors: list[_Candidate] = []
        for passes in by_landmark.values():
            passes.sort(key=lambda c: c.t)
            group = [passes[0]]
            for candidate in passes[1:]:
                if candidate.t - group[-1].t > self.config.revisit_gap_s:
                    anchors.append(min(group, key=lambda c: c.distance_m))
                    group = [candidate]
                else:
                    group.append(candidate)
            anchors.append(min(group, key=lambda c: c.distance_m))
        return anchors
