"""ASCII tables for the experiment results — the benches print these."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table; floats rendered at 3 decimals."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_ff_table(
    row_labels: Sequence[str],
    ff_rows: Sequence[dict[str, float]],
    feature_keys: Sequence[str],
    label_header: str,
    title: str = "",
) -> str:
    """Feature-frequency table: one row per label, one column per feature."""
    short = {
        "grade_of_road": "GR",
        "road_width": "RW",
        "traffic_direction": "TD",
        "speed": "Spe",
        "stay_points": "Stay",
        "u_turns": "U-turn",
        "speed_changes": "SpeC",
    }
    headers = [label_header] + [short.get(k, k) for k in feature_keys]
    rows = [
        [label] + [ff[k] for k in feature_keys]
        for label, ff in zip(row_labels, ff_rows)
    ]
    return format_table(headers, rows, title)
