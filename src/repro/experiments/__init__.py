"""Experiment harness: FF metric, per-figure runners, simulated user study."""

from repro.experiments.ff import feature_frequency, landmark_usage
from repro.experiments.userstudy import (
    GradedSummary,
    ReaderConfig,
    grade_summary,
    level_histogram,
    run_user_study,
)
from repro.experiments.runners import (
    CaseStudyResult,
    EfficiencyResult,
    LandmarkUsageResult,
    PartitionSizeSweepResult,
    TimeOfDayResult,
    UserStudyResult,
    WeightSweepResult,
    run_case_study,
    run_efficiency,
    run_feature_weight_sweep,
    run_landmark_usage,
    run_partition_size_sweep,
    run_time_of_day,
    run_user_study_experiment,
)
from repro.experiments.reporting import format_ff_table, format_table

__all__ = [
    "feature_frequency",
    "landmark_usage",
    "ReaderConfig",
    "GradedSummary",
    "grade_summary",
    "run_user_study",
    "level_histogram",
    "CaseStudyResult",
    "run_case_study",
    "TimeOfDayResult",
    "run_time_of_day",
    "LandmarkUsageResult",
    "run_landmark_usage",
    "WeightSweepResult",
    "run_feature_weight_sweep",
    "PartitionSizeSweepResult",
    "run_partition_size_sweep",
    "UserStudyResult",
    "run_user_study_experiment",
    "EfficiencyResult",
    "run_efficiency",
    "format_table",
    "format_ff_table",
]
