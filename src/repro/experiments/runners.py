"""Per-figure experiment runners (paper Sec. VII).

Each runner regenerates the data behind one figure of the evaluation
section and returns a typed result object that the benchmark harness
renders as a table.  All runners take the scenario plus explicit sizes so
benchmarks can trade accuracy for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import SummarizerConfig, TrajectorySummary
from repro.exceptions import CalibrationError, ConfigError
from repro.obs import timed_span
from repro.experiments.ff import feature_frequency, landmark_usage
from repro.experiments.userstudy import (
    GradedSummary,
    level_histogram,
    run_user_study,
)
from repro.features import SPEED
from repro.simulate import CityScenario, SimulatedTrip, TripConfig, TripSimulator
from repro.trajectory import SymbolicTrajectory


def _summarize_trips(
    stmaker, trips: list[SimulatedTrip], k: int | None = None
) -> list[TrajectorySummary]:
    """Summaries of all calibratable trips."""
    out = []
    for trip in trips:
        try:
            out.append(stmaker.summarize(trip.raw, k=k))
        except CalibrationError:
            continue
    return out


# -- Fig. 6: case study -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CaseStudyResult:
    """One trajectory summarized at increasing granularities (Fig. 6)."""

    trip: SimulatedTrip
    summaries: dict[int, TrajectorySummary]


def run_case_study(scenario: CityScenario, ks: tuple[int, ...] = (1, 2, 3)) -> CaseStudyResult:
    """Summarize one eventful trip at each granularity of *ks*.

    Mirrors Fig. 6: the same trajectory described at k = 1, 2, 3, with more
    detail appearing as k grows.  The trip is chosen to contain stay points
    and a U-turn, like the paper's example.
    """
    config = TripConfig(u_turn_probability=1.0)
    simulator = TripSimulator(scenario.network, scenario.traffic, config)
    rng = np.random.default_rng(2015)
    for _ in range(40):
        origin, destination = scenario.fleet.sample_od(rng)
        trip = simulator.simulate(origin, destination, 8.25 * 3600.0, rng)
        if not trip.stops or not trip.u_turns:
            continue
        try:
            summaries = {
                k: scenario.stmaker.summarize(trip.raw, k=k) for k in ks
            }
        except CalibrationError:
            continue
        return CaseStudyResult(trip, summaries)
    raise ConfigError("could not find an eventful, calibratable case-study trip")


# -- Fig. 8: feature frequencies across the day ---------------------------------------


@dataclass(frozen=True, slots=True)
class TimeOfDayResult:
    """FF of every feature per two-hour bin (Fig. 8)."""

    bin_labels: list[str]
    ff_by_bin: list[dict[str, float]]
    feature_keys: list[str]

    def daytime_mean(self, key: str) -> float:
        """Mean FF of *key* over the 6:00-18:00 bins."""
        return float(np.mean([self.ff_by_bin[i][key] for i in range(3, 9)]))

    def night_mean(self, key: str) -> float:
        """Mean FF of *key* over the 18:00-6:00 bins."""
        idx = [9, 10, 11, 0, 1, 2]
        return float(np.mean([self.ff_by_bin[i][key] for i in idx]))


def run_time_of_day(
    scenario: CityScenario, trips_per_bin: int = 30, seed: int = 8
) -> TimeOfDayResult:
    """FF per feature for each of the 12 two-hour bins of the day."""
    keys = scenario.registry.keys()
    labels = []
    rows = []
    rng = np.random.default_rng(seed)
    for bin_index in range(12):
        hour = bin_index * 2 + 1  # bin centre
        labels.append(f"{bin_index * 2:02d}:00-{bin_index * 2 + 2:02d}:00")
        trips = scenario.simulate_trips(
            trips_per_bin, depart_time=hour * 3600.0, rng=rng
        )
        summaries = _summarize_trips(scenario.stmaker, trips)
        rows.append(feature_frequency(summaries, keys))
    return TimeOfDayResult(labels, rows, keys)


# -- Fig. 9: landmark usage by significance decile ---------------------------------------


@dataclass(frozen=True, slots=True)
class LandmarkUsageResult:
    """Usage share of each significance decile in the summaries (Fig. 9)."""

    decile_share: list[float]  # index 0 = top 0-10 % significance

    def top_decile_share(self) -> float:
        return self.decile_share[0]

    def top3_share(self) -> float:
        return sum(self.decile_share[:3])


def run_landmark_usage(
    scenario: CityScenario, n_trips: int = 150, seed: int = 9, k: int = 4
) -> LandmarkUsageResult:
    """Which significance deciles the summary landmarks come from (Fig. 9).

    Following the paper's protocol exactly: for each summarized trajectory,
    *its own* landmarks are sorted by significance and split into ten
    groups (top 0-10 %, 10-20 %, ...); every landmark the summary mentions
    (partition endpoints) is attributed to its group, and the usage share
    of each group is reported over the whole summary dataset.
    """
    rng = np.random.default_rng(seed)
    trips = scenario.simulate_trips(n_trips, rng=rng)
    stmaker = scenario.stmaker
    counts = [0] * 10
    for trip in trips:
        try:
            symbolic = stmaker.calibrator.calibrate(trip.raw)
        except CalibrationError:
            continue
        features = stmaker.pipeline.extract(trip.raw, symbolic)
        spans = stmaker.partition(symbolic, features, k=k)
        # Rank the trajectory's landmarks by significance (descending).
        route_ids = symbolic.landmark_ids()
        by_sig = sorted(
            range(len(route_ids)),
            key=lambda i: -scenario.landmarks.get(route_ids[i]).significance,
        )
        decile_of_position = {}
        for rank, position in enumerate(by_sig):
            decile_of_position[position] = min(9, rank * 10 // len(route_ids))
        mentioned_positions = {0, len(route_ids) - 1}
        mentioned_positions.update(span.end_landmark_index for span in spans[:-1])
        for position in mentioned_positions:
            counts[decile_of_position[position]] += 1
    total = sum(counts)
    if total == 0:
        raise ConfigError("no landmark usage recorded")
    return LandmarkUsageResult([c / total for c in counts])


# -- Fig. 10(a): effect of the Spe feature weight ------------------------------------------


@dataclass(frozen=True, slots=True)
class WeightSweepResult:
    """FF per feature at each tested weight of Spe (Fig. 10(a))."""

    weights: list[float]
    ff_by_weight: list[dict[str, float]]
    feature_keys: list[str]


def run_feature_weight_sweep(
    scenario: CityScenario,
    weights: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0),
    n_trips: int = 100,
    seed: int = 10,
) -> WeightSweepResult:
    """Sweep the weight of the speed feature, all else at defaults."""
    rng = np.random.default_rng(seed)
    trips = scenario.simulate_trips(n_trips, rng=rng)
    keys = scenario.registry.keys()
    rows = []
    for weight in weights:
        stmaker = scenario.summarizer_with(
            SummarizerConfig(feature_weights={SPEED: weight})
        )
        summaries = _summarize_trips(stmaker, trips)
        rows.append(feature_frequency(summaries, keys))
    return WeightSweepResult(list(weights), rows, keys)


# -- Fig. 10(b): effect of the partition size k ----------------------------------------------


@dataclass(frozen=True, slots=True)
class PartitionSizeSweepResult:
    """FF per feature at each partition size k (Fig. 10(b))."""

    ks: list[int]
    ff_by_k: list[dict[str, float]]
    feature_keys: list[str]
    routing_keys: list[str]
    moving_keys: list[str]

    def routing_mean(self, row: int) -> float:
        return float(np.mean([self.ff_by_k[row][k] for k in self.routing_keys]))

    def moving_mean(self, row: int) -> float:
        return float(np.mean([self.ff_by_k[row][k] for k in self.moving_keys]))


def run_partition_size_sweep(
    scenario: CityScenario,
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    n_trips: int = 100,
    seed: int = 11,
) -> PartitionSizeSweepResult:
    """Sweep the requested partition count k over a fixed trip set.

    Trips are drawn longer than the default corpus so that even ``k = 7``
    partitions span several segments each — matching the paper's setting,
    where trajectories have dozens of landmarks.
    """
    from repro.simulate import FleetConfig

    rng = np.random.default_rng(seed)
    long_fleet = scenario.fleet.with_config(FleetConfig(min_trip_m=3_000.0))
    trips = long_fleet.generate(n_trips, rng, id_prefix="sweep")
    keys = scenario.registry.keys()
    rows = []
    for k in ks:
        summaries = _summarize_trips(scenario.stmaker, trips, k=k)
        rows.append(feature_frequency(summaries, keys))
    return PartitionSizeSweepResult(
        list(ks), rows, keys,
        scenario.registry.routing_keys(), scenario.registry.moving_keys(),
    )


# -- Fig. 11: user study ---------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class UserStudyResult:
    """Understanding-level histogram of the simulated user study (Fig. 11)."""

    histogram: dict[int, float]
    grades: list[GradedSummary]


def run_user_study_experiment(
    scenario: CityScenario,
    n_summaries: int = 450,
    n_readers: int = 30,
    seed: int = 12,
) -> UserStudyResult:
    """The paper's protocol: 450 summaries graded by 30 (simulated) readers."""
    rng = np.random.default_rng(seed)
    trips = scenario.simulate_trips(n_summaries, rng=rng)
    pairs = []
    for trip in trips:
        try:
            pairs.append((trip, scenario.stmaker.summarize(trip.raw)))
        except CalibrationError:
            continue
    grades = run_user_study(pairs, scenario.landmarks, n_readers, rng)
    return UserStudyResult(level_histogram(grades), grades)


# -- Fig. 12: summarization time cost ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EfficiencyResult:
    """Mean per-trajectory summarization cost (Fig. 12)."""

    by_size: list[tuple[str, float]]  # (|T| bucket label, mean ms)
    by_k: list[tuple[int, float]]     # (k, mean ms)


def run_efficiency(
    scenario: CityScenario,
    n_trips: int = 60,
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    seed: int = 13,
) -> EfficiencyResult:
    """Time a single-trajectory summarization versus |T| and versus k."""
    rng = np.random.default_rng(seed)
    trips = scenario.simulate_trips(n_trips, rng=rng)
    calibrated: list[tuple[SimulatedTrip, SymbolicTrajectory]] = []
    for trip in trips:
        try:
            calibrated.append((trip, scenario.stmaker.calibrator.calibrate(trip.raw)))
        except CalibrationError:
            continue

    # |T| buckets of width 10 landmarks.  ``timed_span`` is the same timer
    # the pipeline instrumentation uses, so these experiment timings appear
    # as ``experiment.summarize`` spans in any active trace.
    buckets: dict[int, list[float]] = {}
    for trip, symbolic in calibrated:
        with timed_span("experiment.summarize", size=len(symbolic)) as timer:
            scenario.stmaker.summarize_calibrated(trip.raw, symbolic)
        buckets.setdefault(len(symbolic) // 10, []).append(timer.ms)
    by_size = [
        (f"{bucket * 10}-{bucket * 10 + 9}", float(np.mean(times)))
        for bucket, times in sorted(buckets.items())
    ]

    by_k = []
    sample = calibrated[: min(20, len(calibrated))]
    for k in ks:
        times = []
        for trip, symbolic in sample:
            with timed_span("experiment.summarize", k=k) as timer:
                scenario.stmaker.summarize_calibrated(trip.raw, symbolic, k=k)
            times.append(timer.ms)
        by_k.append((k, float(np.mean(times))))
    return EfficiencyResult(by_size, by_k)
