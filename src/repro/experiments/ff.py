"""Feature frequency (FF), the paper's central evaluation metric.

``FF_f = (# summaries containing f) / (# total summaries)`` — the fraction
of the summary dataset in which feature *f* was selected at least once
(Sec. VII-C.2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.types import TrajectorySummary
from repro.exceptions import ConfigError


def feature_frequency(
    summaries: Sequence[TrajectorySummary], keys: Iterable[str]
) -> dict[str, float]:
    """FF of each feature key over *summaries*."""
    summaries = list(summaries)
    if not summaries:
        raise ConfigError("feature frequency needs at least one summary")
    out = {}
    for key in keys:
        hits = sum(1 for s in summaries if key in s.selected_feature_keys())
        out[key] = hits / len(summaries)
    return out


def landmark_usage(summaries: Sequence[TrajectorySummary]) -> dict[str, int]:
    """How often each landmark name is mentioned across *summaries*."""
    counts: dict[str, int] = {}
    for summary in summaries:
        for name in summary.mentioned_landmark_names():
            counts[name] = counts.get(name, 0) + 1
    return counts
