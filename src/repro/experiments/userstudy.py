"""Simulated-reader user study (substitute for paper Fig. 11).

The paper asked 30 volunteers to read 450 summaries and grade their
understanding of the trajectory on a 4-level scale.  Offline we cannot run
a human study, so a *simulated reader* grades each summary against the
simulator's ground truth — measuring the same construct (does the summary
convey where and how the object travelled?):

* **coverage** — were the notable ground-truth behaviours (long stops,
  U-turns, abnormal speed) conveyed?
* **orientation** — are the mentioned landmarks significant enough to
  anchor a mental map of *where* the trip went?
* **readability** — is the text digestibly short?

A per-reader leniency offset models grader disagreement.  Scores map onto
the paper's four levels; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import TrajectorySummary
from repro.exceptions import ConfigError
from repro.landmarks import LandmarkIndex
from repro.simulate.vehicles import SimulatedTrip


@dataclass(frozen=True, slots=True)
class ReaderConfig:
    """Weights of the simulated reader's grading rubric."""

    coverage_weight: float = 0.45
    orientation_weight: float = 0.30
    readability_weight: float = 0.25
    #: Stops shorter than this (total) are not worth mentioning.
    notable_stop_s: float = 150.0
    #: Speed deviating from regular by more than this fraction is notable.
    notable_speed_deviation: float = 0.35
    #: Words per partition beyond which readability starts to suffer.
    comfortable_words_per_partition: int = 40
    #: Std-dev of per-reader leniency.
    reader_sigma: float = 0.06

    def __post_init__(self) -> None:
        total = self.coverage_weight + self.orientation_weight + self.readability_weight
        if abs(total - 1.0) > 1e-9:
            raise ConfigError("rubric weights must sum to 1")


@dataclass(frozen=True, slots=True)
class GradedSummary:
    """One summary's rubric breakdown and final level (1..4)."""

    trajectory_id: str
    coverage: float
    orientation: float
    readability: float
    score: float
    level: int


def _coverage_score(
    trip: SimulatedTrip, summary: TrajectorySummary, config: ReaderConfig
) -> float:
    """Fraction of notable ground-truth behaviours the text conveys."""
    notable = 0
    conveyed = 0
    total_stop = sum(s.duration_s for s in trip.stops)
    if total_stop >= config.notable_stop_s:
        notable += 1
        if "staying point" in summary.text:
            conveyed += 1
    if trip.u_turns:
        notable += 1
        if "U-turn" in summary.text:
            conveyed += 1
    # Abnormal speed: any partition whose observed speed deviates from the
    # regular value by more than the threshold should be narrated.
    speed_assessments = [
        a
        for p in summary.partitions
        for a in p.assessments
        if a.key == "speed" and a.regular > 0
    ]
    deviating = [
        a
        for a in speed_assessments
        if abs(a.observed - a.regular) / max(a.observed, a.regular)
        >= config.notable_speed_deviation
    ]
    if deviating:
        notable += 1
        if "km/h" in summary.text:
            conveyed += 1
    if notable == 0:
        return 1.0
    return conveyed / notable


def _orientation_score(summary: TrajectorySummary, landmarks: LandmarkIndex) -> float:
    """How recognizable the mentioned places are (mean significance)."""
    by_name = {lm.name: lm.significance for lm in landmarks}
    scores = [
        by_name.get(name, 0.0) for name in summary.mentioned_landmark_names()
    ]
    if not scores:
        return 0.0
    mean = sum(scores) / len(scores)
    # Significance is long-tailed; even moderately known anchors orient a
    # reader, so saturate well below the city's single most famous place.
    return min(1.0, 0.45 + 2.5 * mean)


def _readability_score(summary: TrajectorySummary, config: ReaderConfig) -> float:
    words = len(summary.text.split())
    per_partition = words / max(1, summary.partition_count)
    if per_partition <= config.comfortable_words_per_partition:
        return 1.0
    # Linear penalty: twice the comfortable length reads at half quality.
    return max(0.0, 1.0 - (per_partition / config.comfortable_words_per_partition - 1.0))


def grade_summary(
    trip: SimulatedTrip,
    summary: TrajectorySummary,
    landmarks: LandmarkIndex,
    leniency: float = 0.0,
    config: ReaderConfig | None = None,
) -> GradedSummary:
    """Grade one summary against its trip's ground truth."""
    config = config or ReaderConfig()
    coverage = _coverage_score(trip, summary, config)
    orientation = _orientation_score(summary, landmarks)
    readability = _readability_score(summary, config)
    score = (
        config.coverage_weight * coverage
        + config.orientation_weight * orientation
        + config.readability_weight * readability
        + leniency
    )
    if score >= 0.80:
        level = 4
    elif score >= 0.60:
        level = 3
    elif score >= 0.40:
        level = 2
    else:
        level = 1
    return GradedSummary(
        summary.trajectory_id, coverage, orientation, readability, score, level
    )


def run_user_study(
    graded_pairs: list[tuple[SimulatedTrip, TrajectorySummary]],
    landmarks: LandmarkIndex,
    n_readers: int,
    rng: np.random.Generator,
    config: ReaderConfig | None = None,
) -> list[GradedSummary]:
    """Distribute summaries round-robin over *n_readers* simulated readers.

    Mirrors the paper's protocol (450 summaries, 30 readers, 15 each);
    each reader has a fixed leniency drawn once.
    """
    if n_readers < 1:
        raise ConfigError("need at least one reader")
    config = config or ReaderConfig()
    leniencies = rng.normal(0.0, config.reader_sigma, size=n_readers)
    out = []
    for i, (trip, summary) in enumerate(graded_pairs):
        reader = i % n_readers
        out.append(
            grade_summary(trip, summary, landmarks, float(leniencies[reader]), config)
        )
    return out


def level_histogram(grades: list[GradedSummary]) -> dict[int, float]:
    """Fraction of summaries at each understanding level (1..4)."""
    if not grades:
        raise ConfigError("cannot build a histogram from zero grades")
    out = {level: 0.0 for level in (1, 2, 3, 4)}
    for grade in grades:
        out[grade.level] += 1
    return {level: count / len(grades) for level, count in out.items()}
