"""repro — reproduction of "Making Sense of Trajectory Data" (ICDE 2015).

The library implements STMaker, the partition-and-summarization framework
that turns a raw GPS trajectory into a short natural-language summary, plus
every substrate the paper depends on: a road network with routing, landmark
extraction (POI clustering and turning points), HITS-like landmark
significance, anchor-based calibration, HMM map matching, popular-route
mining, historical feature maps, and a taxi-fleet simulator standing in for
the paper's Beijing datasets.

Quickstart::

    from repro import CityScenario, ScenarioConfig

    scenario = CityScenario.build(ScenarioConfig(seed=7))
    trip = scenario.simulate_trip()
    summary = scenario.stmaker.summarize(trip.raw, k=2)
    print(summary.text)
"""

from repro.exceptions import (
    CalibrationError,
    ConfigError,
    DeadlineExceeded,
    FeatureError,
    GeometryError,
    MapMatchError,
    NoPathError,
    PartitionError,
    ReproError,
    RoadNetworkError,
    SummarizationError,
    TrajectoryError,
    TransientError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GeometryError",
    "RoadNetworkError",
    "NoPathError",
    "TrajectoryError",
    "CalibrationError",
    "MapMatchError",
    "FeatureError",
    "PartitionError",
    "SummarizationError",
    "TransientError",
    "DeadlineExceeded",
    "ConfigError",
    "CityScenario",
    "ScenarioConfig",
    "STMaker",
    "SummarizerConfig",
    "__version__",
]


def __getattr__(name: str):
    # Heavy public entry points are imported lazily so that
    # ``import repro`` stays cheap for users of a single substrate.
    if name in ("CityScenario", "ScenarioConfig"):
        from repro.simulate import scenario as _scenario

        return getattr(_scenario, name)
    if name == "STMaker":
        from repro.core.summarizer import STMaker as _STMaker

        return _STMaker
    if name == "SummarizerConfig":
        from repro.core.config import SummarizerConfig as _SummarizerConfig

        return _SummarizerConfig
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
