"""Artifact codecs, fingerprints, atomic IO, and the per-process cache.

The on-disk schema is the versioned dict produced by
:func:`repro.core.persistence.stmaker_to_dict` — one schema, two codecs:

* **json** — the legacy human-readable format (``*.json``).  The
  fingerprint travels as a top-level ``"fingerprint"`` key and covers the
  canonical (sorted-keys, no-whitespace) serialization of everything
  else, so re-encoding the same model always fingerprints identically.
  Files written before fingerprints existed load fine — their
  fingerprint is computed on read instead of verified.
* **binary** — ``BINARY_MAGIC`` + one JSON header line (format version,
  codec, payload size, fingerprint) + a pickle-protocol-5 payload of the
  same dict.  The header is designed to be readable without unpickling:
  :func:`artifact_info` on a binary artifact costs one ``readline``.
  The fingerprint is the SHA-256 of the payload bytes.

Both codecs write atomically (temp file in the destination directory,
fsync, ``os.replace``) and verify the fingerprint on load, so a partially
written or corrupted file is an :class:`~repro.exceptions.ArtifactError`,
never a silently wrong model.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass
from pathlib import Path

from repro.core.persistence import stmaker_from_dict, stmaker_to_dict
from repro.exceptions import ArtifactError
from repro.features import FeatureRegistry
from repro.obs import metrics

#: Leading bytes of a binary city-model artifact (8 bytes, version-tagged).
BINARY_MAGIC = b"REPROCM1"

ARTIFACT_FORMATS = ("json", "binary")

_PICKLE_PROTOCOL = 5


@dataclass(frozen=True, slots=True)
class ArtifactInfo:
    """Identity of one artifact file: where, which codec, which content."""

    path: str
    format: str  # "json" | "binary"
    #: SHA-256 hex digest of the serialized model content.
    fingerprint: str
    #: Schema version of the embedded model dict.
    version: int
    size_bytes: int

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "format": self.format,
            "fingerprint": self.fingerprint,
            "version": self.version,
            "size_bytes": self.size_bytes,
        }


def _infer_format(path: Path, format: str | None) -> str:
    if format is None:
        format = "json" if path.suffix.lower() == ".json" else "binary"
    if format not in ARTIFACT_FORMATS:
        raise ArtifactError(
            f"unknown artifact format {format!r}; expected one of {ARTIFACT_FORMATS}"
        )
    return format


def compute_fingerprint(data: dict) -> str:
    """Canonical content fingerprint of a model dict (codec-independent).

    SHA-256 over the sorted-keys compact JSON of the dict (minus any
    embedded ``"fingerprint"``), so the same trained state fingerprints
    identically no matter which codec carried it or what key order the
    producer used.
    """
    body = {key: value for key, value in data.items() if key != "fingerprint"}
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* via temp file + rename in one directory.

    Either *path* ends up as the complete new content, or it is left
    exactly as it was (absent, or the previous version) — a crash between
    the write and the rename leaves only a stray ``*.tmp`` that this
    function also removes on its own failures.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_artifact(stmaker, path: str | Path, *, format: str | None = None) -> ArtifactInfo:
    """Persist a trained STMaker to *path*; returns the artifact identity.

    *format* defaults by extension: ``*.json`` writes the JSON codec,
    anything else the binary codec.  The write is atomic (see
    :func:`_atomic_write_bytes`).
    """
    path = Path(path)
    format = _infer_format(path, format)
    data = stmaker_to_dict(stmaker)
    fingerprint = compute_fingerprint(data)
    if format == "json":
        data["fingerprint"] = fingerprint
        payload = json.dumps(data).encode("utf-8")
    else:
        body = pickle.dumps(data, protocol=_PICKLE_PROTOCOL)
        header = json.dumps({
            "format_version": int(data["version"]),
            "codec": f"pickle/{_PICKLE_PROTOCOL}",
            "fingerprint": fingerprint,
            "payload_bytes": len(body),
            "created_unix": time.time(),
        }).encode("ascii")
        payload = BINARY_MAGIC + b"\n" + header + b"\n" + body
    _atomic_write_bytes(path, payload)
    metrics().counter("artifact.saves").inc()
    return ArtifactInfo(
        str(path), format, fingerprint, int(data["version"]), len(payload)
    )


def _read_binary(path: Path) -> tuple[dict, dict]:
    """(header, model dict) of a binary artifact, fingerprint-verified."""
    with open(path, "rb") as fh:
        magic = fh.read(len(BINARY_MAGIC) + 1)
        if magic != BINARY_MAGIC + b"\n":
            raise ArtifactError(
                f"{path}: not a binary city-model artifact "
                f"(bad magic {magic[:8]!r})"
            )
        try:
            header = json.loads(fh.readline().decode("ascii"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ArtifactError(f"{path}: unreadable artifact header: {exc}") from exc
        body = fh.read()
    expected = int(header.get("payload_bytes", -1))
    if expected >= 0 and len(body) != expected:
        raise ArtifactError(
            f"{path}: truncated artifact payload "
            f"({len(body)} bytes, header says {expected})"
        )
    try:
        data = pickle.loads(body)
    except Exception as exc:
        raise ArtifactError(f"{path}: undecodable artifact payload: {exc}") from exc
    fingerprint = compute_fingerprint(data)
    if header.get("fingerprint") not in (None, fingerprint):
        raise ArtifactError(
            f"{path}: fingerprint mismatch — header says "
            f"{header['fingerprint']}, payload hashes to {fingerprint}"
        )
    header["fingerprint"] = fingerprint
    return header, data


def _read_json(path: Path) -> tuple[dict, dict]:
    """(pseudo-header, model dict) of a JSON artifact, fingerprint-verified."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ArtifactError(f"{path}: unreadable JSON artifact: {exc}") from exc
    if not isinstance(data, dict):
        raise ArtifactError(f"{path}: JSON artifact is not an object")
    fingerprint = compute_fingerprint(data)
    stored = data.pop("fingerprint", None)
    if stored is not None and stored != fingerprint:
        raise ArtifactError(
            f"{path}: fingerprint mismatch — file says {stored}, "
            f"content hashes to {fingerprint}"
        )
    header = {"format_version": data.get("version"), "fingerprint": fingerprint}
    return header, data


def _read(path: Path) -> tuple[str, dict, dict]:
    """Sniff the codec and return ``(format, header, model dict)``."""
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            lead = fh.read(len(BINARY_MAGIC))
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    if lead == BINARY_MAGIC:
        header, data = _read_binary(path)
        return "binary", header, data
    header, data = _read_json(path)
    return "json", header, data


def artifact_info(path: str | Path) -> ArtifactInfo:
    """Identity of the artifact at *path* without rebuilding the model.

    Binary artifacts answer from the header alone (one ``readline``);
    JSON artifacts are parsed and fingerprint-verified.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            lead = fh.read(len(BINARY_MAGIC) + 1)
            if lead == BINARY_MAGIC + b"\n":
                try:
                    header = json.loads(fh.readline().decode("ascii"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise ArtifactError(
                        f"{path}: unreadable artifact header: {exc}"
                    ) from exc
                return ArtifactInfo(
                    str(path), "binary",
                    str(header.get("fingerprint", "")),
                    int(header.get("format_version", 0)), size,
                )
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    header, _ = _read_json(path)
    return ArtifactInfo(
        str(path), "json", str(header["fingerprint"]),
        int(header.get("format_version") or 0), size,
    )


def load_artifact(
    path: str | Path, registry: FeatureRegistry | None = None
) -> tuple[object, ArtifactInfo]:
    """Rebuild the STMaker stored at *path*; returns ``(stmaker, info)``.

    Codec is sniffed from the file, the fingerprint is verified, and
    *registry* is forwarded for models trained with custom features (their
    extractors are code, not data — see
    :func:`repro.core.persistence.stmaker_from_dict`).
    """
    path = Path(path)
    format, header, data = _read(path)
    stmaker = stmaker_from_dict(data, registry=registry)
    metrics().counter("artifact.loads").inc()
    return stmaker, ArtifactInfo(
        str(path), format, str(header["fingerprint"]),
        int(data["version"]), path.stat().st_size,
    )


# -- per-process cache ---------------------------------------------------------

_cache_lock = threading.Lock()
_cache: dict[tuple[str, str], object] = {}


def cached_stmaker(
    path: str | Path,
    fingerprint: str | None = None,
    registry: FeatureRegistry | None = None,
):
    """The STMaker for *path*, loaded at most once per process.

    The cache key is ``(realpath, fingerprint)``: re-publishing a new
    model under the same filename is a cache miss (new fingerprint),
    while N shards handed to one worker process all share a single load.
    When *fingerprint* is given, the file's fingerprint must match — a
    worker handed a stale reference fails loudly instead of serving a
    different model than its parent intended.
    """
    real = os.path.realpath(os.fspath(path))
    if fingerprint is not None:
        key = (real, fingerprint)
        with _cache_lock:
            hit = _cache.get(key)
        if hit is not None:
            metrics().counter("artifact.cache.hits").inc()
            return hit
    stmaker, info = load_artifact(path, registry=registry)
    if fingerprint is not None and info.fingerprint != fingerprint:
        raise ArtifactError(
            f"{path}: expected fingerprint {fingerprint}, "
            f"file has {info.fingerprint}"
        )
    key = (real, info.fingerprint)
    with _cache_lock:
        cached = _cache.setdefault(key, stmaker)
    metrics().counter("artifact.cache.misses").inc()
    return cached


def artifact_cache_size() -> int:
    with _cache_lock:
        return len(_cache)


def artifact_cache_clear() -> None:
    with _cache_lock:
        _cache.clear()


# -- parent-side auto-publication ----------------------------------------------

_publish_lock = threading.Lock()
_published: "weakref.WeakKeyDictionary[object, ArtifactInfo]" = (
    weakref.WeakKeyDictionary()
)
_session_dir: str | None = None


def _session_artifact_dir() -> Path:
    global _session_dir
    with _publish_lock:
        if _session_dir is None:
            _session_dir = tempfile.mkdtemp(prefix="repro-city-model-")
            atexit.register(shutil.rmtree, _session_dir, ignore_errors=True)
    return Path(_session_dir)


def ensure_artifact(stmaker, *, directory: str | Path | None = None) -> ArtifactInfo:
    """Publish *stmaker* as a binary artifact, memoized per model object.

    The process executor's parent-side half: an in-memory model is saved
    once to a session temp directory (or *directory*), and every later
    batch against the same object reuses the file.  The memo assumes the
    trained state is immutable after construction — which it is; the only
    mutable STMaker attribute (``fault_injector``) is deliberately not
    part of the artifact and travels separately.
    """
    with _publish_lock:
        info = _published.get(stmaker)
    if info is not None and Path(info.path).exists():
        return info
    base = Path(directory) if directory is not None else _session_artifact_dir()
    data = stmaker_to_dict(stmaker)
    fingerprint = compute_fingerprint(data)
    path = base / f"city-model-{fingerprint[:16]}.stm"
    if path.exists():
        info = artifact_info(path)
    else:
        info = save_artifact(stmaker, path, format="binary")
    with _publish_lock:
        _published[stmaker] = info
    return info
