"""Versioned, immutable city-model artifacts.

Training an :class:`~repro.core.STMaker` calibrates a trajectory corpus
into a transfer network and a historical feature map — work worth doing
once.  This package freezes the whole trained world (road network, scored
landmarks, transfer network, feature map, configuration) into a single
**artifact file** with a content fingerprint, so a process-pool worker, a
remote shard, or tomorrow's serving job can rebuild the exact model the
parent trained without re-training or sharing memory:

* :func:`save_artifact` / :func:`load_artifact` — write/read an artifact
  in either the legacy JSON format or a compact binary format
  (pickle protocol 5 of the same versioned dict schema).  Writes are
  atomic: temp file in the target directory + ``os.replace``, so a crash
  mid-write never leaves a corrupt artifact behind;
* :func:`artifact_info` — path, format, version and fingerprint without
  rebuilding the model;
* :func:`cached_stmaker` — a per-process cache keyed by
  ``(path, fingerprint)``: N shards served by one worker process load
  and rebuild the model exactly once;
* :func:`ensure_artifact` — parent-side helper that persists an
  in-memory ``STMaker`` to a session-scoped temp artifact (memoized per
  model object), which is how ``executor="process"`` serving ships a
  model reference instead of the model itself.

See ``docs/SERVING.md`` ("The city-model artifact") for the train once →
save → serve many workflow.
"""

from repro.artifact.store import (
    ARTIFACT_FORMATS,
    BINARY_MAGIC,
    ArtifactInfo,
    artifact_cache_clear,
    artifact_cache_size,
    artifact_info,
    cached_stmaker,
    compute_fingerprint,
    ensure_artifact,
    load_artifact,
    save_artifact,
)

__all__ = [
    "ARTIFACT_FORMATS",
    "BINARY_MAGIC",
    "ArtifactInfo",
    "artifact_cache_clear",
    "artifact_cache_size",
    "artifact_info",
    "cached_stmaker",
    "compute_fingerprint",
    "ensure_artifact",
    "load_artifact",
    "save_artifact",
]
