"""Corpus and network statistics — the "dataset description" numbers.

The paper's Sec. VII-A describes its datasets (map size, landmark counts,
trajectory counts).  These helpers compute the equivalent statistics of a
scenario so EXPERIMENTS.md and the docs can report what the simulator
actually produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.landmarks import LandmarkKind
from repro.roadnet import RoadNetwork
from repro.simulate.vehicles import SimulatedTrip
from repro.trajectory import average_speed_ms


@dataclass(frozen=True, slots=True)
class NetworkStatistics:
    """Structural numbers of a road network."""

    nodes: int
    edges: int
    total_length_km: float
    length_share_by_grade: dict[str, float]
    one_way_share: float


def network_statistics(network: RoadNetwork) -> NetworkStatistics:
    """Compute :class:`NetworkStatistics` for *network*."""
    if network.edge_count == 0:
        raise ConfigError("cannot compute statistics of an empty network")
    total = 0.0
    by_grade: dict[str, float] = {}
    one_way = 0.0
    for edge in network.edges():
        total += edge.length_m
        name = edge.grade.display_name
        by_grade[name] = by_grade.get(name, 0.0) + edge.length_m
        if int(edge.direction) == 2:
            one_way += edge.length_m
    return NetworkStatistics(
        nodes=network.node_count,
        edges=network.edge_count,
        total_length_km=total / 1000.0,
        length_share_by_grade={g: l / total for g, l in by_grade.items()},
        one_way_share=one_way / total,
    )


@dataclass(frozen=True, slots=True)
class CorpusStatistics:
    """Aggregate numbers of a simulated trip corpus."""

    trips: int
    total_samples: int
    mean_samples_per_trip: float
    mean_duration_s: float
    mean_length_km: float
    mean_speed_kmh: float
    trips_with_stops: float
    trips_with_u_turns: float


def corpus_statistics(
    trips: list[SimulatedTrip], network: RoadNetwork
) -> CorpusStatistics:
    """Compute :class:`CorpusStatistics` for a trip corpus."""
    if not trips:
        raise ConfigError("cannot compute statistics of an empty corpus")
    projector = network.projector
    samples = [len(t.raw) for t in trips]
    durations = [t.raw.duration_s for t in trips]
    lengths = [t.raw.length_m(projector) / 1000.0 for t in trips]
    speeds = [average_speed_ms(t.raw.points, projector) * 3.6 for t in trips]
    return CorpusStatistics(
        trips=len(trips),
        total_samples=int(np.sum(samples)),
        mean_samples_per_trip=float(np.mean(samples)),
        mean_duration_s=float(np.mean(durations)),
        mean_length_km=float(np.mean(lengths)),
        mean_speed_kmh=float(np.mean(speeds)),
        trips_with_stops=float(np.mean([bool(t.stops) for t in trips])),
        trips_with_u_turns=float(np.mean([bool(t.u_turns) for t in trips])),
    )


def landmark_statistics(landmarks) -> dict[str, float]:
    """Counts and significance spread of a landmark dataset."""
    sigs = [lm.significance for lm in landmarks]
    if not sigs:
        raise ConfigError("cannot compute statistics of an empty landmark set")
    return {
        "total": len(sigs),
        "poi_clusters": sum(
            1 for lm in landmarks if lm.kind is LandmarkKind.POI_CLUSTER
        ),
        "turning_points": sum(
            1 for lm in landmarks if lm.kind is LandmarkKind.TURNING_POINT
        ),
        "significance_max": float(np.max(sigs)),
        "significance_median": float(np.median(sigs)),
    }
