"""Single-trip simulator with ground-truth event log.

Simulates one vehicle trip over the road network under the traffic model:
route choice with per-trip taste noise (so popular routes emerge from the
consistently attractive roads while individual trips vary), per-edge speeds
scaled by road grade / time of day / driver temperament, forced stops at
intersections, occasional mid-route U-turns with re-routing, and GPS
sampling with configurable interval and noise.

The returned :class:`SimulatedTrip` keeps the ground truth (route nodes,
stop events, U-turn events) so tests and the simulated user study can
verify what a summary *should* have reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError, NoPathError
from repro.geo import GeoPoint
from repro.roadnet import NodeId, RoadEdge, RoadNetwork, dijkstra
from repro.simulate.traffic import TrafficModel
from repro.trajectory import RawTrajectory, TrajectoryPoint


@dataclass(frozen=True, slots=True)
class StopEvent:
    """Ground truth: the vehicle was held still at a location."""

    location: GeoPoint
    t_start: float
    t_end: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True, slots=True)
class UTurnEvent:
    """Ground truth: the vehicle reversed direction mid-edge."""

    location: GeoPoint
    t: float


@dataclass(frozen=True, slots=True)
class SimulatedTrip:
    """One simulated trip: GPS output plus simulation ground truth."""

    raw: RawTrajectory
    origin: NodeId
    destination: NodeId
    depart_time: float
    route_nodes: list[NodeId]
    stops: list[StopEvent]
    u_turns: list[UTurnEvent]


@dataclass(frozen=True)
class TripConfig:
    """Knobs of the trip simulator."""

    sample_interval_s: float = 5.0
    gps_noise_m: float = 4.0
    #: Per-trip multiplicative taste noise on edge travel times (route
    #: diversity); 0 disables it.
    route_taste_noise: float = 0.25
    #: Driver speed temperament: multiplier drawn from N(1, this sigma).
    driver_sigma: float = 0.08
    #: Probability that a trip contains one U-turn episode (scaled up under
    #: daytime congestion, down at night).
    u_turn_probability: float = 0.12
    #: Forced-stop duration bounds (seconds).
    stop_duration_range: tuple[float, float] = (30.0, 90.0)
    #: Probability of a spontaneous mid-edge stop (parcel pickup, ...).
    mid_edge_stop_probability: float = 0.01
    #: Std-dev of the trip-level congestion multiplier.  Daytime congestion
    #: varies trip to trip (incidents, green waves); nights are stable
    #: because there is little congestion to vary.
    congestion_sigma: float = 0.35

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0.0:
            raise ConfigError("sample interval must be positive")
        if self.gps_noise_m < 0.0:
            raise ConfigError("GPS noise must be non-negative")
        lo, hi = self.stop_duration_range
        if not 0.0 < lo <= hi:
            raise ConfigError("invalid stop duration range")
        if not 0.0 <= self.u_turn_probability <= 1.0:
            raise ConfigError("u_turn_probability must lie in [0, 1]")


@dataclass(slots=True)
class _Waypoint:
    x: float
    y: float
    t: float


class TripSimulator:
    """Simulates trips on a road network under a traffic model."""

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficModel | None = None,
        config: TripConfig | None = None,
    ) -> None:
        self.network = network
        self.traffic = traffic or TrafficModel()
        self.config = config or TripConfig()

    # -- public API -----------------------------------------------------------

    def simulate(
        self,
        origin: NodeId,
        destination: NodeId,
        depart_time: float,
        rng: np.random.Generator,
        trajectory_id: str = "",
    ) -> SimulatedTrip:
        """Simulate one trip; raises :class:`NoPathError` if unroutable."""
        taste = self._taste_weights(rng, depart_time)
        _, route = dijkstra(self.network, origin, destination, weight=taste)
        driver = float(rng.normal(1.0, self.config.driver_sigma))
        driver = min(1.3, max(0.7, driver))
        # Trip-level congestion luck: scales the city congestion up or down
        # for the whole trip.
        congestion_scale = float(
            max(0.2, rng.normal(1.0, self.config.congestion_sigma))
        )

        waypoints: list[_Waypoint] = []
        stops: list[StopEvent] = []
        u_turns: list[UTurnEvent] = []
        t = depart_time
        self._emit(waypoints, route[0], t)

        # Wrong turns correlate with traffic stress: more likely by day.
        # A lost driver rarely recovers in one correction, so an episode
        # consists of one to three U-turns in quick succession.
        u_turn_p = self.config.u_turn_probability * (
            0.5 + 1.5 * self.traffic.congestion(depart_time)
        )
        u_turns_remaining = 0
        if rng.random() < min(1.0, u_turn_p) and len(route) >= 4:
            u_turns_remaining = int(rng.integers(1, 4))
        u_turn_hop = (
            int(rng.integers(len(route) // 3, max(len(route) // 3 + 1, 2 * len(route) // 3)))
            if u_turns_remaining
            else -1
        )

        i = 0
        visited_nodes = [route[0]]
        while i < len(route) - 1:
            u, v = route[i], route[i + 1]
            edge = self.network.edge_between(u, v)
            if edge is None:  # re-routing produced a stale hop; re-plan
                _, rest = dijkstra(self.network, u, route[-1], weight=taste)
                route = route[: i + 1] + rest[1:]
                continue
            if i == u_turn_hop:
                t = self._drive_u_turn(
                    waypoints, u_turns, edge, u, t, driver, congestion_scale, rng
                )
                # Re-plan from u as the driver corrects course.
                _, rest = dijkstra(self.network, u, route[-1], weight=taste)
                if len(rest) >= 2:
                    route = route[: i + 1] + rest[1:]
                u_turns_remaining -= 1
                if u_turns_remaining > 0 and len(route) - i > 3:
                    u_turn_hop = i + int(rng.integers(1, 3))
                else:
                    u_turn_hop = -1
                continue
            t = self._drive_edge(waypoints, edge, u, v, t, driver, congestion_scale, rng)
            visited_nodes.append(v)
            i += 1
            # Forced stop at the intersection just reached (not the last).
            if i < len(route) - 1 and rng.random() < self.traffic.stop_probability(t):
                t = self._dwell(waypoints, stops, v, t, rng)

        raw = self._sample(waypoints, rng, trajectory_id)
        return SimulatedTrip(
            raw, origin, route[-1], depart_time, visited_nodes, stops, u_turns
        )

    # -- internals ---------------------------------------------------------------

    def _taste_weights(self, rng: np.random.Generator, depart_time: float):
        """An anticipated-travel-time weight with per-trip taste noise.

        Drivers plan with the congestion they expect at departure, so rush-
        hour trips drift off the jammed arterials onto side streets while
        night trips take the big roads — the time-dependent route mix that
        the historical feature map (and Fig. 8) depends on.
        """
        # Day drivers detour around (perceived) jams, night drivers go
        # straight: taste noise scales with congestion at departure.
        noise = self.config.route_taste_noise * (
            0.5 + 1.6 * self.traffic.congestion(depart_time)
        )
        cache: dict[int, float] = {}

        def weight(edge: RoadEdge, src: NodeId, dst: NodeId) -> float:
            factor = cache.get(edge.edge_id)
            if factor is None:
                factor = float(rng.uniform(1.0 - noise, 1.0 + noise)) if noise else 1.0
                cache[edge.edge_id] = factor
            expected = self.traffic.edge_speed_factor(depart_time, edge.grade)
            speed_ms = edge.grade.free_flow_speed_kmh / 3.6 * expected
            return factor * edge.length_m / speed_ms

        return weight

    def _speed_ms(
        self,
        edge: RoadEdge,
        t: float,
        driver: float,
        congestion_scale: float,
        rng: np.random.Generator,
    ) -> float:
        base = edge.grade.free_flow_speed_kmh / 3.6
        jitter = float(rng.uniform(0.92, 1.08))
        factor = self.traffic.edge_speed_factor(t, edge.grade, congestion_scale)
        return max(1.5, base * factor * driver * jitter)

    def _emit(self, waypoints: list[_Waypoint], node: NodeId, t: float) -> None:
        x, y = self.network.projector.to_xy(self.network.node(node).point)
        waypoints.append(_Waypoint(x, y, t))

    def _drive_edge(
        self,
        waypoints: list[_Waypoint],
        edge: RoadEdge,
        u: NodeId,
        v: NodeId,
        t: float,
        driver: float,
        congestion_scale: float,
        rng: np.random.Generator,
    ) -> float:
        speed = self._speed_ms(edge, t, driver, congestion_scale, rng)
        t_end = t + edge.length_m / speed
        if rng.random() < self.config.mid_edge_stop_probability:
            # Stop halfway along the edge for a short errand.
            ax, ay = self.network.projector.to_xy(self.network.node(u).point)
            bx, by = self.network.projector.to_xy(self.network.node(v).point)
            t_half = t + (edge.length_m / 2.0) / speed
            waypoints.append(_Waypoint((ax + bx) / 2.0, (ay + by) / 2.0, t_half))
            lo, hi = self.config.stop_duration_range
            dwell = float(rng.uniform(lo, hi))
            waypoints.append(_Waypoint((ax + bx) / 2.0, (ay + by) / 2.0, t_half + dwell))
            t_end += dwell
        self._emit(waypoints, v, t_end)
        return t_end

    def _dwell(
        self,
        waypoints: list[_Waypoint],
        stops: list[StopEvent],
        node: NodeId,
        t: float,
        rng: np.random.Generator,
    ) -> float:
        lo, hi = self.config.stop_duration_range
        dwell = float(rng.uniform(lo, hi))
        point = self.network.node(node).point
        stops.append(StopEvent(point, t, t + dwell))
        self._emit(waypoints, node, t + dwell)
        return t + dwell

    def _drive_u_turn(
        self,
        waypoints: list[_Waypoint],
        u_turns: list[UTurnEvent],
        edge: RoadEdge,
        u: NodeId,
        t: float,
        driver: float,
        congestion_scale: float,
        rng: np.random.Generator,
    ) -> float:
        """Drive partway down *edge*, reverse, and return to *u*."""
        v = edge.other_end(u)
        ax, ay = self.network.projector.to_xy(self.network.node(u).point)
        bx, by = self.network.projector.to_xy(self.network.node(v).point)
        frac = float(rng.uniform(0.35, 0.65))
        tx = ax + frac * (bx - ax)
        ty = ay + frac * (by - ay)
        speed = self._speed_ms(edge, t, driver, congestion_scale, rng)
        out_time = frac * edge.length_m / speed
        t_turn = t + out_time
        waypoints.append(_Waypoint(tx, ty, t_turn))
        u_turns.append(
            UTurnEvent(self.network.projector.to_point(tx, ty), t_turn)
        )
        # Brief hesitation at the turn, then drive back.
        t_back_start = t_turn + float(rng.uniform(3.0, 8.0))
        waypoints.append(_Waypoint(tx, ty, t_back_start))
        t_end = t_back_start + out_time
        waypoints.append(_Waypoint(ax, ay, t_end))
        return t_end

    def _sample(
        self, waypoints: list[_Waypoint], rng: np.random.Generator, trajectory_id: str
    ) -> RawTrajectory:
        """Emit GPS samples every ``sample_interval_s`` along the itinerary."""
        if len(waypoints) < 2:
            raise ConfigError("itinerary too short to sample")
        interval = self.config.sample_interval_s
        noise = self.config.gps_noise_m
        projector = self.network.projector
        samples: list[TrajectoryPoint] = []
        t = waypoints[0].t
        idx = 0
        end_t = waypoints[-1].t
        while t <= end_t:
            while idx < len(waypoints) - 2 and waypoints[idx + 1].t <= t:
                idx += 1
            a, b = waypoints[idx], waypoints[idx + 1]
            span = b.t - a.t
            frac = 0.0 if span <= 0 else min(1.0, max(0.0, (t - a.t) / span))
            x = a.x + frac * (b.x - a.x) + float(rng.normal(0.0, noise))
            y = a.y + frac * (b.y - a.y) + float(rng.normal(0.0, noise))
            samples.append(TrajectoryPoint(projector.to_point(x, y), t))
            t += interval
        # Always include the arrival point.
        last = waypoints[-1]
        if not samples or samples[-1].t < last.t:
            x = last.x + float(rng.normal(0.0, noise))
            y = last.y + float(rng.normal(0.0, noise))
            samples.append(TrajectoryPoint(projector.to_point(x, y), last.t))
        return RawTrajectory(samples, trajectory_id)
