"""Time-of-day traffic model.

Stands in for the temporal structure of the paper's real Beijing taxi data:
free-flowing nights, congested days, and pronounced morning and evening
rush hours.  The model exposes a *speed factor* (multiplier on free-flow
speed) and a *stop probability* (chance of being held at an intersection),
both piecewise-linear in the hour of day.  Fig. 8's day/night and rush-hour
contrasts in the summaries descend directly from this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigError
from repro.roadnet import RoadGrade

SECONDS_PER_DAY = 86_400.0

#: How strongly each road grade suffers from city-wide congestion.  Major
#: arterials carry the commuter load and jam hardest; side streets keep
#: moving.  This heterogeneity (together with time-aware route choice) is
#: what reproduces the paper's day/night feature-frequency contrast.
CONGESTION_SUSCEPTIBILITY: dict[RoadGrade, float] = {
    RoadGrade.HIGHWAY: 1.00,
    RoadGrade.EXPRESS: 0.95,
    RoadGrade.NATIONAL: 0.85,
    RoadGrade.PROVINCIAL: 0.75,
    RoadGrade.COUNTRY: 0.60,
    RoadGrade.VILLAGE: 0.45,
    RoadGrade.FEEDER: 0.35,
}

#: (hour, speed_factor) control points; linearly interpolated, wrapping at 24.
#: The night level is calibrated so the all-day, demand-weighted average
#: speed stays within the irregular-rate threshold of night speeds — i.e.
#: night driving is "normal", daytime congestion is the deviation.  This is
#: the regime the paper's Beijing data occupied (its Fig. 8 shows low
#: feature frequencies at night).
_DEFAULT_SPEED_PROFILE: tuple[tuple[float, float], ...] = (
    (0.0, 0.70),
    (5.0, 0.70),
    (6.5, 0.64),
    (8.0, 0.45),   # morning rush trough
    (9.5, 0.60),
    (12.0, 0.68),
    (15.0, 0.66),
    (17.0, 0.45),
    (18.5, 0.42),  # evening rush trough
    (20.0, 0.58),
    (22.0, 0.66),
    (24.0, 0.70),
)

#: (hour, stop_probability) control points for intersection stops.
_DEFAULT_STOP_PROFILE: tuple[tuple[float, float], ...] = (
    (0.0, 0.04),
    (5.0, 0.04),
    (7.0, 0.16),
    (8.0, 0.28),
    (10.0, 0.12),
    (14.0, 0.10),
    (17.0, 0.26),
    (19.0, 0.30),
    (21.0, 0.10),
    (24.0, 0.05),
)


def _interpolate(profile: tuple[tuple[float, float], ...], hour: float) -> float:
    hour = hour % 24.0
    for (h0, v0), (h1, v1) in zip(profile, profile[1:]):
        if h0 <= hour <= h1:
            if h1 == h0:
                return v1
            frac = (hour - h0) / (h1 - h0)
            return v0 + frac * (v1 - v0)
    return profile[-1][1]


@dataclass(frozen=True)
class TrafficModel:
    """Hour-of-day speed and stopping behaviour."""

    speed_profile: tuple[tuple[float, float], ...] = _DEFAULT_SPEED_PROFILE
    stop_profile: tuple[tuple[float, float], ...] = _DEFAULT_STOP_PROFILE

    def __post_init__(self) -> None:
        for profile in (self.speed_profile, self.stop_profile):
            hours = [h for h, _ in profile]
            if hours != sorted(hours) or not profile:
                raise ConfigError("traffic profiles must be sorted by hour")
            if hours[0] != 0.0 or hours[-1] != 24.0:
                raise ConfigError("traffic profiles must span hours 0 .. 24")

    @staticmethod
    def hour_of_day(t: float) -> float:
        """Hour-of-day in [0, 24) of an epoch-style timestamp."""
        return (t % SECONDS_PER_DAY) / 3600.0

    def speed_factor(self, t: float) -> float:
        """City-wide multiplier on free-flow speed at time *t*."""
        return _interpolate(self.speed_profile, self.hour_of_day(t))

    def congestion(self, t: float) -> float:
        """Congestion level in [0, 1]: 0 = free flow, 1 = gridlock."""
        return 1.0 - self.speed_factor(t)

    def edge_speed_factor(
        self, t: float, grade: RoadGrade, congestion_scale: float = 1.0
    ) -> float:
        """Speed multiplier on a road of *grade* at time *t*.

        Major roads absorb most of the congestion; minor streets are barely
        affected (see :data:`CONGESTION_SUSCEPTIBILITY`).  *congestion_scale*
        models trip-level variability (incidents, lucky green waves): the
        base congestion is multiplied by it before being applied.
        """
        susceptibility = CONGESTION_SUSCEPTIBILITY[grade]
        congestion = min(1.0, self.congestion(t) * max(0.0, congestion_scale))
        return max(0.1, 1.0 - congestion * susceptibility)

    def stop_probability(self, t: float) -> float:
        """Chance of a forced stop at an intersection at time *t*."""
        return _interpolate(self.stop_profile, self.hour_of_day(t))

    def is_rush_hour(self, t: float) -> bool:
        """Whether *t* falls into the morning or evening rush window."""
        hour = self.hour_of_day(t)
        return 7.0 <= hour < 9.5 or 16.5 <= hour < 19.5
