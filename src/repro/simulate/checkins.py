"""Synthetic LBSN check-ins.

Stands in for the paper's location-based-social-network dataset: users
check in at landmarks with a heavy-tailed popularity distribution (a few
famous places dominate).  POI-cluster landmarks are intrinsically more
attractive than bare turning points.  Feeding these visits to the HITS-like
algorithm produces the long-tail significance distribution the paper's
Fig. 9 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError
from repro.landmarks import LandmarkIndex, LandmarkKind, Visit


@dataclass(frozen=True, slots=True)
class CheckinConfig:
    """Parameters of the synthetic check-in process."""

    n_users: int = 400
    n_checkins: int = 8_000
    #: Zipf-like exponent of landmark popularity (higher = heavier head).
    popularity_exponent: float = 1.1
    #: Popularity multiplier of POI-cluster landmarks over turning points.
    poi_boost: float = 3.0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_checkins < 1:
            raise ConfigError("need at least one user and one check-in")
        if self.popularity_exponent <= 0.0:
            raise ConfigError("popularity exponent must be positive")
        if self.poi_boost <= 0.0:
            raise ConfigError("poi boost must be positive")


def landmark_popularity(
    landmarks: LandmarkIndex, config: CheckinConfig, rng: np.random.Generator
) -> dict[int, float]:
    """Latent popularity per landmark: Zipf over a random ranking.

    The ranking is random (popularity is social, not geometric) but POI
    clusters are boosted, so famous places tend to be actual places.
    """
    ids = landmarks.ids()
    order = rng.permutation(len(ids))
    popularity: dict[int, float] = {}
    for rank_pos, idx in enumerate(order):
        landmark = landmarks.get(ids[int(idx)])
        base = 1.0 / (rank_pos + 1) ** config.popularity_exponent
        if landmark.kind is LandmarkKind.POI_CLUSTER:
            base *= config.poi_boost
        popularity[landmark.landmark_id] = base
    return popularity


def generate_checkins(
    landmarks: LandmarkIndex,
    config: CheckinConfig,
    rng: np.random.Generator,
) -> list[Visit]:
    """Sample check-in visits: users weighted by activity, landmarks by
    popularity."""
    ids = landmarks.ids()
    if not ids:
        raise ConfigError("cannot generate check-ins without landmarks")
    popularity = landmark_popularity(landmarks, config, rng)
    weights = np.array([popularity[lid] for lid in ids])
    weights = weights / weights.sum()
    # User activity is itself heavy-tailed (a few prolific users).
    user_weights = 1.0 / np.arange(1, config.n_users + 1) ** 0.8
    user_weights = user_weights / user_weights.sum()

    landmark_draws = rng.choice(len(ids), size=config.n_checkins, p=weights)
    user_draws = rng.choice(config.n_users, size=config.n_checkins, p=user_weights)
    return [
        Visit(f"user-{int(u)}", ids[int(l)])
        for u, l in zip(user_draws, landmark_draws)
    ]
