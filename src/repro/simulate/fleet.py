"""Taxi-fleet generation: origin/destination demand and departure times.

Stands in for the paper's 33k-taxi, 100k-trajectory Beijing corpus.
Origins and destinations are drawn near landmarks in proportion to landmark
popularity (people travel between significant places), and departure times
follow a day-shaped demand curve, so the generated corpus shows the
temporal structure Fig. 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError, NoPathError
from repro.landmarks import LandmarkIndex
from repro.roadnet import NodeId, RoadNetwork
from repro.simulate.traffic import SECONDS_PER_DAY
from repro.simulate.vehicles import SimulatedTrip, TripSimulator

#: (hour, relative trip demand); linearly interpolated.  Taxi fleets work
#: around the clock, so night demand stays a substantial fraction of peak —
#: this keeps the historical feature map well covered at every hour.
_DEMAND_PROFILE: tuple[tuple[float, float], ...] = (
    (0.0, 0.70),
    (4.0, 0.55),
    (7.0, 1.00),
    (9.0, 0.95),
    (12.0, 0.80),
    (17.0, 1.00),
    (19.0, 0.90),
    (22.0, 0.75),
    (24.0, 0.70),
)


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of fleet generation."""

    #: Minimum straight-line trip length; short hops make poor summaries.
    min_trip_m: float = 1_500.0
    #: Maximum attempts to find a routable OD pair per trip.
    max_attempts: int = 25
    #: Fraction of OD endpoints drawn near popular landmarks (the rest are
    #: uniform over road nodes).  Taxi passengers overwhelmingly travel to
    #: actual destinations, not arbitrary curb positions.
    landmark_bias: float = 0.85

    def __post_init__(self) -> None:
        if self.min_trip_m < 0.0:
            raise ConfigError("min_trip_m must be non-negative")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if not 0.0 <= self.landmark_bias <= 1.0:
            raise ConfigError("landmark_bias must lie in [0, 1]")


class FleetSimulator:
    """Generates whole corpora of simulated taxi trips."""

    def __init__(
        self,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        trips: TripSimulator,
        landmark_popularity: dict[int, float] | None = None,
        config: FleetConfig | None = None,
    ) -> None:
        self.network = network
        self.landmarks = landmarks
        self.trips = trips
        self.config = config or FleetConfig()
        self._node_ids = network.node_ids()
        self._anchor_nodes, self._anchor_weights = self._build_anchors(
            landmark_popularity
        )

    def _build_anchors(
        self, popularity: dict[int, float] | None
    ) -> tuple[list[NodeId], np.ndarray]:
        """Road nodes nearest each landmark, weighted by popularity."""
        nodes = []
        weights = []
        for landmark in self.landmarks:
            node = self.network.nearest_node(landmark.point)
            if node is None:
                continue
            nodes.append(node.node_id)
            weight = 1.0
            if popularity is not None:
                weight = max(popularity.get(landmark.landmark_id, 0.0), 1e-6)
            weights.append(weight)
        if not nodes:
            nodes = list(self._node_ids)
            weights = [1.0] * len(nodes)
        array = np.asarray(weights, dtype=float)
        return nodes, array / array.sum()

    def with_config(self, config: FleetConfig) -> "FleetSimulator":
        """A sibling fleet sharing anchors/popularity but using *config*.

        Used by experiments that need, e.g., longer trips than the default.
        """
        sibling = FleetSimulator.__new__(FleetSimulator)
        sibling.network = self.network
        sibling.landmarks = self.landmarks
        sibling.trips = self.trips
        sibling.config = config
        sibling._node_ids = self._node_ids
        sibling._anchor_nodes = self._anchor_nodes
        sibling._anchor_weights = self._anchor_weights
        return sibling

    # -- sampling -------------------------------------------------------------------

    def sample_node(self, rng: np.random.Generator) -> NodeId:
        """One trip endpoint: landmark-biased or uniform."""
        if rng.random() < self.config.landmark_bias:
            idx = int(rng.choice(len(self._anchor_nodes), p=self._anchor_weights))
            return self._anchor_nodes[idx]
        return self._node_ids[int(rng.integers(0, len(self._node_ids)))]

    def sample_od(self, rng: np.random.Generator) -> tuple[NodeId, NodeId]:
        """An origin/destination pair at least ``min_trip_m`` apart."""
        for _ in range(self.config.max_attempts):
            origin = self.sample_node(rng)
            destination = self.sample_node(rng)
            if origin == destination:
                continue
            distance = self.network.projector.distance_m(
                self.network.node(origin).point,
                self.network.node(destination).point,
            )
            if distance >= self.config.min_trip_m:
                return origin, destination
        raise ConfigError(
            "could not sample a sufficiently long OD pair; "
            "lower min_trip_m or enlarge the city"
        )

    def sample_depart_time(
        self, rng: np.random.Generator, day: int = 0
    ) -> float:
        """A departure time following the day-shaped demand curve."""
        hours = np.array([h for h, _ in _DEMAND_PROFILE])
        demand = np.array([d for _, d in _DEMAND_PROFILE])
        # Rejection sampling against the piecewise-linear demand curve.
        peak = float(demand.max())
        while True:
            hour = float(rng.uniform(0.0, 24.0))
            level = float(np.interp(hour, hours, demand))
            if rng.random() * peak <= level:
                return day * SECONDS_PER_DAY + hour * 3600.0

    # -- corpus generation ---------------------------------------------------------------

    def generate(
        self,
        n_trips: int,
        rng: np.random.Generator,
        days: int = 1,
        depart_time: float | None = None,
        id_prefix: str = "trip",
    ) -> list[SimulatedTrip]:
        """Generate *n_trips* trips spread over *days* days.

        With *depart_time* given, every trip departs at exactly that time —
        used by the time-binned experiments.  Unroutable OD draws are
        retried; the method only raises if the city is pathologically
        disconnected.
        """
        out: list[SimulatedTrip] = []
        while len(out) < n_trips:
            origin, destination = self.sample_od(rng)
            if depart_time is not None:
                t0 = depart_time
            else:
                day = int(rng.integers(0, days))
                t0 = self.sample_depart_time(rng, day)
            try:
                trip = self.trips.simulate(
                    origin, destination, t0, rng,
                    trajectory_id=f"{id_prefix}-{len(out)}",
                )
            except NoPathError:
                continue
            out.append(trip)
        return out
