"""Simulation substrate: traffic model, trips, fleet, check-ins, scenario."""

from repro.simulate.traffic import SECONDS_PER_DAY, TrafficModel
from repro.simulate.vehicles import (
    SimulatedTrip,
    StopEvent,
    TripConfig,
    TripSimulator,
    UTurnEvent,
)
from repro.simulate.checkins import (
    CheckinConfig,
    generate_checkins,
    landmark_popularity,
)
from repro.simulate.fleet import FleetConfig, FleetSimulator
from repro.simulate.scenario import CityScenario, ScenarioConfig

__all__ = [
    "SECONDS_PER_DAY",
    "TrafficModel",
    "TripConfig",
    "TripSimulator",
    "SimulatedTrip",
    "StopEvent",
    "UTurnEvent",
    "CheckinConfig",
    "generate_checkins",
    "landmark_popularity",
    "FleetConfig",
    "FleetSimulator",
    "ScenarioConfig",
    "CityScenario",
]
