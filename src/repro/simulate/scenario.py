"""One-stop scenario builder.

``CityScenario.build`` assembles everything the paper's experiments need —
synthetic city, POIs, landmarks, check-ins, HITS significance, a taxi
training corpus, and a trained :class:`~repro.core.summarizer.STMaker` —
from a single seed, deterministically.  It is the standard entry point of
the examples, the experiment harness, and the end-to-end tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.calibration import AnchorCalibrator, CalibrationConfig
from repro.core.config import SummarizerConfig
from repro.core.summarizer import STMaker
from repro.exceptions import CalibrationError
from repro.features import FeatureRegistry, default_registry
from repro.landmarks import (
    LandmarkConfig,
    LandmarkIndex,
    POIConfig,
    Visit,
    assign_significance,
    build_landmarks,
    generate_pois,
)
from repro.roadnet import CityConfig, RoadNetwork, generate_city
from repro.simulate.checkins import CheckinConfig, generate_checkins, landmark_popularity
from repro.simulate.fleet import FleetConfig, FleetSimulator
from repro.simulate.traffic import TrafficModel
from repro.simulate.vehicles import SimulatedTrip, TripConfig, TripSimulator
from repro.trajectory import RawTrajectory, SymbolicTrajectory


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to rebuild a scenario bit-for-bit."""

    seed: int = 7
    city: CityConfig = field(default_factory=lambda: CityConfig(blocks=14))
    pois: POIConfig = field(default_factory=lambda: POIConfig(count=1_500))
    landmarks: LandmarkConfig = field(default_factory=LandmarkConfig)
    checkins: CheckinConfig = field(default_factory=CheckinConfig)
    trip: TripConfig = field(default_factory=TripConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    summarizer: SummarizerConfig = field(default_factory=SummarizerConfig)
    n_training_trips: int = 300
    training_days: int = 3
    include_speed_change_feature: bool = False


class CityScenario:
    """A fully built city with a trained STMaker and trip generators."""

    def __init__(
        self,
        config: ScenarioConfig,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        traffic: TrafficModel,
        trip_simulator: TripSimulator,
        fleet: FleetSimulator,
        stmaker: STMaker,
        registry: FeatureRegistry,
        test_rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.network = network
        self.landmarks = landmarks
        self.traffic = traffic
        self.trip_simulator = trip_simulator
        self.fleet = fleet
        self.stmaker = stmaker
        self.registry = registry
        self._test_rng = test_rng

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(cls, config: ScenarioConfig | None = None) -> "CityScenario":
        """Build the whole scenario from its config (deterministic)."""
        config = config or ScenarioConfig()
        streams = np.random.SeedSequence(config.seed).spawn(5)
        rng_city, rng_poi, rng_checkin, rng_train, rng_test = (
            np.random.default_rng(s) for s in streams
        )

        network = generate_city(config.city, rng_city)
        pois = generate_pois(
            POIConfig(
                count=config.pois.count,
                activity_centers=config.pois.activity_centers,
                center_sigma_m=config.pois.center_sigma_m,
                background_fraction=config.pois.background_fraction,
            ),
            network.bounding_box(),
            network.projector,
            rng_poi,
        )
        landmarks = build_landmarks(network, pois, config.landmarks)

        popularity = landmark_popularity(landmarks, config.checkins, rng_checkin)
        checkins = generate_checkins(landmarks, config.checkins, rng_checkin)

        traffic = TrafficModel()
        trip_simulator = TripSimulator(network, traffic, config.trip)
        fleet = FleetSimulator(
            network, landmarks, trip_simulator,
            landmark_popularity=popularity, config=config.fleet,
        )

        # Training corpus: simulate, calibrate, and derive taxi visits.
        calibrator = AnchorCalibrator(landmarks, config.calibration)
        training = fleet.generate(
            config.n_training_trips, rng_train,
            days=config.training_days, id_prefix="train",
        )
        calibrated: list[tuple[RawTrajectory, SymbolicTrajectory]] = []
        taxi_visits: list[Visit] = []
        for trip in training:
            try:
                symbolic = calibrator.calibrate(trip.raw)
            except CalibrationError:
                continue
            calibrated.append((trip.raw, symbolic))
            # Taxi evidence for landmark familiarity: passenger events (the
            # pick-up and drop-off) are strong signals and count with
            # multiplicity; mere pass-throughs count once — they keep the
            # significance scale continuous across ordinary intersections.
            ids = symbolic.landmark_ids()
            taxi_visits.extend(
                Visit(trip.raw.trajectory_id, lid) for lid in ids
            )
            for endpoint in (ids[0], ids[-1]):
                taxi_visits.extend(
                    Visit(trip.raw.trajectory_id, endpoint) for _ in range(2)
                )

        assign_significance(landmarks, checkins + taxi_visits)

        registry = default_registry(
            include_speed_change=config.include_speed_change_feature
        )
        stmaker = STMaker.train_calibrated(
            network, landmarks, calibrated,
            config=config.summarizer, registry=registry, calibrator=calibrator,
        )
        return cls(
            config, network, landmarks, traffic, trip_simulator, fleet,
            stmaker, registry, rng_test,
        )

    # -- test-data generation --------------------------------------------------------

    def simulate_trip(
        self,
        depart_time: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> SimulatedTrip:
        """One fresh test trip (not part of the training corpus)."""
        return self.simulate_trips(1, depart_time=depart_time, rng=rng)[0]

    def simulate_trips(
        self,
        n: int,
        depart_time: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[SimulatedTrip]:
        """*n* fresh test trips, optionally all departing at *depart_time*."""
        rng = rng or self._test_rng
        return self.fleet.generate(
            n, rng, days=1, depart_time=depart_time, id_prefix="test"
        )

    def summarizer_with(self, config: SummarizerConfig) -> STMaker:
        """An STMaker sharing this scenario's trained state under *config*."""
        return self.stmaker.with_config(config)
