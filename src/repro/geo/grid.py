"""Uniform-grid spatial hash for radius and nearest-neighbour queries.

This is the spatial index used throughout the library (landmark lookup,
map-matching candidate generation, DBSCAN region queries).  Items are bucketed
by the cell that contains them; a radius query scans the ring of cells
overlapping the query disc.
"""

from __future__ import annotations

import math
from typing import Generic, Iterable, Iterator, TypeVar

from repro.exceptions import GeometryError
from repro.geo.distance import LocalProjector
from repro.geo.point import GeoPoint

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Spatial hash of ``(GeoPoint, item)`` pairs with metric queries."""

    def __init__(self, projector: LocalProjector, cell_size_m: float = 250.0) -> None:
        if cell_size_m <= 0.0:
            raise GeometryError(f"cell size must be positive, got {cell_size_m}")
        self._projector = projector
        self._cell = cell_size_m
        self._buckets: dict[tuple[int, int], list[tuple[float, float, T]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell), math.floor(y / self._cell))

    def insert(self, point: GeoPoint, item: T) -> None:
        """Add *item* at *point*."""
        x, y = self._projector.to_xy(point)
        self._buckets.setdefault(self._key(x, y), []).append((x, y, item))
        self._count += 1

    def extend(self, pairs: Iterable[tuple[GeoPoint, T]]) -> None:
        """Bulk-insert ``(point, item)`` pairs."""
        for point, item in pairs:
            self.insert(point, item)

    def query_radius(self, point: GeoPoint, radius_m: float) -> list[tuple[float, T]]:
        """All items within *radius_m* of *point*, as ``(distance_m, item)``.

        Results are not sorted; callers that need ordering sort explicitly.
        """
        if radius_m < 0.0:
            raise GeometryError(f"radius must be non-negative, got {radius_m}")
        px, py = self._projector.to_xy(point)
        reach = int(math.ceil(radius_m / self._cell))
        cx, cy = self._key(px, py)
        out: list[tuple[float, T]] = []
        for ix in range(cx - reach, cx + reach + 1):
            for iy in range(cy - reach, cy + reach + 1):
                bucket = self._buckets.get((ix, iy))
                if not bucket:
                    continue
                for x, y, item in bucket:
                    d = math.hypot(px - x, py - y)
                    if d <= radius_m:
                        out.append((d, item))
        return out

    def nearest(
        self, point: GeoPoint, max_radius_m: float = 5_000.0
    ) -> tuple[float, T] | None:
        """Closest item to *point* within *max_radius_m*, or ``None``.

        Expands the search ring outward one cell layer at a time, stopping as
        soon as the best hit cannot be beaten by any unexplored cell.
        """
        if self._count == 0:
            return None
        px, py = self._projector.to_xy(point)
        cx, cy = self._key(px, py)
        max_reach = int(math.ceil(max_radius_m / self._cell)) + 1
        best: tuple[float, T] | None = None
        for ring in range(max_reach + 1):
            for ix, iy in self._ring_cells(cx, cy, ring):
                bucket = self._buckets.get((ix, iy))
                if not bucket:
                    continue
                for x, y, item in bucket:
                    d = math.hypot(px - x, py - y)
                    if d <= max_radius_m and (best is None or d < best[0]):
                        best = (d, item)
            # Any item in ring r+1 is at least r * cell metres away from the
            # query cell, so once the best hit beats that bound we can stop.
            if best is not None and best[0] <= ring * self._cell:
                break
        return best

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterator[tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for ix in range(cx - ring, cx + ring + 1):
            yield (ix, cy - ring)
            yield (ix, cy + ring)
        for iy in range(cy - ring + 1, cy + ring):
            yield (cx - ring, iy)
            yield (cx + ring, iy)
