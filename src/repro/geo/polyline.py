"""Polyline utilities: lengths, interpolation, resampling, projection."""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import GeometryError
from repro.geo.distance import LocalProjector, point_segment_distance_m
from repro.geo.point import GeoPoint


def polyline_length_m(points: Sequence[GeoPoint], projector: LocalProjector) -> float:
    """Total length of the polyline through *points*, in metres."""
    if len(points) < 2:
        return 0.0
    return sum(projector.distance_m(a, b) for a, b in zip(points, points[1:]))


def cumulative_lengths_m(
    points: Sequence[GeoPoint], projector: LocalProjector
) -> list[float]:
    """Running distance from the first point to each point (first entry is 0)."""
    if not points:
        return []
    total = 0.0
    out = [0.0]
    for a, b in zip(points, points[1:]):
        total += projector.distance_m(a, b)
        out.append(total)
    return out


def interpolate_along(
    points: Sequence[GeoPoint], distance_m: float, projector: LocalProjector
) -> GeoPoint:
    """Point located *distance_m* metres along the polyline.

    Distances are clamped to the polyline extent, so a negative distance
    returns the first point and an overshoot returns the last.
    """
    if not points:
        raise GeometryError("cannot interpolate along an empty polyline")
    if len(points) == 1 or distance_m <= 0.0:
        return points[0]
    remaining = distance_m
    for a, b in zip(points, points[1:]):
        seg = projector.distance_m(a, b)
        if remaining <= seg and seg > 0.0:
            t = remaining / seg
            ax, ay = projector.to_xy(a)
            bx, by = projector.to_xy(b)
            return projector.to_point(ax + t * (bx - ax), ay + t * (by - ay))
        remaining -= seg
    return points[-1]


def resample_polyline(
    points: Sequence[GeoPoint], spacing_m: float, projector: LocalProjector
) -> list[GeoPoint]:
    """Resample the polyline at regular *spacing_m* intervals.

    The first and last vertices are always retained.
    """
    if spacing_m <= 0.0:
        raise GeometryError(f"spacing must be positive, got {spacing_m}")
    if len(points) < 2:
        return list(points)
    total = polyline_length_m(points, projector)
    if total == 0.0:
        return [points[0], points[-1]]
    out = [points[0]]
    d = spacing_m
    # The small epsilon avoids emitting an interpolated point that coincides
    # with the final vertex when the total length is a multiple of spacing.
    while d < total - 1e-6:
        out.append(interpolate_along(points, d, projector))
        d += spacing_m
    out.append(points[-1])
    return out


def nearest_point_on_polyline(
    point: GeoPoint, points: Sequence[GeoPoint], projector: LocalProjector
) -> tuple[float, float]:
    """Project *point* onto the polyline.

    Returns ``(distance_m, offset_m)`` — the perpendicular distance to the
    closest location on the polyline, and the along-polyline offset of that
    location from the first vertex.
    """
    if not points:
        raise GeometryError("cannot project onto an empty polyline")
    if len(points) == 1:
        return (projector.distance_m(point, points[0]), 0.0)
    best_dist = float("inf")
    best_offset = 0.0
    walked = 0.0
    for a, b in zip(points, points[1:]):
        seg_len = projector.distance_m(a, b)
        dist, frac = point_segment_distance_m(point, a, b, projector)
        if dist < best_dist:
            best_dist = dist
            best_offset = walked + frac * seg_len
        walked += seg_len
    return (best_dist, best_offset)
