"""Distance computations: exact haversine and a fast local projection."""

from __future__ import annotations

import math

from repro.geo.point import GeoPoint

EARTH_RADIUS_M = 6_371_000.0


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Exact great-circle distance between two points, in metres."""
    lat1 = math.radians(a.lat)
    lat2 = math.radians(b.lat)
    dlat = lat2 - lat1
    dlon = math.radians(b.lon - a.lon)
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


class LocalProjector:
    """Equirectangular projection anchored at a reference point.

    Maps geographic coordinates to a local planar frame in metres with the
    x axis pointing east and the y axis pointing north.  At city scale
    (tens of kilometres) the distortion against haversine is below 0.1 %,
    which is far below GPS noise, so all hot-path geometry uses this frame.
    """

    def __init__(self, origin: GeoPoint) -> None:
        self.origin = origin
        self._cos_lat = math.cos(math.radians(origin.lat))
        self._m_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        self._m_per_deg_lon = self._m_per_deg_lat * self._cos_lat

    def to_xy(self, point: GeoPoint) -> tuple[float, float]:
        """Project *point* to local planar metres ``(x, y)``."""
        x = (point.lon - self.origin.lon) * self._m_per_deg_lon
        y = (point.lat - self.origin.lat) * self._m_per_deg_lat
        return (x, y)

    def to_point(self, x: float, y: float) -> GeoPoint:
        """Inverse-project local metres back to a :class:`GeoPoint`."""
        lat = self.origin.lat + y / self._m_per_deg_lat
        lon = self.origin.lon + x / self._m_per_deg_lon
        return GeoPoint(lat, lon)

    def distance_m(self, a: GeoPoint, b: GeoPoint) -> float:
        """Fast planar distance between two geographic points, in metres."""
        dx = (a.lon - b.lon) * self._m_per_deg_lon
        dy = (a.lat - b.lat) * self._m_per_deg_lat
        return math.hypot(dx, dy)


def _project_fraction(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Fraction along segment AB of the projection of P, clamped to [0, 1]."""
    vx = bx - ax
    vy = by - ay
    seg_sq = vx * vx + vy * vy
    if seg_sq == 0.0:
        return 0.0
    t = ((px - ax) * vx + (py - ay) * vy) / seg_sq
    return min(1.0, max(0.0, t))


def point_segment_distance_m(
    point: GeoPoint,
    seg_start: GeoPoint,
    seg_end: GeoPoint,
    projector: LocalProjector,
) -> tuple[float, float]:
    """Distance from *point* to the segment ``seg_start → seg_end``.

    Returns ``(distance_m, fraction)`` where *fraction* in ``[0, 1]`` locates
    the closest point along the segment.
    """
    px, py = projector.to_xy(point)
    ax, ay = projector.to_xy(seg_start)
    bx, by = projector.to_xy(seg_end)
    t = _project_fraction(px, py, ax, ay, bx, by)
    cx = ax + t * (bx - ax)
    cy = ay + t * (by - ay)
    return (math.hypot(px - cx, py - cy), t)
