"""Planar-ish geometry over WGS-84 coordinates at city scale.

The whole library works on a single city extent (a few tens of kilometres),
so an equirectangular projection anchored at the city centre is accurate to
well under 0.1 % and is used for all hot-path distance computations.  Exact
haversine distances are available where precision matters more than speed.
"""

from repro.geo.point import GeoPoint, bearing_deg, destination_point, heading_change_deg
from repro.geo.distance import (
    EARTH_RADIUS_M,
    LocalProjector,
    haversine_m,
    point_segment_distance_m,
)
from repro.geo.bbox import BoundingBox
from repro.geo.polyline import (
    cumulative_lengths_m,
    interpolate_along,
    nearest_point_on_polyline,
    polyline_length_m,
    resample_polyline,
)
from repro.geo.grid import GridIndex

__all__ = [
    "GeoPoint",
    "bearing_deg",
    "destination_point",
    "heading_change_deg",
    "EARTH_RADIUS_M",
    "LocalProjector",
    "haversine_m",
    "point_segment_distance_m",
    "BoundingBox",
    "polyline_length_m",
    "cumulative_lengths_m",
    "interpolate_along",
    "resample_polyline",
    "nearest_point_on_polyline",
    "GridIndex",
]
