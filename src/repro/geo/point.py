"""Geographic points and bearing arithmetic."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import GeometryError

_EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 coordinate pair, latitude and longitude in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise GeometryError(f"latitude out of range: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise GeometryError(f"longitude out of range: {self.lon}")

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)

    def __str__(self) -> str:
        return f"({self.lat:.6f}, {self.lon:.6f})"


def bearing_deg(origin: GeoPoint, target: GeoPoint) -> float:
    """Initial great-circle bearing from *origin* to *target*.

    Returns degrees clockwise from north in ``[0, 360)``.
    """
    lat1 = math.radians(origin.lat)
    lat2 = math.radians(target.lat)
    dlon = math.radians(target.lon - origin.lon)
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    deg = math.degrees(math.atan2(x, y)) % 360.0
    # A tiny negative angle can survive the modulo as exactly 360.0.
    return 0.0 if deg >= 360.0 else deg


def heading_change_deg(bearing_a: float, bearing_b: float) -> float:
    """Absolute change between two bearings, folded into ``[0, 180]``.

    A value near 180 indicates a reversal of direction (a U-turn).
    """
    diff = abs(bearing_a - bearing_b) % 360.0
    if diff > 180.0:
        diff = 360.0 - diff
    return diff


def destination_point(origin: GeoPoint, bearing: float, distance_m: float) -> GeoPoint:
    """Great-circle destination reached from *origin* on *bearing* after *distance_m*."""
    angular = distance_m / _EARTH_RADIUS_M
    theta = math.radians(bearing)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular) + math.cos(lat1) * math.sin(angular) * math.cos(theta)
    )
    lon2 = lon1 + math.atan2(
        math.sin(theta) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lon2 = (lon2 + 3.0 * math.pi) % (2.0 * math.pi) - math.pi
    return GeoPoint(math.degrees(lat2), math.degrees(lon2))
