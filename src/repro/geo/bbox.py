"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import GeometryError
from repro.geo.point import GeoPoint


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A latitude/longitude axis-aligned rectangle."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat or self.min_lon > self.max_lon:
            raise GeometryError(
                f"degenerate bounding box: ({self.min_lat}, {self.min_lon}) "
                f"> ({self.max_lat}, {self.max_lon})"
            )

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Smallest box containing every point; raises on an empty iterable."""
        pts = list(points)
        if not pts:
            raise GeometryError("cannot build a bounding box from zero points")
        lats = [p.lat for p in pts]
        lons = [p.lon for p in pts]
        return cls(min(lats), min(lons), max(lats), max(lons))

    @property
    def center(self) -> GeoPoint:
        """Geometric centre of the box."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    def contains(self, point: GeoPoint) -> bool:
        """Whether *point* lies inside the box (boundary inclusive)."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def expanded(self, margin_deg: float) -> "BoundingBox":
        """A copy grown by *margin_deg* on every side."""
        return BoundingBox(
            self.min_lat - margin_deg,
            self.min_lon - margin_deg,
            self.max_lat + margin_deg,
            self.max_lon + margin_deg,
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes share any area (boundary inclusive)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )
