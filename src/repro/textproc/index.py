"""Inverted index with ranked retrieval over summary texts (Sec. VI-C)."""

from __future__ import annotations

import math

from repro.exceptions import ConfigError
from repro.textproc.tokenize import tokenize_filtered


class InvertedIndex:
    """Classic inverted index with TF-IDF ranked search."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}  # term -> doc -> tf
        self._doc_lengths: dict[str, int] = {}

    def add(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id replaces it."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        tokens = tokenize_filtered(text)
        self._doc_lengths[doc_id] = len(tokens)
        for token in tokens:
            self._postings.setdefault(token, {}).setdefault(doc_id, 0)
            self._postings[token][doc_id] += 1

    def remove(self, doc_id: str) -> None:
        """Drop a document from the index (no-op if absent)."""
        if doc_id not in self._doc_lengths:
            return
        del self._doc_lengths[doc_id]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(doc_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    def documents_with(self, term: str) -> set[str]:
        """Ids of documents containing *term* (boolean lookup)."""
        return set(self._postings.get(term.lower(), {}))

    def search_all(self, query: str) -> set[str]:
        """Boolean AND over the query terms."""
        terms = tokenize_filtered(query)
        if not terms:
            return set()
        result: set[str] | None = None
        for term in terms:
            docs = self.documents_with(term)
            result = docs if result is None else result & docs
            if not result:
                return set()
        return result or set()

    def search_ranked(self, query: str, limit: int = 10) -> list[tuple[str, float]]:
        """TF-IDF ranked retrieval: top *limit* ``(doc_id, score)`` pairs."""
        if limit < 1:
            raise ConfigError("limit must be at least 1")
        terms = tokenize_filtered(query)
        if not terms or not self._doc_lengths:
            return []
        n = self.document_count
        scores: dict[str, float] = {}
        for term in terms:
            postings = self._postings.get(term)
            if not postings:
                continue
            idf = math.log((1 + n) / (1 + len(postings))) + 1.0
            for doc_id, tf in postings.items():
                weight = (tf / self._doc_lengths[doc_id]) * idf
                scores[doc_id] = scores.get(doc_id, 0.0) + weight
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit]
