"""Text processing over trajectory summaries (paper Sec. VI-C)."""

from repro.textproc.tokenize import STOPWORDS, tokenize, tokenize_filtered
from repro.textproc.tfidf import TfidfVectorizer, cosine_similarity_matrix
from repro.textproc.cluster import KMeansResult, kmeans, top_terms
from repro.textproc.index import InvertedIndex
from repro.textproc.classify import NaiveBayesClassifier

__all__ = [
    "NaiveBayesClassifier",
    "STOPWORDS",
    "tokenize",
    "tokenize_filtered",
    "TfidfVectorizer",
    "cosine_similarity_matrix",
    "KMeansResult",
    "kmeans",
    "top_terms",
    "InvertedIndex",
]
