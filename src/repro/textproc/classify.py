"""Multinomial naive-Bayes text categorization, from scratch (Sec. VI-C).

The paper lists text categorization among the mature techniques that apply
directly to trajectory summaries.  A classifier trained on labelled
summaries (e.g. rush-hour vs. night trips, or congested vs. smooth) gives
an operator automatic triage of incoming trajectories by their text alone.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

from repro.exceptions import ConfigError
from repro.textproc.tokenize import tokenize_filtered

Label = Hashable


class NaiveBayesClassifier:
    """Multinomial naive Bayes with Laplace smoothing over token counts."""

    def __init__(self, smoothing: float = 1.0) -> None:
        if smoothing <= 0.0:
            raise ConfigError("smoothing must be positive")
        self._smoothing = smoothing
        self._class_doc_counts: dict[Label, int] = {}
        self._class_token_counts: dict[Label, dict[str, int]] = {}
        self._class_total_tokens: dict[Label, int] = {}
        self._vocabulary: set[str] = set()
        self._total_docs = 0

    # -- training -------------------------------------------------------------

    def fit(self, documents: Sequence[str], labels: Sequence[Label]) -> "NaiveBayesClassifier":
        """Train on parallel document/label sequences (re-fitting resets)."""
        if len(documents) != len(labels):
            raise ConfigError(
                f"documents/labels mismatch: {len(documents)} vs {len(labels)}"
            )
        if not documents:
            raise ConfigError("cannot fit a classifier on zero documents")
        self._class_doc_counts = {}
        self._class_token_counts = {}
        self._class_total_tokens = {}
        self._vocabulary = set()
        self._total_docs = len(documents)
        for text, label in zip(documents, labels):
            self._class_doc_counts[label] = self._class_doc_counts.get(label, 0) + 1
            slot = self._class_token_counts.setdefault(label, {})
            for token in tokenize_filtered(text):
                slot[token] = slot.get(token, 0) + 1
                self._vocabulary.add(token)
                self._class_total_tokens[label] = (
                    self._class_total_tokens.get(label, 0) + 1
                )
        return self

    @property
    def classes(self) -> list[Label]:
        return list(self._class_doc_counts)

    # -- inference ---------------------------------------------------------------

    def log_scores(self, text: str) -> dict[Label, float]:
        """Unnormalized log-posterior per class."""
        if not self._class_doc_counts:
            raise ConfigError("classifier must be fitted before prediction")
        tokens = tokenize_filtered(text)
        vocab_size = max(1, len(self._vocabulary))
        scores: dict[Label, float] = {}
        for label, doc_count in self._class_doc_counts.items():
            score = math.log(doc_count / self._total_docs)
            token_counts = self._class_token_counts.get(label, {})
            total = self._class_total_tokens.get(label, 0)
            denominator = total + self._smoothing * vocab_size
            for token in tokens:
                count = token_counts.get(token, 0)
                score += math.log((count + self._smoothing) / denominator)
            scores[label] = score
        return scores

    def predict(self, text: str) -> Label:
        """Most probable class for *text* (ties break deterministically)."""
        scores = self.log_scores(text)
        return max(sorted(scores, key=repr), key=lambda label: scores[label])

    def predict_many(self, documents: Sequence[str]) -> list[Label]:
        """Class per document."""
        return [self.predict(doc) for doc in documents]

    def accuracy(self, documents: Sequence[str], labels: Sequence[Label]) -> float:
        """Fraction of *documents* classified as their true label."""
        if not documents:
            raise ConfigError("cannot score zero documents")
        predictions = self.predict_many(documents)
        hits = sum(1 for p, t in zip(predictions, labels) if p == t)
        return hits / len(documents)
