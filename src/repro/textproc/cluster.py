"""K-means clustering (k-means++ initialization), from scratch.

Sec. VI-C: "applying the text clustering method on summaries of all the
trajectories in a certain region at a specific time period, we can have a
quick overview about the traffic condition."  This module provides that
clustering over TF-IDF vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError


@dataclass(frozen=True, slots=True)
class KMeansResult:
    """Cluster labels, centroids, and the final inertia."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    def members(self, cluster: int) -> list[int]:
        """Indexes of documents in *cluster*."""
        return [int(i) for i in np.flatnonzero(self.labels == cluster)]


def _plus_plus_init(
    matrix: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = matrix.shape[0]
    centroids = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = matrix[first]
    closest_sq = ((matrix - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total == 0.0:
            # All points coincide with chosen centroids; pick arbitrarily.
            centroids[j] = matrix[int(rng.integers(0, n))]
            continue
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centroids[j] = matrix[pick]
        dist_sq = ((matrix - centroids[j]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def kmeans(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so exactly *k* clusters always come back.
    """
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ConfigError("kmeans needs a non-empty 2-D matrix")
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ConfigError(f"k must lie in [1, {n}], got {k}")

    centroids = _plus_plus_init(matrix, k, rng)
    labels = np.zeros(n, dtype=int)
    inertia = float("inf")
    for iteration in range(1, max_iterations + 1):
        # Assign: squared Euclidean distance to each centroid.
        dists = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = dists.argmin(axis=1)
        new_inertia = float(dists[np.arange(n), labels].sum())
        # Update.
        for j in range(k):
            members = matrix[labels == j]
            if len(members) == 0:
                farthest = int(dists[np.arange(n), labels].argmax())
                centroids[j] = matrix[farthest]
                labels[farthest] = j
            else:
                centroids[j] = members.mean(axis=0)
        if abs(inertia - new_inertia) <= tolerance:
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(labels, centroids, inertia, iteration)


def top_terms(
    centroid: np.ndarray, vocabulary: dict[str, int], n: int = 5
) -> list[str]:
    """The *n* highest-weight vocabulary terms of a centroid."""
    inverse = {i: t for t, i in vocabulary.items()}
    order = np.argsort(centroid)[::-1]
    return [inverse[int(i)] for i in order[:n] if centroid[int(i)] > 0.0]
