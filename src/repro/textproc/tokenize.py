"""Tokenization for summary texts."""

from __future__ import annotations

import re

#: Words too common in summaries to discriminate anything.
STOPWORDS: frozenset[str] = frozenset(
    """
    a an and at by for from in it most of on the then through to was
    were which while with car moved started drivers prefer choose than
    usual about total
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens; hyphenated words (u-turn) stay together."""
    return _TOKEN_RE.findall(text.lower())


def tokenize_filtered(text: str) -> list[str]:
    """Tokens with stopwords and bare numbers removed."""
    return [
        token
        for token in tokenize(text)
        if token not in STOPWORDS and not token.isdigit()
    ]
