"""TF-IDF vectorization of summary texts, from scratch.

Supports the Sec. VI-C claim that mature text-processing machinery applies
directly to trajectory summaries: vectorize, then cluster or search.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigError
from repro.textproc.tokenize import tokenize_filtered


class TfidfVectorizer:
    """Classic TF-IDF with smoothed IDF and L2-normalized rows."""

    def __init__(
        self,
        tokenizer: Callable[[str], list[str]] = tokenize_filtered,
        min_df: int = 1,
    ) -> None:
        if min_df < 1:
            raise ConfigError("min_df must be at least 1")
        self._tokenizer = tokenizer
        self._min_df = min_df
        self.vocabulary: dict[str, int] = {}
        self.idf: np.ndarray | None = None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from *documents*."""
        if not documents:
            raise ConfigError("cannot fit a vectorizer on zero documents")
        df: dict[str, int] = {}
        for doc in documents:
            for term in set(self._tokenizer(doc)):
                df[term] = df.get(term, 0) + 1
        terms = sorted(t for t, count in df.items() if count >= self._min_df)
        self.vocabulary = {term: i for i, term in enumerate(terms)}
        n = len(documents)
        self.idf = np.array(
            [1.0 + math.log((1 + n) / (1 + df[t])) for t in terms]
        )
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Dense ``(n_docs, vocab)`` TF-IDF matrix with unit rows."""
        if self.idf is None:
            raise ConfigError("vectorizer must be fitted before transform")
        matrix = np.zeros((len(documents), len(self.vocabulary)))
        for row, doc in enumerate(documents):
            tokens = self._tokenizer(doc)
            if not tokens:
                continue
            for token in tokens:
                col = self.vocabulary.get(token)
                if col is not None:
                    matrix[row, col] += 1.0
            matrix[row] /= len(tokens)  # term frequency
        matrix *= self.idf
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return matrix / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """:meth:`fit` then :meth:`transform` on the same documents."""
        return self.fit(documents).transform(documents)


def cosine_similarity_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities of L2-normalized rows."""
    return matrix @ matrix.T
