"""Input sanitization for raw GPS trajectories.

Real traces carry duplicate timestamps, out-of-order samples, dead zones
and teleport glitches; this module is the composable cleaning pass applied
before calibration.  Three entry points, from rawest to cleanest input:

* :func:`sanitize_records` — ``(lat, lon, t)`` triples straight off the
  wire: drops non-finite and out-of-range fields before a
  :class:`~repro.geo.GeoPoint` is ever constructed;
* :func:`sanitize_points` — constructed :class:`TrajectoryPoint` s: sorts
  by time, deduplicates equal timestamps, clips physically impossible
  speed spikes (teleports);
* :func:`sanitize_trajectory` — a :class:`RawTrajectory` in, a cleaned
  :class:`RawTrajectory` out; raises :class:`TrajectoryError` when fewer
  than two samples survive.

Every pass reports exactly what it removed in a
:class:`SanitizationReport`, so cleaning is observable, never silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint, haversine_m
from repro.obs import metrics
from repro.trajectory.model import RawTrajectory, TrajectoryPoint


@dataclass(frozen=True, slots=True)
class SanitizerConfig:
    """Knobs of the cleaning pass (see ``docs/ROBUSTNESS.md``)."""

    #: Implied speeds above this are physically impossible for road traffic;
    #: the offending sample is treated as a teleport glitch and dropped.
    max_speed_kmh: float = 300.0
    #: After this many consecutive teleport drops the jump is accepted as a
    #: genuine relocation (e.g. a GPS dead zone), not a glitch.
    max_consecutive_teleport_drops: int = 3
    #: Samples whose timestamps differ by no more than this are duplicates;
    #: the first one wins.
    duplicate_epsilon_s: float = 0.0
    #: Re-sort out-of-order samples by timestamp (stable) before cleaning.
    sort_timestamps: bool = True

    def __post_init__(self) -> None:
        if self.max_speed_kmh <= 0.0:
            raise TrajectoryError("max_speed_kmh must be positive")
        if self.max_consecutive_teleport_drops < 1:
            raise TrajectoryError("max_consecutive_teleport_drops must be >= 1")
        if self.duplicate_epsilon_s < 0.0:
            raise TrajectoryError("duplicate_epsilon_s must be >= 0")


@dataclass(slots=True)
class SanitizationReport:
    """What one cleaning pass removed (and kept)."""

    total: int = 0
    kept: int = 0
    dropped_nonfinite: int = 0
    dropped_out_of_range: int = 0
    dropped_duplicates: int = 0
    dropped_teleports: int = 0
    #: Samples that were out of timestamp order and had to be re-sorted.
    reordered: int = 0

    @property
    def dropped_total(self) -> int:
        return (
            self.dropped_nonfinite
            + self.dropped_out_of_range
            + self.dropped_duplicates
            + self.dropped_teleports
        )

    @property
    def clean(self) -> bool:
        """True when the input needed no repair at all."""
        return self.dropped_total == 0 and self.reordered == 0

    def to_dict(self) -> dict[str, object]:
        return {
            "total": self.total,
            "kept": self.kept,
            "dropped_nonfinite": self.dropped_nonfinite,
            "dropped_out_of_range": self.dropped_out_of_range,
            "dropped_duplicates": self.dropped_duplicates,
            "dropped_teleports": self.dropped_teleports,
            "reordered": self.reordered,
            "clean": self.clean,
        }

    def merge(self, other: "SanitizationReport") -> "SanitizationReport":
        """Combine two passes over the same data into one report."""
        return SanitizationReport(
            total=max(self.total, other.total),
            kept=other.kept,
            dropped_nonfinite=self.dropped_nonfinite + other.dropped_nonfinite,
            dropped_out_of_range=self.dropped_out_of_range + other.dropped_out_of_range,
            dropped_duplicates=self.dropped_duplicates + other.dropped_duplicates,
            dropped_teleports=self.dropped_teleports + other.dropped_teleports,
            reordered=self.reordered + other.reordered,
        )

    def __repr__(self) -> str:
        if self.clean:
            return f"SanitizationReport(clean, kept={self.kept})"
        return (
            f"SanitizationReport(kept={self.kept}/{self.total}, "
            f"nonfinite={self.dropped_nonfinite}, range={self.dropped_out_of_range}, "
            f"dup={self.dropped_duplicates}, teleport={self.dropped_teleports}, "
            f"reordered={self.reordered})"
        )


def sanitize_records(
    records: Iterable[Sequence[float]],
) -> tuple[list[TrajectoryPoint], SanitizationReport]:
    """Build points from raw ``(lat, lon, t)`` triples, dropping bad ones.

    A record is dropped (and counted) when any field is non-numeric or
    non-finite, or a coordinate is outside WGS-84 range.  Ordering and
    speed repairs are left to :func:`sanitize_points`.
    """
    report = SanitizationReport()
    points: list[TrajectoryPoint] = []
    for record in records:
        report.total += 1
        try:
            lat, lon, t = float(record[0]), float(record[1]), float(record[2])
        except (TypeError, ValueError, IndexError):
            report.dropped_nonfinite += 1
            continue
        if not (math.isfinite(lat) and math.isfinite(lon) and math.isfinite(t)):
            report.dropped_nonfinite += 1
            continue
        if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
            report.dropped_out_of_range += 1
            continue
        points.append(TrajectoryPoint(GeoPoint(lat, lon), t))
    report.kept = len(points)
    return points, report


def sanitize_points(
    points: Sequence[TrajectoryPoint], config: SanitizerConfig | None = None
) -> tuple[list[TrajectoryPoint], SanitizationReport]:
    """Sort, deduplicate and despike an already-constructed point sequence.

    Coordinates inside a :class:`~repro.geo.GeoPoint` are always finite and
    in range, so only the timestamp can still be non-finite here.
    """
    config = config or SanitizerConfig()
    report = SanitizationReport(total=len(points))

    finite = []
    for p in points:
        if math.isfinite(p.t):
            finite.append(p)
        else:
            report.dropped_nonfinite += 1

    if config.sort_timestamps:
        report.reordered = sum(
            1 for a, b in zip(finite, finite[1:]) if b.t < a.t
        )
        if report.reordered:
            finite = sorted(finite, key=lambda p: p.t)

    kept: list[TrajectoryPoint] = []
    consecutive_teleports = 0
    for p in finite:
        if not kept:
            kept.append(p)
            continue
        prev = kept[-1]
        dt = p.t - prev.t
        if dt <= config.duplicate_epsilon_s:
            report.dropped_duplicates += 1
            continue
        speed_kmh = haversine_m(prev.point, p.point) / dt * 3.6
        if speed_kmh > config.max_speed_kmh:
            consecutive_teleports += 1
            if consecutive_teleports <= config.max_consecutive_teleport_drops:
                report.dropped_teleports += 1
                continue
            # Too many "glitches" in a row: this is a genuine relocation
            # (dead zone); accept the point and stop second-guessing it.
        consecutive_teleports = 0
        kept.append(p)
    report.kept = len(kept)
    return kept, report


def sanitize_trajectory(
    trajectory: RawTrajectory, config: SanitizerConfig | None = None
) -> tuple[RawTrajectory, SanitizationReport]:
    """Clean a raw trajectory; raise when too little of it survives.

    Returns the input object itself (not a copy) when nothing needed
    repair.  Raises :class:`TrajectoryError` when fewer than two samples
    remain after cleaning — such input cannot be summarized at all.
    """
    points, report = sanitize_points(trajectory.points, config)
    m = metrics()
    m.counter("resilience.sanitize.calls").inc()
    if report.dropped_total:
        m.counter("resilience.sanitize.points_dropped").inc(report.dropped_total)
    if len(points) < 2:
        raise TrajectoryError(
            f"trajectory {trajectory.trajectory_id!r} is empty after "
            f"sanitization: {report.kept} of {report.total} samples survived"
        )
    if report.clean:
        return trajectory, report
    return RawTrajectory(points, trajectory.trajectory_id), report
