"""Trajectory IO: the paper's table format (CSV) and JSON.

The CSV layout mirrors Table I of the paper::

    latitude,longitude,timestamp
    39.9383,116.339,20131102 09:17:56

Timestamps are parsed to epoch seconds (naive UTC); a plain numeric
timestamp column is also accepted.
"""

from __future__ import annotations

import csv
import json
import math
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable

from repro.exceptions import GeometryError, TrajectoryError
from repro.geo import GeoPoint
from repro.trajectory.model import RawTrajectory, TrajectoryPoint

_TIME_FORMAT = "%Y%m%d %H:%M:%S"


def parse_timestamp(text: str) -> float:
    """Parse a paper-style ``YYYYMMDD HH:MM:SS`` or numeric timestamp."""
    text = text.strip()
    try:
        return float(text)
    except ValueError:
        pass
    try:
        dt = datetime.strptime(text, _TIME_FORMAT).replace(tzinfo=timezone.utc)
    except ValueError as exc:
        raise TrajectoryError(f"unparseable timestamp: {text!r}") from exc
    return dt.timestamp()


def format_timestamp(t: float) -> str:
    """Render epoch seconds in the paper's ``YYYYMMDD HH:MM:SS`` format."""
    return datetime.fromtimestamp(t, tz=timezone.utc).strftime(_TIME_FORMAT)


def read_trajectory_csv(path: str | Path, trajectory_id: str | None = None) -> RawTrajectory:
    """Read one trajectory from a CSV file in the Table-I layout.

    A header row is detected and skipped automatically.
    """
    path = Path(path)
    points: list[TrajectoryPoint] = []
    with path.open(newline="", encoding="utf-8") as handle:
        for row_num, row in enumerate(csv.reader(handle), start=1):
            if not row or all(not cell.strip() for cell in row):
                continue
            if row_num == 1 and not _is_float(row[0]):
                continue  # header
            if len(row) < 3:
                raise TrajectoryError(f"{path}:{row_num}: expected 3 columns, got {len(row)}")
            try:
                lat, lon = float(row[0]), float(row[1])
                point = GeoPoint(lat, lon)
            except (ValueError, GeometryError) as exc:
                raise TrajectoryError(f"{path}:{row_num}: bad coordinates: {exc}") from exc
            t = parse_timestamp(row[2])
            if not math.isfinite(t):
                raise TrajectoryError(f"{path}:{row_num}: non-finite timestamp {row[2]!r}")
            points.append(TrajectoryPoint(point, t))
    return RawTrajectory(points, trajectory_id or path.stem)


def write_trajectory_csv(trajectory: RawTrajectory, path: str | Path) -> None:
    """Write a trajectory as a Table-I-style CSV."""
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["latitude", "longitude", "timestamp"])
        for sample in trajectory:
            writer.writerow(
                [f"{sample.point.lat:.6f}", f"{sample.point.lon:.6f}",
                 format_timestamp(sample.t)]
            )


def trajectory_to_dict(trajectory: RawTrajectory) -> dict:
    """JSON-compatible representation of a raw trajectory."""
    return {
        "id": trajectory.trajectory_id,
        "points": [
            {"lat": s.point.lat, "lon": s.point.lon, "t": s.t} for s in trajectory
        ],
    }


def trajectory_from_dict(data: dict) -> RawTrajectory:
    """Inverse of :func:`trajectory_to_dict`.

    Raises :class:`TrajectoryError` (never a bare ``KeyError``/``ValueError``)
    for missing keys, non-numeric fields, and NaN/inf values.
    """
    try:
        points = []
        for p in data["points"]:
            t = float(p["t"])
            if not math.isfinite(t):
                raise TrajectoryError(f"non-finite timestamp {p['t']!r}")
            points.append(TrajectoryPoint(GeoPoint(float(p["lat"]), float(p["lon"])), t))
    except (KeyError, TypeError, ValueError, GeometryError) as exc:
        raise TrajectoryError(f"malformed trajectory dict: {exc}") from exc
    return RawTrajectory(points, data.get("id", ""))


def save_trajectories_json(trajectories: Iterable[RawTrajectory], path: str | Path) -> None:
    """Write many trajectories into one JSON file."""
    payload = [trajectory_to_dict(t) for t in trajectories]
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_trajectories_json(path: str | Path) -> list[RawTrajectory]:
    """Read trajectories written by :func:`save_trajectories_json`.

    Empty, truncated, or otherwise invalid JSON raises a typed
    :class:`TrajectoryError` naming the file, never a bare decode error.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        raise TrajectoryError(f"{path}: empty trajectory file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"{path}: truncated or invalid JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise TrajectoryError(
            f"{path}: expected a JSON list of trajectories, got {type(payload).__name__}"
        )
    return [trajectory_from_dict(item) for item in payload]


def _is_float(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
