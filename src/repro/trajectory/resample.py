"""Trajectory resampling — used to model different sampling strategies.

The paper (Sec. II-A, Fig. 2) argues that the same route recorded under
different sampling strategies must yield the same summary.  These helpers
let tests and experiments derive time- or distance-resampled variants of a
trajectory to verify that invariance.
"""

from __future__ import annotations

from repro.exceptions import TrajectoryError
from repro.geo import LocalProjector
from repro.trajectory.model import RawTrajectory, TrajectoryPoint


def downsample_by_time(trajectory: RawTrajectory, interval_s: float) -> RawTrajectory:
    """Keep samples at least *interval_s* apart in time; endpoints retained."""
    if interval_s <= 0.0:
        raise TrajectoryError(f"interval must be positive, got {interval_s}")
    kept = [trajectory[0]]
    for sample in trajectory.points[1:-1]:
        if sample.t - kept[-1].t >= interval_s:
            kept.append(sample)
    kept.append(trajectory[-1])
    return RawTrajectory(kept, trajectory.trajectory_id)


def downsample_by_distance(
    trajectory: RawTrajectory, spacing_m: float, projector: LocalProjector
) -> RawTrajectory:
    """Keep samples at least *spacing_m* apart in space; endpoints retained."""
    if spacing_m <= 0.0:
        raise TrajectoryError(f"spacing must be positive, got {spacing_m}")
    kept = [trajectory[0]]
    for sample in trajectory.points[1:-1]:
        if projector.distance_m(sample.point, kept[-1].point) >= spacing_m:
            kept.append(sample)
    kept.append(trajectory[-1])
    return RawTrajectory(kept, trajectory.trajectory_id)


def take_every(trajectory: RawTrajectory, stride: int) -> RawTrajectory:
    """Keep every *stride*-th sample; endpoints retained."""
    if stride < 1:
        raise TrajectoryError(f"stride must be at least 1, got {stride}")
    kept = list(trajectory.points[::stride])
    if kept[-1] is not trajectory.points[-1]:
        kept.append(trajectory.points[-1])
    if len(kept) < 2:
        kept = [trajectory.points[0], trajectory.points[-1]]
    return RawTrajectory(kept, trajectory.trajectory_id)
