"""Trajectory data model (paper Definitions 1, 3 and 4).

* :class:`RawTrajectory` — the database representation: a time-ordered
  sequence of sampled GPS locations.
* :class:`SymbolicTrajectory` — the calibrated representation: a sequence of
  ``(landmark, timestamp)`` anchors produced by
  :mod:`repro.calibration`.
* :class:`TrajectorySegment` — the sub-trajectory connecting two consecutive
  landmarks; the atomic unit that features are extracted from and that the
  partitioner labels.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import TrajectoryError
from repro.geo import BoundingBox, GeoPoint, LocalProjector
from repro.landmarks import LandmarkId


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One GPS sample: a location and its timestamp (seconds, epoch-like)."""

    point: GeoPoint
    t: float


class RawTrajectory:
    """A raw trajectory ``T = [(p1, t1), ..., (pn, tn)]`` (Definition 1)."""

    def __init__(
        self, points: Sequence[TrajectoryPoint], trajectory_id: str = ""
    ) -> None:
        if len(points) < 2:
            raise TrajectoryError(
                f"a raw trajectory needs at least 2 samples, got {len(points)}"
            )
        times = [p.t for p in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise TrajectoryError("trajectory timestamps must be non-decreasing")
        self.points: tuple[TrajectoryPoint, ...] = tuple(points)
        self.trajectory_id = trajectory_id
        self._times = times

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    @property
    def start_time(self) -> float:
        return self.points[0].t

    @property
    def end_time(self) -> float:
        return self.points[-1].t

    @property
    def duration_s(self) -> float:
        """Elapsed time between the first and last sample."""
        return self.end_time - self.start_time

    def coordinates(self) -> list[GeoPoint]:
        """The bare location sequence."""
        return [p.point for p in self.points]

    def bounding_box(self) -> BoundingBox:
        """Spatial extent of the trajectory."""
        return BoundingBox.from_points(self.coordinates())

    def length_m(self, projector: LocalProjector) -> float:
        """Travelled distance: the sum of consecutive sample gaps."""
        return sum(
            projector.distance_m(a.point, b.point)
            for a, b in zip(self.points, self.points[1:])
        )

    def slice_time(self, t_start: float, t_end: float) -> list[TrajectoryPoint]:
        """Samples with ``t_start <= t <= t_end`` (boundary inclusive)."""
        if t_end < t_start:
            raise TrajectoryError(f"empty time slice: [{t_start}, {t_end}]")
        lo = bisect.bisect_left(self._times, t_start)
        hi = bisect.bisect_right(self._times, t_end)
        return list(self.points[lo:hi])

    def __repr__(self) -> str:
        return (
            f"RawTrajectory(id={self.trajectory_id!r}, samples={len(self.points)}, "
            f"duration={self.duration_s:.0f}s)"
        )


@dataclass(frozen=True, slots=True)
class SymbolicEntry:
    """One anchor of a symbolic trajectory: a landmark and its pass time."""

    landmark: LandmarkId
    t: float


@dataclass(frozen=True, slots=True)
class TrajectorySegment:
    """Sub-trajectory between consecutive landmarks ``l_i`` and ``l_{i+1}``.

    ``index`` is the position of the segment in its symbolic trajectory
    (``TS_i`` in the paper).
    """

    index: int
    start_landmark: LandmarkId
    end_landmark: LandmarkId
    t_start: float
    t_end: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


class SymbolicTrajectory:
    """A calibrated trajectory: landmarks with timestamps (Definition 3)."""

    def __init__(
        self, entries: Sequence[SymbolicEntry], trajectory_id: str = ""
    ) -> None:
        if len(entries) < 2:
            raise TrajectoryError(
                f"a symbolic trajectory needs at least 2 landmarks, got {len(entries)}"
            )
        times = [e.t for e in entries]
        if any(b < a for a, b in zip(times, times[1:])):
            raise TrajectoryError("symbolic timestamps must be non-decreasing")
        if any(a.landmark == b.landmark for a, b in zip(entries, entries[1:])):
            raise TrajectoryError("consecutive anchors must be distinct landmarks")
        self.entries: tuple[SymbolicEntry, ...] = tuple(entries)
        self.trajectory_id = trajectory_id

    def __len__(self) -> int:
        """Number of landmarks, ``|T|`` in the paper."""
        return len(self.entries)

    def __iter__(self) -> Iterator[SymbolicEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> SymbolicEntry:
        return self.entries[index]

    def landmark_ids(self) -> list[LandmarkId]:
        """The landmark sequence."""
        return [e.landmark for e in self.entries]

    def segments(self) -> list[TrajectorySegment]:
        """The ``|T| - 1`` trajectory segments (Definition 4)."""
        return [
            TrajectorySegment(i, a.landmark, b.landmark, a.t, b.t)
            for i, (a, b) in enumerate(zip(self.entries, self.entries[1:]))
        ]

    @property
    def segment_count(self) -> int:
        return len(self.entries) - 1

    def __repr__(self) -> str:
        return (
            f"SymbolicTrajectory(id={self.trajectory_id!r}, "
            f"landmarks={len(self.entries)})"
        )
