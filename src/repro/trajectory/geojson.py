"""GeoJSON export for trajectories, networks, and summaries.

Everything a downstream user needs to drop the library's objects onto any
standard web map (Leaflet, Kepler, geojson.io): trajectories as
``LineString`` features with timestamps, road networks as styled
``FeatureCollection``s, and summaries as the trajectory plus its mentioned
landmarks with the summary sentences in the properties.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.landmarks import LandmarkIndex
from repro.roadnet import RoadNetwork
from repro.trajectory.model import RawTrajectory

if TYPE_CHECKING:  # pragma: no cover - avoids a trajectory <-> core cycle
    from repro.core.types import TrajectorySummary


def _line(coords: list[tuple[float, float]], properties: dict) -> dict:
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": coords},
        "properties": properties,
    }


def _point(lon: float, lat: float, properties: dict) -> dict:
    return {
        "type": "Feature",
        "geometry": {"type": "Point", "coordinates": [lon, lat]},
        "properties": properties,
    }


def trajectory_to_geojson(trajectory: RawTrajectory) -> dict:
    """A trajectory as a single ``LineString`` feature.

    Coordinates follow the GeoJSON convention (lon, lat); per-sample
    timestamps ride along in ``properties.timestamps``.
    """
    coords = [(p.point.lon, p.point.lat) for p in trajectory]
    return _line(
        coords,
        {
            "trajectory_id": trajectory.trajectory_id,
            "samples": len(trajectory),
            "start_time": trajectory.start_time,
            "end_time": trajectory.end_time,
            "timestamps": [p.t for p in trajectory],
        },
    )


def network_to_geojson(network: RoadNetwork) -> dict:
    """The road network as a ``FeatureCollection`` of edge LineStrings."""
    features = []
    for edge in network.edges():
        a = network.node(edge.u).point
        b = network.node(edge.v).point
        features.append(
            _line(
                [(a.lon, a.lat), (b.lon, b.lat)],
                {
                    "name": edge.name,
                    "grade": int(edge.grade),
                    "grade_name": edge.grade.display_name,
                    "width_m": edge.width_m,
                    "one_way": int(edge.direction) == 2,
                },
            )
        )
    return {"type": "FeatureCollection", "features": features}


def summary_to_geojson(
    trajectory: RawTrajectory,
    summary: "TrajectorySummary",
    landmarks: LandmarkIndex,
) -> dict:
    """A summary as a ``FeatureCollection``: the track plus its landmarks.

    The trajectory feature carries the full summary text; every mentioned
    landmark becomes a ``Point`` feature with its name, significance, and
    the sentence of the partition it belongs to.
    """
    features = [trajectory_to_geojson(trajectory)]
    features[0]["properties"]["summary"] = summary.text
    by_name = {lm.name: lm for lm in landmarks}
    emitted = set()
    for partition in summary.partitions:
        for role, name in (
            ("source", partition.source_name),
            ("destination", partition.destination_name),
        ):
            landmark = by_name.get(name)
            if landmark is None or name in emitted:
                continue
            emitted.add(name)
            features.append(
                _point(
                    landmark.point.lon,
                    landmark.point.lat,
                    {
                        "name": name,
                        "role": role,
                        "significance": landmark.significance,
                        "sentence": partition.sentence,
                    },
                )
            )
    return {"type": "FeatureCollection", "features": features}


def save_geojson(obj: dict, path: str | Path) -> None:
    """Write any of the above structures to *path*."""
    Path(path).write_text(json.dumps(obj), encoding="utf-8")
