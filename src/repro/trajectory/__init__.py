"""Trajectory models, IO, metrics, and resampling."""

from repro.trajectory.model import (
    RawTrajectory,
    SymbolicEntry,
    SymbolicTrajectory,
    TrajectoryPoint,
    TrajectorySegment,
)
from repro.trajectory.io import (
    format_timestamp,
    load_trajectories_json,
    parse_timestamp,
    read_trajectory_csv,
    save_trajectories_json,
    trajectory_from_dict,
    trajectory_to_dict,
    write_trajectory_csv,
)
from repro.trajectory.metrics import (
    average_speed_ms,
    headings_deg,
    instantaneous_speeds_ms,
    median_sampling_interval_s,
)
from repro.trajectory.similarity import (
    douglas_peucker,
    dtw_distance,
    euclidean_sync_distance,
    hausdorff_distance,
    lcss_similarity,
)
from repro.trajectory.geojson import (
    network_to_geojson,
    save_geojson,
    summary_to_geojson,
    trajectory_to_geojson,
)
from repro.trajectory.resample import (
    downsample_by_distance,
    downsample_by_time,
    take_every,
)
from repro.trajectory.sanitize import (
    SanitizationReport,
    SanitizerConfig,
    sanitize_points,
    sanitize_records,
    sanitize_trajectory,
)

__all__ = [
    "TrajectoryPoint",
    "RawTrajectory",
    "SymbolicEntry",
    "SymbolicTrajectory",
    "TrajectorySegment",
    "parse_timestamp",
    "format_timestamp",
    "read_trajectory_csv",
    "write_trajectory_csv",
    "trajectory_to_dict",
    "trajectory_from_dict",
    "save_trajectories_json",
    "load_trajectories_json",
    "instantaneous_speeds_ms",
    "average_speed_ms",
    "headings_deg",
    "median_sampling_interval_s",
    "euclidean_sync_distance",
    "dtw_distance",
    "lcss_similarity",
    "hausdorff_distance",
    "douglas_peucker",
    "trajectory_to_geojson",
    "network_to_geojson",
    "summary_to_geojson",
    "save_geojson",
    "downsample_by_time",
    "downsample_by_distance",
    "take_every",
    "SanitizerConfig",
    "SanitizationReport",
    "sanitize_records",
    "sanitize_points",
    "sanitize_trajectory",
]
