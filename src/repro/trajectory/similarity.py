"""Classical trajectory similarity measures.

The paper (Sec. IV-B) contrasts its feature-space similarity against the
traditional spatial(-temporal) measures — Euclidean distance and LCSS —
used throughout the related work.  This module implements those measures
(plus DTW and Hausdorff) so the library can serve the comparison and so
downstream users get a complete trajectory toolkit:

* :func:`euclidean_sync_distance` — mean distance at synchronized sample
  positions (requires equal lengths; resample first);
* :func:`dtw_distance` — dynamic time warping over point sequences;
* :func:`lcss_similarity` — longest common subsequence under a spatial
  matching threshold, normalized to [0, 1];
* :func:`hausdorff_distance` — the classic max-min set distance.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import TrajectoryError
from repro.geo import GeoPoint, LocalProjector


def _xy(points: Sequence[GeoPoint], projector: LocalProjector) -> list[tuple[float, float]]:
    return [projector.to_xy(p) for p in points]


def euclidean_sync_distance(
    a: Sequence[GeoPoint], b: Sequence[GeoPoint], projector: LocalProjector
) -> float:
    """Mean pointwise distance between equally long point sequences."""
    if len(a) != len(b):
        raise TrajectoryError(
            f"euclidean sync distance needs equal lengths: {len(a)} vs {len(b)}"
        )
    if not a:
        raise TrajectoryError("cannot compare empty sequences")
    return sum(projector.distance_m(p, q) for p, q in zip(a, b)) / len(a)


def dtw_distance(
    a: Sequence[GeoPoint], b: Sequence[GeoPoint], projector: LocalProjector
) -> float:
    """Dynamic-time-warping distance (sum of matched point distances).

    Standard O(n·m) dynamic program with the three classic moves
    (match, insert, delete), no warping window.
    """
    if not a or not b:
        raise TrajectoryError("cannot compare empty sequences")
    xa, xb = _xy(a, projector), _xy(b, projector)
    inf = math.inf
    prev = [inf] * (len(xb) + 1)
    prev[0] = 0.0
    for i in range(1, len(xa) + 1):
        cur = [inf] * (len(xb) + 1)
        for j in range(1, len(xb) + 1):
            d = math.hypot(xa[i - 1][0] - xb[j - 1][0], xa[i - 1][1] - xb[j - 1][1])
            cur[j] = d + min(prev[j - 1], prev[j], cur[j - 1])
        prev = cur
    return prev[len(xb)]


def lcss_similarity(
    a: Sequence[GeoPoint],
    b: Sequence[GeoPoint],
    projector: LocalProjector,
    epsilon_m: float = 50.0,
) -> float:
    """LCSS similarity in [0, 1]: matched fraction of the shorter sequence.

    Two samples match when they lie within *epsilon_m* of each other
    (Vlachos et al.); the similarity is ``LCSS / min(|a|, |b|)``.
    """
    if epsilon_m <= 0.0:
        raise TrajectoryError("epsilon must be positive")
    if not a or not b:
        raise TrajectoryError("cannot compare empty sequences")
    xa, xb = _xy(a, projector), _xy(b, projector)
    prev = [0] * (len(xb) + 1)
    for i in range(1, len(xa) + 1):
        cur = [0] * (len(xb) + 1)
        for j in range(1, len(xb) + 1):
            d = math.hypot(xa[i - 1][0] - xb[j - 1][0], xa[i - 1][1] - xb[j - 1][1])
            if d <= epsilon_m:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[len(xb)] / min(len(xa), len(xb))


def hausdorff_distance(
    a: Sequence[GeoPoint], b: Sequence[GeoPoint], projector: LocalProjector
) -> float:
    """Symmetric Hausdorff distance between two point sets, in metres."""
    if not a or not b:
        raise TrajectoryError("cannot compare empty sequences")
    xa, xb = _xy(a, projector), _xy(b, projector)

    def directed(xs, ys):
        worst = 0.0
        for x in xs:
            best = min(math.hypot(x[0] - y[0], x[1] - y[1]) for y in ys)
            worst = max(worst, best)
        return worst

    return max(directed(xa, xb), directed(xb, xa))


def douglas_peucker(
    points: Sequence[GeoPoint],
    tolerance_m: float,
    projector: LocalProjector,
) -> list[GeoPoint]:
    """Douglas–Peucker polyline simplification.

    Keeps the endpoints and every vertex farther than *tolerance_m* from
    the simplified baseline; the workhorse for shrinking dense GPS traces
    before storage or rendering.  Iterative (stack-based), so deep
    recursion on long traces is not a concern.
    """
    if tolerance_m <= 0.0:
        raise TrajectoryError("tolerance must be positive")
    n = len(points)
    if n < 3:
        return list(points)
    xy = _xy(points, projector)
    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        ax, ay = xy[lo]
        bx, by = xy[hi]
        vx, vy = bx - ax, by - ay
        seg_sq = vx * vx + vy * vy
        worst = -1.0
        worst_idx = -1
        for i in range(lo + 1, hi):
            px, py = xy[i]
            if seg_sq == 0.0:
                d = math.hypot(px - ax, py - ay)
            else:
                t = max(0.0, min(1.0, ((px - ax) * vx + (py - ay) * vy) / seg_sq))
                d = math.hypot(px - (ax + t * vx), py - (ay + t * vy))
            if d > worst:
                worst = d
                worst_idx = i
        if worst > tolerance_m:
            keep[worst_idx] = True
            stack.append((lo, worst_idx))
            stack.append((worst_idx, hi))
    return [p for p, k in zip(points, keep) if k]
