"""Derived trajectory statistics: speeds, headings, sampling cadence."""

from __future__ import annotations

from typing import Sequence

from repro.geo import LocalProjector, bearing_deg
from repro.trajectory.model import TrajectoryPoint


def instantaneous_speeds_ms(
    points: Sequence[TrajectoryPoint], projector: LocalProjector
) -> list[float]:
    """Per-gap speed (m/s) between consecutive samples.

    Gaps with zero elapsed time contribute a speed of 0 rather than raising,
    because duplicated timestamps do occur in real GPS feeds.
    """
    speeds = []
    for a, b in zip(points, points[1:]):
        dt = b.t - a.t
        if dt <= 0.0:
            speeds.append(0.0)
        else:
            speeds.append(projector.distance_m(a.point, b.point) / dt)
    return speeds


def average_speed_ms(
    points: Sequence[TrajectoryPoint], projector: LocalProjector
) -> float:
    """Total distance over total elapsed time (m/s); 0 for degenerate input."""
    if len(points) < 2:
        return 0.0
    elapsed = points[-1].t - points[0].t
    if elapsed <= 0.0:
        return 0.0
    distance = sum(
        projector.distance_m(a.point, b.point) for a, b in zip(points, points[1:])
    )
    return distance / elapsed


def headings_deg(
    points: Sequence[TrajectoryPoint], projector: LocalProjector,
    min_step_m: float = 1.0,
) -> list[float]:
    """Per-gap travel bearings, skipping jitter steps shorter than *min_step_m*.

    Tiny steps carry no directional information (pure GPS noise), so they are
    filtered out before heading-based analyses such as U-turn detection.
    """
    out = []
    for a, b in zip(points, points[1:]):
        if projector.distance_m(a.point, b.point) >= min_step_m:
            out.append(bearing_deg(a.point, b.point))
    return out


def median_sampling_interval_s(points: Sequence[TrajectoryPoint]) -> float:
    """Median time gap between consecutive samples; 0 for degenerate input."""
    gaps = sorted(b.t - a.t for a, b in zip(points, points[1:]))
    if not gaps:
        return 0.0
    mid = len(gaps) // 2
    if len(gaps) % 2 == 1:
        return gaps[mid]
    return (gaps[mid - 1] + gaps[mid]) / 2.0
