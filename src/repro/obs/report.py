"""Run reports: one artifact that joins everything a run observed.

A :class:`RunReport` collects, for one batch of summarizations:

* the **environment** fingerprint (python, platform, numpy, CPU count);
* the **metrics** snapshot of the active registry;
* per-stage **time totals** aggregated from the trace collector;
* **resilience** roll-ups — degradation events per stage, quarantine and
  retry counts, sanitization repairs;
* **serving** breakdown — when the batch ran on the sharded worker pool
  (``summarize_many(workers=N)``), per-shard items/throughput/duration
  from the ``serving.shard.<id>.*`` gauges;
* **summary quality** — partition-count distribution, selected-feature
  rates and keys, and the distribution of the irregular rates Γ_f(TP)
  that drove selection (the paper's Sec. V criterion).

Build one with :func:`build_run_report`, then ``to_json()`` /
``to_markdown()`` or ``write(prefix)`` for the paired artifact the CLI
(``stmaker report``, ``stmaker summarize --report-out``) and CI publish.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import TraceCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.types import TrajectorySummary
    from repro.resilience import BatchResult


def environment_fingerprint() -> dict[str, object]:
    """What hardware/software produced a measurement (for comparability)."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "executable": sys.executable,
    }


def _distribution(values: list[float]) -> dict[str, object]:
    """count/min/mean/max/p50/p95 of a value list (``{}``-safe)."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    out: dict[str, object] = {
        "count": len(ordered),
        "min": ordered[0],
        "mean": statistics.fmean(ordered),
        "max": ordered[-1],
        "p50": statistics.median(ordered),
    }
    if len(ordered) >= 2:
        # The exclusive quantile method extrapolates past the extremes on
        # small samples; a reported p95 must stay within what was observed.
        out["p95"] = min(statistics.quantiles(ordered, n=20)[-1], ordered[-1])
    else:
        out["p95"] = ordered[-1]
    return out


def _markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


@dataclass(slots=True)
class RunReport:
    """The joined observability artifact of one run."""

    created_unix: float
    environment: dict[str, object]
    stages: list[dict[str, object]]
    resilience: dict[str, object]
    quality: dict[str, object]
    metrics: dict[str, dict[str, object]] = field(default_factory=dict)
    #: Sharded-serving breakdown (``{}`` when the batch ran serially).
    serving: dict[str, object] = field(default_factory=dict)
    #: Failure-containment roll-up — crashes, shard retries/bisections,
    #: breaker state, shed load (``{}`` when nothing was contained).
    containment: dict[str, object] = field(default_factory=dict)
    #: Per-item latency accounting rolled up from the
    #: :class:`~repro.resilience.LatencyBreakdown` s of the supplied
    #: batches — phase distributions plus per-stage execution totals
    #: (``{}`` when no batch carried breakdowns).
    latency: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "created_unix": self.created_unix,
            "environment": self.environment,
            "stages": self.stages,
            "resilience": self.resilience,
            "quality": self.quality,
            "metrics": self.metrics,
            "serving": self.serving,
            "containment": self.containment,
            "latency": self.latency,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_markdown(self) -> str:
        sections = [
            "# STMaker run report",
            "",
            f"Generated at unix time {self.created_unix:.0f} on "
            f"Python {self.environment.get('python')} "
            f"({self.environment.get('platform')}, "
            f"{self.environment.get('cpu_count')} CPUs).",
        ]

        quality = self.quality
        sections += [
            "",
            "## Summary quality",
            "",
            f"- summaries: **{quality.get('summaries', 0)}**",
            f"- partitions per summary: "
            f"{json.dumps(quality.get('partition_counts', {}))} "
            f"(mean {quality.get('partitions_mean', 0.0):.2f})",
            f"- selected features per partition: "
            f"{quality.get('selected_per_partition', 0.0):.2f}",
        ]
        top = quality.get("selected_feature_keys", {})
        if top:
            sections += [
                "",
                _markdown_table(
                    ["selected feature", "mentions"],
                    [[key, count] for key, count in top.items()],
                ),
            ]
        gamma = quality.get("gamma_selected", {"count": 0})
        if gamma.get("count"):
            sections += [
                "",
                "Γ (irregular rate) of selected features: "
                f"min {gamma['min']:.3f} · p50 {gamma['p50']:.3f} · "
                f"p95 {gamma['p95']:.3f} · max {gamma['max']:.3f} "
                f"over {gamma['count']} assessments.",
            ]

        resilience = self.resilience
        sections += [
            "",
            "## Resilience",
            "",
            f"- degraded summaries: **{resilience.get('degraded_summaries', 0)}**"
            f" / {quality.get('summaries', 0)}",
            f"- quarantined items: **{resilience.get('quarantined', 0)}**",
            f"- transient retries: {resilience.get('retries', 0)}",
            f"- sanitized inputs: {resilience.get('sanitized_inputs', 0)} "
            f"(points dropped: {resilience.get('points_dropped', 0)})",
        ]
        per_stage = resilience.get("fallbacks_by_stage", {})
        if per_stage:
            sections += [
                "",
                _markdown_table(
                    ["stage", "fallbacks"],
                    [[stage, count] for stage, count in per_stage.items()],
                ),
            ]
        entries = resilience.get("quarantine_entries", [])
        if entries:
            sections += [
                "",
                "Quarantine post-mortem:",
                "",
                _markdown_table(
                    ["index", "trajectory", "error", "attempts",
                     "duration s", "shard"],
                    [
                        [
                            e["index"], e["trajectory_id"], e["error_type"],
                            e["attempts"], e.get("total_duration_s", 0.0),
                            "-" if e.get("shard_id") is None else e["shard_id"],
                        ]
                        for e in entries
                    ],
                ),
            ]

        containment = self.containment
        if containment:
            sections += [
                "",
                "## Failure containment",
                "",
                f"- worker crash incidents: **{containment.get('crashes', 0)}**",
                f"- shards retried: {containment.get('retried_shards', 0)}"
                f" · bisected: {containment.get('bisected_shards', 0)}",
                f"- items shed by admission control: "
                f"{containment.get('shed_items', 0)}"
                f" · degraded admissions: "
                f"{containment.get('degraded_admissions', 0)}",
                f"- breaker trips: {containment.get('breaker_trips', 0)}"
                f" · shards denied by open breakers: "
                f"{containment.get('breaker_denied_shards', 0)}",
            ]
            breakers = containment.get("breakers", [])
            if breakers:
                sections += [
                    "",
                    _markdown_table(
                        ["breaker", "state"],
                        [[b["name"], b["state"]] for b in breakers],
                    ),
                ]

        phases = self.latency.get("phases_ms", {})
        if phases:
            sections += [
                "",
                "## Item latency accounting",
                "",
                f"Phase-by-phase wall clock of "
                f"**{self.latency.get('items', 0)} item(s)** "
                f"({self.latency.get('attempts_total', 0)} summarization "
                f"attempt(s)).",
                "",
                _markdown_table(
                    ["phase", "min ms", "mean ms", "p50 ms", "p95 ms", "max ms"],
                    [
                        [
                            phase, dist.get("min", 0.0), dist.get("mean", 0.0),
                            dist.get("p50", 0.0), dist.get("p95", 0.0),
                            dist.get("max", 0.0),
                        ]
                        for phase, dist in phases.items()
                        if dist.get("count")
                    ],
                ),
            ]
            stage_totals = self.latency.get("stage_totals_ms", {})
            if stage_totals:
                sections += [
                    "",
                    _markdown_table(
                        ["exec stage", "total ms"],
                        [[stage, total] for stage, total in stage_totals.items()],
                    ),
                ]

        shards = self.serving.get("shards", [])
        if shards:
            sections += [
                "",
                "## Sharded serving",
                "",
                f"Batch served by **{self.serving.get('workers', '?')} worker(s)** "
                f"over **{len(shards)} shard(s)**.",
                "",
                _markdown_table(
                    ["shard", "items", "ok", "quarantined", "duration ms", "items/s"],
                    [
                        [
                            s["shard_id"], s["items"], s["ok"], s["quarantined"],
                            s["duration_ms"], s["items_per_s"],
                        ]
                        for s in shards
                    ],
                ),
            ]

        if self.stages:
            sections += [
                "",
                "## Pipeline stage times (traced)",
                "",
                _markdown_table(
                    ["stage", "calls", "total ms", "mean ms"],
                    [
                        [s["name"], s["count"], s["total_ms"], s["mean_ms"]]
                        for s in self.stages
                    ],
                ),
            ]

        if self.metrics:
            rows = []
            for name, data in self.metrics.items():
                if data["type"] == "histogram":
                    rows.append([
                        name, "histogram",
                        f"count={data['count']:g} mean={data['mean']:.3f} "
                        f"p95={data['p95'] if data['p95'] is not None else '-'}",
                    ])
                else:
                    rows.append([name, data["type"], f"{data['value']:g}"])
            sections += [
                "",
                "## Metrics",
                "",
                _markdown_table(["series", "type", "value"], rows),
            ]
        return "\n".join(sections) + "\n"

    def write(self, prefix) -> tuple[str, str]:
        """Write ``<prefix>.json`` and ``<prefix>.md``; returns both paths."""
        json_path, md_path = f"{prefix}.json", f"{prefix}.md"
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        with open(md_path, "w", encoding="utf-8") as fh:
            fh.write(self.to_markdown())
        return json_path, md_path


def _quality_stats(summaries: list["TrajectorySummary"]) -> dict[str, object]:
    partition_counts: dict[str, int] = {}
    selected_keys: dict[str, int] = {}
    gamma_selected: list[float] = []
    gamma_assessed: list[float] = []
    n_partitions = 0
    n_selected = 0
    for summary in summaries:
        key = str(summary.partition_count)
        partition_counts[key] = partition_counts.get(key, 0) + 1
        for partition in summary.partitions:
            n_partitions += 1
            n_selected += len(partition.selected)
            for assessment in partition.assessments:
                gamma_assessed.append(assessment.irregular_rate)
            for assessment in partition.selected:
                gamma_selected.append(assessment.irregular_rate)
                selected_keys[assessment.key] = selected_keys.get(assessment.key, 0) + 1
    return {
        "summaries": len(summaries),
        "partition_counts": dict(sorted(partition_counts.items())),
        "partitions_mean": n_partitions / len(summaries) if summaries else 0.0,
        "selected_per_partition": n_selected / n_partitions if n_partitions else 0.0,
        "selected_feature_keys": dict(
            sorted(selected_keys.items(), key=lambda kv: -kv[1])
        ),
        "gamma_selected": _distribution(gamma_selected),
        "gamma_assessed": _distribution(gamma_assessed),
    }


def _resilience_stats(
    summaries: list["TrajectorySummary"],
    batches: list["BatchResult"],
) -> dict[str, object]:
    fallbacks_by_stage: dict[str, int] = {}
    degraded = 0
    for summary in summaries:
        if summary.degradation.degraded:
            degraded += 1
        for event in summary.degradation:
            fallbacks_by_stage[event.stage] = fallbacks_by_stage.get(event.stage, 0) + 1
    quarantined = sum(len(batch.quarantined) for batch in batches)
    retries = sum(
        entry.attempts - 1
        for batch in batches
        for entry in batch.quarantined
        if entry.attempts > 1
    )
    sanitized = 0
    points_dropped = 0
    for batch in batches:
        for report in batch.sanitization:
            if report is not None and not report.clean:
                sanitized += 1
                points_dropped += report.dropped_total
    return {
        "degraded_summaries": degraded,
        "fallbacks_by_stage": dict(sorted(fallbacks_by_stage.items())),
        "quarantined": quarantined,
        "retries": retries,
        "sanitized_inputs": sanitized,
        "points_dropped": points_dropped,
        "quarantine_entries": [
            entry.to_dict() for batch in batches for entry in batch.quarantined
        ],
    }


def _serving_stats(
    metrics_snapshot: dict[str, dict[str, object]],
) -> dict[str, object]:
    """Per-shard throughput rows from the ``serving.shard.<id>.*`` gauges.

    Returns ``{}`` when the run never touched the worker pool, so serial
    run reports are unchanged.
    """
    per_shard: dict[int, dict[str, object]] = {}
    for name, data in metrics_snapshot.items():
        parts = name.split(".")
        if (
            len(parts) != 4
            or parts[0] != "serving"
            or parts[1] != "shard"
            or not parts[2].isdigit()
        ):
            continue
        shard = per_shard.setdefault(int(parts[2]), {"shard_id": int(parts[2])})
        value = data.get("value")
        # Counts arrive as float gauges; render them as the ints they are.
        if parts[3] in ("items", "ok", "quarantined") and value is not None:
            value = int(value)  # type: ignore[arg-type]
        shard[parts[3]] = value
    if not per_shard:
        return {}
    out: dict[str, object] = {
        "shards": [per_shard[shard_id] for shard_id in sorted(per_shard)],
    }
    for gauge, key in (("serving.workers", "workers"), ("serving.shards", "shard_count")):
        data = metrics_snapshot.get(gauge)
        if data and data.get("value") is not None:
            out[key] = int(data["value"])  # type: ignore[arg-type]
    return out


#: Containment counters lifted into the report, metric name → report key.
_CONTAINMENT_COUNTERS = {
    "serving.crashes": "crashes",
    "serving.retried_shards": "retried_shards",
    "serving.bisected_shards": "bisected_shards",
    "serving.shed_items": "shed_items",
    "serving.degraded_admissions": "degraded_admissions",
    "serving.breaker.trips": "breaker_trips",
    "serving.breaker.denied_shards": "breaker_denied_shards",
}

#: ``serving.breaker.<name>.state`` gauge values, index = gauge value.
_BREAKER_STATES = ("closed", "half_open", "open")


#: LatencyBreakdown phase attributes surfaced in the report, in the order
#: they occur in an item's life.
_LATENCY_PHASES = (
    "admission_wait_s", "queue_wait_s", "exec_s",
    "backoff_s", "reassembly_s", "total_s",
)


def _latency_stats(batches: list["BatchResult"]) -> dict[str, object]:
    """Phase distributions + stage totals from the batches' breakdowns.

    Returns ``{}`` when no batch carried latency breakdowns (pre-existing
    artifacts, synthetic results), so such reports are unchanged.
    """
    breakdowns = [
        lat for batch in batches for lat in batch.latencies if lat is not None
    ]
    if not breakdowns:
        return {}
    phases: dict[str, dict[str, object]] = {}
    for attr in _LATENCY_PHASES:
        values = [getattr(lat, attr) * 1000.0 for lat in breakdowns]
        phases[attr[: -len("_s")] + "_ms"] = _distribution(values)
    stage_totals: dict[str, float] = {}
    for lat in breakdowns:
        for stage, seconds in lat.stages_s.items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds * 1000.0
    return {
        "items": len(breakdowns),
        "attempts_total": sum(lat.attempts for lat in breakdowns),
        "phases_ms": phases,
        "stage_totals_ms": dict(
            sorted(stage_totals.items(), key=lambda kv: -kv[1])
        ),
    }


def _containment_stats(
    metrics_snapshot: dict[str, dict[str, object]],
) -> dict[str, object]:
    """The failure-containment roll-up from the serving counters/gauges.

    Returns ``{}`` when the run recorded no containment activity at all
    (no crashes, no shedding, no breakers) so undisturbed run reports are
    unchanged.
    """
    out: dict[str, object] = {}
    for metric, key in _CONTAINMENT_COUNTERS.items():
        data = metrics_snapshot.get(metric)
        if data and data.get("value"):
            out[key] = int(data["value"])  # type: ignore[arg-type]
    breakers = []
    for name, data in metrics_snapshot.items():
        if not (name.startswith("serving.breaker.") and name.endswith(".state")):
            continue
        value = data.get("value")
        if value is None:
            continue
        state_index = int(value)  # type: ignore[arg-type]
        if not 0 <= state_index < len(_BREAKER_STATES):
            continue
        breakers.append({
            "name": name[len("serving.breaker."):-len(".state")],
            "state": _BREAKER_STATES[state_index],
        })
    if breakers and (out or any(b["state"] != "closed" for b in breakers)):
        out["breakers"] = sorted(breakers, key=lambda b: b["name"])
    if not out:
        return {}
    for key in _CONTAINMENT_COUNTERS.values():
        out.setdefault(key, 0)
    return out


def build_run_report(
    summaries: Iterable["TrajectorySummary"] = (),
    *,
    batches: Iterable["BatchResult"] = (),
    registry: MetricsRegistry | NullMetrics | None = None,
    collector: TraceCollector | None = None,
    environment: dict[str, object] | None = None,
) -> RunReport:
    """Join summaries, batch results, metrics, and traces into one report.

    Every input is optional: reports degrade to whatever was observed
    (e.g. no ``stages`` section when tracing was off).  ``batches`` also
    contribute their summaries implicitly — pass either, not both copies.
    """
    summaries = list(summaries)
    batches = list(batches)
    for batch in batches:
        summaries.extend(batch.summaries)
    retries_counter = 0.0
    metrics_snapshot: dict[str, dict[str, object]] = {}
    if registry is not None:
        metrics_snapshot = registry.snapshot()
        counter = metrics_snapshot.get("resilience.batch.retries")
        if counter:
            retries_counter = float(counter["value"])  # type: ignore[arg-type]
    stages: list[dict[str, object]] = []
    if collector is not None:
        stages = [
            {
                "name": total.name,
                "count": total.count,
                "total_ms": total.total_ms,
                "mean_ms": total.mean_ms,
            }
            for total in collector.stage_totals()
        ]
    resilience = _resilience_stats(summaries, batches)
    # The registry sees retries that succeeded eventually; quarantine
    # entries only record the attempts of items that kept failing.
    resilience["retries"] = max(resilience["retries"], int(retries_counter))
    return RunReport(
        created_unix=time.time(),
        environment=environment or environment_fingerprint(),
        stages=stages,
        resilience=resilience,
        quality=_quality_stats(summaries),
        metrics=metrics_snapshot,
        serving=_serving_stats(metrics_snapshot),
        containment=_containment_stats(metrics_snapshot),
        latency=_latency_stats(batches),
    )
