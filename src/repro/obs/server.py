"""Live ops surface: scrape a *running* pipeline over HTTP.

Everything else in :mod:`repro.obs` reaches disk after the run ends; a
long-lived serving process needs its telemetry **while it runs**.
:func:`start_ops_server` puts a stdlib :class:`ThreadingHTTPServer` on a
background daemon thread exposing:

=============== =====================================================
``GET /metrics``  live Prometheus text exposition of the active
                  registry (what a Prometheus scrape job points at)
``GET /healthz``  liveness — 200 as long as the process serves
``GET /readyz``   readiness — 503 until the pipeline is warm
                  (:func:`mark_ready` / ``OpsServer.set_ready``)
``GET /status``   a JSON :class:`~repro.obs.report.RunReport` snapshot
                  of the run so far, plus uptime/readiness
``GET /events``   the recent event tail (``?n=`` limits the count)
=============== =====================================================

Zero dependencies, loopback by default, one thread per in-flight request
(scrapes are cheap snapshots, never blocking the pipeline).  The CLI wires
it as ``--ops-port`` on every subcommand and as the standalone
``stmaker ops-serve`` loop; see ``docs/OBSERVABILITY.md`` for curl
examples.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.events import enable_events
from repro.obs.export import render_prometheus
from repro.obs.flight import FlightRecorder, flight_recorder
from repro.obs.metrics import MetricsRegistry, metrics
from repro.obs.report import build_run_report
from repro.obs.slo import slo_engine
from repro.obs.trace import TraceCollector, get_collector

logger = logging.getLogger("repro.obs.server")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _OpsHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`OpsServer`."""

    daemon_threads = True
    # Ops ports restart with the process; do not linger in TIME_WAIT.
    allow_reuse_address = True
    ops: "OpsServer"


class _OpsHandler(BaseHTTPRequestHandler):
    server: _OpsHTTPServer

    # BaseHTTPRequestHandler logs to stderr by default; route it through
    # the repro logger so -v controls it like everything else.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("ops %s - %s", self.address_string(), format % args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        ops = self.server.ops
        url = urlparse(self.path)
        try:
            if url.path == "/metrics":
                text = render_prometheus(ops.registry_now())
                self._send(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
            elif url.path == "/healthz":
                self._send_json(200, {"status": "ok", "uptime_s": ops.uptime_s})
            elif url.path == "/readyz":
                ready = ops.is_ready()
                self._send_json(
                    200 if ready else 503,
                    {"ready": ready, "uptime_s": ops.uptime_s},
                )
            elif url.path == "/status":
                self._send_json(200, ops.status())
            elif url.path == "/events":
                query = parse_qs(url.query)
                n = None
                if "n" in query:
                    try:
                        n = int(query["n"][0])
                    except ValueError:
                        self._send_json(
                            400, {"error": f"invalid n={query['n'][0]!r}"}
                        )
                        return
                events = [event.to_dict() for event in ops.event_tail(n)]
                self._send_json(
                    200,
                    {
                        "count": len(events),
                        "events_seen": ops.events_seen,
                        "events": events,
                    },
                )
            else:
                self._send_json(404, {
                    "error": f"unknown path {url.path!r}",
                    "endpoints": ["/metrics", "/healthz", "/readyz", "/status", "/events"],
                })
        except Exception as exc:  # a broken scrape must not kill the server
            logger.exception("ops endpoint %s failed", url.path)
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass  # client already went away


class OpsServer:
    """The background ops endpoint; use via :func:`start_ops_server`.

    ``registry``/``collector`` pin the sinks the endpoints read; when left
    ``None`` each request resolves the *currently active* sinks, so a
    server started before ``enable_metrics()`` still serves live data.
    ``recorder`` backs ``/events``; without one the server subscribes its
    own tail-only :class:`~repro.obs.flight.FlightRecorder` to the bus.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: MetricsRegistry | None = None,
        collector: TraceCollector | None = None,
        recorder: FlightRecorder | None = None,
        ready: bool = False,
        ready_check=None,
        tail_capacity: int = 1024,
    ) -> None:
        self._registry = registry
        self._collector = collector
        self._ready = ready
        self._ready_check = ready_check
        self._started = time.monotonic()
        self._owns_recorder = recorder is None and flight_recorder() is None
        if recorder is not None:
            self._recorder = recorder
        elif flight_recorder() is not None:
            self._recorder = flight_recorder()
        else:
            # Tail-only ring: no triggers, no dumps — just /events fodder.
            self._recorder = FlightRecorder(
                capacity=tail_capacity, trigger_kinds=frozenset()
            )
        self._httpd = _OpsHTTPServer((host, port), _OpsHandler)
        self._httpd.ops = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-ops-{self._httpd.server_address[1]}",
            daemon=True,
        )
        self._stopped = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "OpsServer":
        if self._owns_recorder:
            # /events needs a ring on the bus; shared recorders (an
            # explicit one, or the active flight recorder) already listen.
            enable_events().subscribe(self._recorder)
        self._started = time.monotonic()
        self._thread.start()
        logger.info("ops server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._stopped:
            return
        self._stopped = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
        if self._owns_recorder:
            from repro.obs.events import events

            bus = events()
            if bus is not None:
                bus.unsubscribe(self._recorder)
        logger.info("ops server on port %d stopped", self.port)

    def __enter__(self) -> "OpsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- state ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def set_ready(self, ready: bool = True) -> None:
        """Flip readiness (used once the model/pipeline is warm)."""
        self._ready = ready

    def is_ready(self) -> bool:
        if self._ready_check is not None:
            return bool(self._ready_check())
        return self._ready

    # -- endpoint backends --------------------------------------------------------

    def registry_now(self):
        return self._registry if self._registry is not None else metrics()

    def collector_now(self):
        return self._collector if self._collector is not None else get_collector()

    def event_tail(self, n: int | None = None):
        return self._recorder.tail(n)

    @property
    def events_seen(self) -> int:
        return self._recorder.events_seen

    def status(self) -> dict[str, object]:
        """The ``/status`` payload: a mid-run RunReport snapshot + liveness."""
        report = build_run_report(
            registry=self.registry_now(), collector=self.collector_now()
        )
        payload = report.to_dict()
        payload["ops"] = {
            "ready": self.is_ready(),
            "uptime_s": self.uptime_s,
            "events_seen": self.events_seen,
            "url": self.url,
        }
        engine = slo_engine()
        if engine is not None:
            payload["slo"] = engine.snapshot()
        for name, provider in status_sections().items():
            try:
                payload[name] = provider()
            except Exception as exc:  # a broken provider must not 500 /status
                payload[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return payload


#: Keys :meth:`OpsServer.status` produces itself; providers cannot shadow
#: them (nor the RunReport's own top-level keys — first write wins there
#: is the provider's, so they are merely discouraged, but these two would
#: silently disappear).
_RESERVED_SECTIONS = frozenset({"ops", "slo"})

_status_sections: dict[str, object] = {}
_sections_lock = threading.Lock()


def register_status_section(name: str, provider) -> None:
    """Add a named block to every ``/status`` payload.

    *provider* is a zero-argument callable returning a JSON-serializable
    dict, invoked per scrape; exceptions are captured into the block
    instead of failing the endpoint.  How subsystems without their own
    HTTP surface (the request front-end's queue depths and cache stats)
    appear on the one ops page.  Re-registering a name replaces it.
    """
    if name in _RESERVED_SECTIONS:
        raise ValueError(
            f"status section {name!r} is reserved; pick another name"
        )
    with _sections_lock:
        _status_sections[name] = provider


def unregister_status_section(name: str) -> None:
    """Remove a registered section (no-op when absent)."""
    with _sections_lock:
        _status_sections.pop(name, None)


def status_sections() -> dict[str, object]:
    """A snapshot of the registered section providers."""
    with _sections_lock:
        return dict(_status_sections)


_active: OpsServer | None = None


def active_ops_server() -> OpsServer | None:
    """The running server started by :func:`start_ops_server`, if any."""
    return _active


def start_ops_server(
    port: int = 0, host: str = "127.0.0.1", **kwargs
) -> OpsServer:
    """Start the ops endpoint on a background thread and return it.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.port``).  Only one process-wide server is tracked: starting a
    second stops the first.  Accepts the :class:`OpsServer` keyword
    arguments (``registry``, ``collector``, ``recorder``, ``ready``,
    ``ready_check``).
    """
    global _active
    if _active is not None:
        _active.stop()
    _active = OpsServer(host, port, **kwargs).start()
    return _active


def stop_ops_server() -> None:
    """Stop the tracked server (no-op when none is running)."""
    global _active
    if _active is not None:
        _active.stop()
        _active = None


def mark_ready(ready: bool = True) -> None:
    """Flip the tracked server's readiness; no-op without a server.

    Lets deep pipeline code (the CLI after its model build, a future
    request router after cache warmup) signal readiness without threading
    the server handle through every layer.
    """
    if _active is not None:
        _active.set_ready(ready)
