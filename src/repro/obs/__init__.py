"""Observability substrate: tracing spans, metrics registry, profiling.

Everything here is zero-dependency and **off by default**: with neither
tracing nor metrics enabled, an instrumented call site reduces to a
function call returning a shared no-op singleton, keeping the hot path
fast.  Enable explicitly (or via the CLI's ``--trace``/``--metrics-out``
flags)::

    from repro import obs

    collector = obs.enable_tracing()
    registry = obs.enable_metrics()
    scenario.stmaker.summarize(trip.raw)
    print(collector.to_json())        # nested spans, wall time, outcome
    print(registry.render_text())     # counters / gauges / histograms
    obs.disable_tracing(); obs.disable_metrics()

See ``docs/OBSERVABILITY.md`` for the span/metric naming conventions and
the catalogue the pipeline emits.
"""

from repro.obs.logconfig import configure_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    metrics,
    metrics_enabled,
)
from repro.obs.profile import ProfileReport, profiled
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanRecord,
    StageTotal,
    Timer,
    TraceCollector,
    disable_tracing,
    enable_tracing,
    get_collector,
    span,
    timed_span,
    tracing_enabled,
)

__all__ = [
    # trace
    "span",
    "timed_span",
    "Timer",
    "Span",
    "SpanRecord",
    "StageTotal",
    "TraceCollector",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_collector",
    "NULL_SPAN",
    # metrics
    "metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "NULL_METRICS",
    # profiling / logging
    "profiled",
    "ProfileReport",
    "configure_logging",
]
