"""Observability substrate: tracing spans, metrics registry, profiling.

Everything here is zero-dependency and **off by default**: with neither
tracing nor metrics enabled, an instrumented call site reduces to a
function call returning a shared no-op singleton, keeping the hot path
fast.  Enable explicitly (or via the CLI's ``--trace``/``--metrics-out``
flags)::

    from repro import obs

    collector = obs.enable_tracing()
    registry = obs.enable_metrics()
    scenario.stmaker.summarize(trip.raw)
    print(collector.to_json())        # nested spans, wall time, outcome
    print(registry.render_text())     # counters / gauges / histograms
    obs.disable_tracing(); obs.disable_metrics()

See ``docs/OBSERVABILITY.md`` for the span/metric naming conventions and
the catalogue the pipeline emits.
"""

from repro.obs.aggregate import (
    TelemetrySnapshot,
    apply_telemetry,
    capture_telemetry,
)
from repro.obs.analyze import (
    critical_path,
    group_traces,
    item_latencies,
    load_events,
    load_spans,
    render_analysis,
    trace_problems,
    trace_roots,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventBus,
    EventLog,
    JsonlEventSink,
    PipelineEvent,
    clear_stage_sink,
    disable_events,
    emit_event,
    enable_events,
    events,
    events_enabled,
    stage_scope,
    stage_sink,
)
from repro.obs.export import (
    chrome_trace_events,
    escape_help,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    to_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.flight import (
    DEFAULT_TRIGGER_KINDS,
    FlightRecorder,
    disable_flight_recorder,
    enable_flight_recorder,
    flight_recorder,
)
from repro.obs.logconfig import configure_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    disable_metrics,
    enable_metrics,
    metrics,
    metrics_enabled,
    scoped_metrics,
)
from repro.obs.profile import ProfileReport, profiled
from repro.obs.report import RunReport, build_run_report, environment_fingerprint
from repro.obs.server import (
    PROMETHEUS_CONTENT_TYPE,
    OpsServer,
    active_ops_server,
    mark_ready,
    register_status_section,
    start_ops_server,
    status_sections,
    stop_ops_server,
    unregister_status_section,
)
from repro.obs.slo import (
    SLO_KINDS,
    SLObjective,
    SLOEngine,
    disable_slo,
    enable_slo,
    parse_slo,
    slo_engine,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanRecord,
    StageTotal,
    Timer,
    TraceCollector,
    TraceContext,
    clear_span_context,
    current_trace,
    disable_tracing,
    enable_tracing,
    get_collector,
    new_trace_id,
    span,
    start_trace,
    timed_span,
    tracing_enabled,
    use_trace,
    wall_clock_of,
)

__all__ = [
    # trace
    "span",
    "timed_span",
    "Timer",
    "Span",
    "SpanRecord",
    "StageTotal",
    "TraceCollector",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_collector",
    "NULL_SPAN",
    # trace context (request identity)
    "TraceContext",
    "new_trace_id",
    "start_trace",
    "current_trace",
    "use_trace",
    "wall_clock_of",
    "clear_span_context",
    # metrics
    "metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "NULL_METRICS",
    "scoped_metrics",
    # exporters
    "render_prometheus",
    "parse_prometheus",
    "write_prometheus",
    "prometheus_name",
    "escape_help",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    # cross-process aggregation
    "TelemetrySnapshot",
    "capture_telemetry",
    "apply_telemetry",
    # flight recorder
    "FlightRecorder",
    "DEFAULT_TRIGGER_KINDS",
    "flight_recorder",
    "enable_flight_recorder",
    "disable_flight_recorder",
    # ops server
    "OpsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "start_ops_server",
    "stop_ops_server",
    "active_ops_server",
    "mark_ready",
    "register_status_section",
    "unregister_status_section",
    "status_sections",
    # events
    "EVENT_KINDS",
    "PipelineEvent",
    "EventBus",
    "EventLog",
    "JsonlEventSink",
    "events",
    "enable_events",
    "disable_events",
    "events_enabled",
    "emit_event",
    "stage_scope",
    "stage_sink",
    "clear_stage_sink",
    # artifact analysis
    "load_spans",
    "load_events",
    "group_traces",
    "trace_roots",
    "trace_problems",
    "critical_path",
    "item_latencies",
    "render_analysis",
    # service-level objectives
    "SLO_KINDS",
    "SLObjective",
    "SLOEngine",
    "enable_slo",
    "disable_slo",
    "slo_engine",
    "parse_slo",
    # run reports
    "RunReport",
    "build_run_report",
    "environment_fingerprint",
    # profiling / logging
    "profiled",
    "ProfileReport",
    "configure_logging",
]
