"""Offline analysis of span/event artifacts: traces, critical paths, latency.

The runtime half of the tracing stack produces artifacts — a collector
JSON dump (``--trace-out``), an event JSONL stream (``--events-out``),
flight-recorder captures — and this module is the half that reads them
back.  ``stmaker obs analyze`` drives it from the command line:

* **traces** are reconstructed by grouping spans on ``trace_id`` —
  including spans grafted home from worker processes, which is the point
  of request-scoped tracing: one item, one tree, regardless of executor;
* each trace's **critical path** is the walk from its root span down the
  longest-duration child at every level — where the item's wall clock
  actually went;
* **well-formedness** is checked, not assumed (:func:`trace_problems`):
  duplicate span ids, multiple roots, unresolvable parents, and parent
  cycles are reported, because a malformed tree silently renders as a
  plausible-looking wrong one;
* the ``item_end`` events carry each item's
  :class:`~repro.resilience.LatencyBreakdown`, rolled up into a
  phase-by-phase latency table and a slowest-items listing.

Everything works on plain dicts/records, no live obs state required —
analysis of an artifact from another process (or machine) is the normal
case, not the exception.
"""

from __future__ import annotations

import json
import statistics
from typing import Iterable, Sequence

from repro.exceptions import ConfigError
from repro.obs.events import PipelineEvent
from repro.obs.trace import SpanRecord


def _parse_payload(text: str, path: str) -> list[dict[str, object]]:
    """Span/event dicts from JSON (object or array) or JSONL *text*."""
    stripped = text.strip()
    if not stripped:
        return []
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError:
            data = None
        if isinstance(data, dict):
            # A collector dump: {"spans": [...], "dropped": N}.  Any other
            # lone object is a one-line JSONL stream — a single record.
            spans = data.get("spans")
            if isinstance(spans, list):
                return [item for item in spans if isinstance(item, dict)]
            return [data]
        if isinstance(data, list):
            return [item for item in data if isinstance(item, dict)]
    out: list[dict[str, object]] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            item = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if isinstance(item, dict):
            out.append(item)
    return out


def load_spans(path) -> list[SpanRecord]:
    """Span records from a collector JSON dump, span JSONL, or flight dump.

    Flight-recorder capture lines are tagged ``{"record": "span"|"event"|
    "header"}``; only the span lines are taken.  Untagged dicts count as
    spans when they carry a ``span_id``.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    spans: list[SpanRecord] = []
    for item in _parse_payload(text, str(path)):
        tag = item.get("record")
        if tag is not None and tag != "span":
            continue
        if "span_id" not in item:
            continue
        spans.append(SpanRecord.from_dict(item))
    return spans


def load_events(path) -> list[PipelineEvent]:
    """Events from an event JSONL stream, JSON array, or flight dump."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    events: list[PipelineEvent] = []
    for item in _parse_payload(text, str(path)):
        tag = item.get("record")
        if tag is not None and tag != "event":
            continue
        if "kind" not in item or "seq" not in item:
            continue
        events.append(PipelineEvent.from_dict(item))
    return events


def group_traces(
    spans: Iterable[SpanRecord],
) -> dict[str, list[SpanRecord]]:
    """Spans per ``trace_id`` (spans without one — infra — are skipped)."""
    traces: dict[str, list[SpanRecord]] = {}
    for record in spans:
        if record.trace_id is not None:
            traces.setdefault(record.trace_id, []).append(record)
    return traces


def trace_roots(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """The root span(s) of one trace's span list.

    A span roots its trace when its parent is ``None`` or lies *outside*
    the trace — the graft point onto the batch's infrastructure spans
    (the worker ``shard`` span, the batch span).  A well-formed trace has
    exactly one.
    """
    ids = {record.span_id for record in spans}
    return [
        record for record in spans
        if record.parent_id is None or record.parent_id not in ids
    ]


def trace_problems(spans: Iterable[SpanRecord]) -> list[str]:
    """Well-formedness violations across *spans*, grouped per trace.

    Checks, per ``trace_id``: span ids are unique; there is exactly one
    root (parent ``None`` or outside the trace); and no in-trace parent
    chain cycles.  Returns human-readable problem strings — empty means
    every trace is a well-formed tree.  Shared by ``obs analyze`` and the
    property test-suite, so the tested invariant and the reported one
    cannot drift apart.
    """
    problems: list[str] = []
    for trace_id, records in sorted(group_traces(spans).items()):
        ids: dict[int, int] = {}
        for record in records:
            ids[record.span_id] = ids.get(record.span_id, 0) + 1
        for span_id, count in sorted(ids.items()):
            if count > 1:
                problems.append(
                    f"trace {trace_id}: span id {span_id} appears {count} times"
                )
        roots = trace_roots(records)
        if len(roots) != 1:
            names = ", ".join(
                f"{r.name}#{r.span_id}" for r in sorted(roots, key=lambda r: r.span_id)
            ) or "none"
            problems.append(
                f"trace {trace_id}: expected exactly one root span, "
                f"found {len(roots)} ({names})"
            )
        by_id = {record.span_id: record for record in records}
        for record in records:
            seen = {record.span_id}
            cursor = record
            while cursor.parent_id is not None and cursor.parent_id in by_id:
                if cursor.parent_id in seen:
                    problems.append(
                        f"trace {trace_id}: parent cycle through span "
                        f"{cursor.parent_id}"
                    )
                    break
                seen.add(cursor.parent_id)
                cursor = by_id[cursor.parent_id]
    return problems


def critical_path(spans: Sequence[SpanRecord]) -> list[SpanRecord]:
    """Root-to-leaf walk of one trace along the longest-duration child.

    The classic critical-path heuristic for a latency tree: starting at
    the trace root, descend into whichever child consumed the most wall
    clock until a leaf.  Returns ``[]`` for traces without exactly one
    root (report those via :func:`trace_problems` instead of guessing).
    """
    roots = trace_roots(spans)
    if len(roots) != 1:
        return []
    children: dict[int, list[SpanRecord]] = {}
    ids = {record.span_id for record in spans}
    for record in spans:
        if record.parent_id is not None and record.parent_id in ids:
            children.setdefault(record.parent_id, []).append(record)
    path = [roots[0]]
    visited = {roots[0].span_id}
    while True:
        branches = [
            child for child in children.get(path[-1].span_id, ())
            if child.span_id not in visited
        ]
        if not branches:
            return path
        widest = max(branches, key=lambda record: record.duration_ms)
        visited.add(widest.span_id)
        path.append(widest)


def item_latencies(
    events: Iterable[PipelineEvent],
) -> list[dict[str, object]]:
    """The latency-breakdown payloads of every ``item_end`` event.

    Each row is the event's payload joined with its ``trajectory_id`` —
    one row per settled item, relayed worker events included.
    """
    rows: list[dict[str, object]] = []
    for event in events:
        if event.kind != "item_end":
            continue
        row: dict[str, object] = {"trajectory_id": event.trajectory_id}
        row.update(event.payload)
        rows.append(row)
    return rows


_PHASE_KEYS = (
    "admission_wait_s", "queue_wait_s", "exec_s",
    "backoff_s", "reassembly_s", "total_s",
)


def _fmt_ms(value: object) -> str:
    try:
        return f"{float(value) * 1000.0:.1f}"  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "-"


def _p95(values: list[float]) -> float:
    ordered = sorted(values)
    if len(ordered) < 2:
        return ordered[0]
    return min(statistics.quantiles(ordered, n=20)[-1], ordered[-1])


def render_analysis(
    spans: Sequence[SpanRecord],
    events: Sequence[PipelineEvent] = (),
    *,
    top: int = 10,
) -> str:
    """The ``obs analyze`` text report over loaded artifacts.

    Sections: artifact totals, well-formedness problems (when any), the
    critical path of the *top* slowest traces, the phase-by-phase latency
    roll-up, and the slowest individual items — whatever the supplied
    artifacts can support; missing inputs skip their sections.
    """
    lines: list[str] = []
    traces = group_traces(spans)
    lines.append(
        f"artifacts: {len(spans)} span(s) in {len(traces)} trace(s), "
        f"{len(events)} event(s)"
    )
    problems = trace_problems(spans)
    if problems:
        lines += ["", f"well-formedness problems ({len(problems)}):"]
        lines += [f"  ! {problem}" for problem in problems]
    elif traces:
        lines.append("all traces well-formed (single root, acyclic)")

    if traces:
        def trace_cost(records: list[SpanRecord]) -> float:
            roots = trace_roots(records)
            return roots[0].duration_ms if len(roots) == 1 else max(
                (r.duration_ms for r in records), default=0.0
            )

        ranked = sorted(
            traces.items(), key=lambda kv: -trace_cost(kv[1])
        )
        shown = ranked[: max(0, top)]
        lines += ["", f"critical paths (top {len(shown)} by root duration):"]
        for trace_id, records in shown:
            path = critical_path(records)
            if not path:
                lines.append(f"  {trace_id}: malformed (see problems above)")
                continue
            root = path[0]
            trajectory = root.tags.get("trajectory_id")
            suffix = f" · trajectory {trajectory}" if trajectory else ""
            lines.append(
                f"  {trace_id}: {root.duration_ms:.1f} ms over "
                f"{len(records)} span(s){suffix}"
            )
            lines.append(
                "    " + " -> ".join(
                    f"{record.name} {record.duration_ms:.1f}ms"
                    for record in path
                )
            )
        if len(ranked) > len(shown):
            lines.append(f"  ... {len(ranked) - len(shown)} more trace(s)")

    rows = item_latencies(events)
    if rows:
        breakdowns = [
            row["breakdown"] for row in rows
            if isinstance(row.get("breakdown"), dict)
        ]
        lines += [
            "",
            f"latency accounting ({len(rows)} item(s), "
            f"{sum(1 for row in rows if not row.get('ok'))} failed):",
        ]
        if breakdowns:
            header = f"  {'phase':<18}{'mean ms':>10}{'p95 ms':>10}{'max ms':>10}"
            lines.append(header)
            for key in _PHASE_KEYS:
                values = [
                    float(b.get(key, 0.0)) * 1000.0  # type: ignore[arg-type]
                    for b in breakdowns
                ]
                if not any(values):
                    continue
                lines.append(
                    f"  {key[:-2]:<18}"
                    f"{statistics.fmean(values):>10.1f}"
                    f"{_p95(values):>10.1f}"
                    f"{max(values):>10.1f}"
                )
            stage_totals: dict[str, float] = {}
            for b in breakdowns:
                stages = b.get("stages_s")
                if isinstance(stages, dict):
                    for stage, seconds in stages.items():
                        stage_totals[stage] = (
                            stage_totals.get(stage, 0.0) + float(seconds) * 1000.0
                        )
            if stage_totals:
                lines.append("  exec stages (total ms):")
                for stage, total in sorted(
                    stage_totals.items(), key=lambda kv: -kv[1]
                ):
                    lines.append(f"    {stage:<20}{total:>10.1f}")
        slowest = sorted(
            rows,
            key=lambda row: -float(row.get("duration_ms") or 0.0),  # type: ignore[arg-type]
        )[: max(0, top)]
        lines.append(f"  slowest item(s) (top {len(slowest)}):")
        for row in slowest:
            breakdown = row.get("breakdown")
            detail = ""
            if isinstance(breakdown, dict):
                detail = (
                    f" (exec {_fmt_ms(breakdown.get('exec_s'))}"
                    f" queue {_fmt_ms(breakdown.get('queue_wait_s'))}"
                    f" backoff {_fmt_ms(breakdown.get('backoff_s'))} ms)"
                )
            status = "ok" if row.get("ok") else "FAILED"
            lines.append(
                f"    {row.get('trace_id') or '-'} "
                f"{row.get('trajectory_id') or '?'}: "
                f"{float(row.get('duration_ms') or 0.0):.1f} ms "  # type: ignore[arg-type]
                f"x{row.get('attempts', 1)} {status}{detail}"
            )
    return "\n".join(lines)
