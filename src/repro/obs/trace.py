"""Zero-dependency tracing layer for the STMaker pipeline.

A *span* measures one named unit of work (a pipeline stage, an experiment
iteration).  Spans nest: entering a span pushes it onto a context-local
stack, so a span opened inside another records that parent and its depth.
Finished spans land in a thread-safe :class:`TraceCollector` that can be
dumped as JSON (``stmaker summarize --trace``) or aggregated into a
per-stage time breakdown (the benchmark harness).

Tracing is **off by default** and the disabled path is engineered to stay
off the profile: ``span(...)`` then returns a shared no-op singleton, so
an instrumented call site costs one function call and one attribute test.
Enable it explicitly::

    from repro import obs

    collector = obs.enable_tracing()
    stmaker.summarize(raw)
    print(collector.to_json())
    obs.disable_tracing()

Stage span names used by the pipeline instrumentation are listed in
``docs/OBSERVABILITY.md``: ``summarize`` > ``calibrate``,
``extract_features``, ``partition``, ``select``, ``realize``.
"""

from __future__ import annotations

import json
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field


@dataclass(slots=True)
class SpanRecord:
    """One finished span, as stored by the collector."""

    span_id: int
    parent_id: int | None
    name: str
    #: ``time.perf_counter()`` at entry — a relative timeline, comparable
    #: only across spans of the same process.
    start_s: float
    duration_ms: float
    status: str  # "ok" | "error"
    error: str | None
    depth: int
    tags: dict[str, object] = field(default_factory=dict)
    #: ``threading.get_ident()`` of the recording thread — lets exporters
    #: keep concurrent spans on separate tracks instead of false-nesting.
    thread_id: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "depth": self.depth,
            "tags": dict(self.tags),
            "thread_id": self.thread_id,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SpanRecord":
        """Rebuild a record serialized by :meth:`to_dict` (worker relays)."""
        return cls(
            span_id=int(data["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(data["name"]),
            start_s=float(data["start_s"]),  # type: ignore[arg-type]
            duration_ms=float(data["duration_ms"]),  # type: ignore[arg-type]
            status=str(data["status"]),
            error=None if data.get("error") is None else str(data["error"]),
            depth=int(data.get("depth", 0)),  # type: ignore[arg-type]
            tags=dict(data.get("tags") or {}),  # type: ignore[arg-type]
            thread_id=int(data.get("thread_id", 0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True, slots=True)
class StageTotal:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


class TraceCollector:
    """Thread-safe sink for finished spans.

    ``max_spans`` bounds memory on long runs: once full, new spans are
    dropped (and counted in :attr:`dropped`) rather than evicting history,
    so the recorded prefix stays a faithful trace.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._next_id = 1
        self.max_spans = max_spans
        self.dropped = 0

    def next_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            if self.max_spans is not None and len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(record)

    def spans(self) -> list[SpanRecord]:
        """A snapshot copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def add_batch(self, records) -> int:
        """Merge a batch of spans from another collector into this one.

        The span half of the cross-process telemetry contract: a worker
        ships ``collector.to_dicts()`` (or the records themselves) and the
        parent folds them in here.  Span ids are **reassigned** from this
        collector's sequence so batches from many workers never collide;
        parent links *within* the batch are remapped to the new ids, while
        parents outside the batch (a worker-side root that was not
        shipped) become ``None``.  Returns how many spans were added; the
        ``max_spans`` cap applies and drops are counted as usual.
        """
        batch = [
            record if isinstance(record, SpanRecord) else SpanRecord.from_dict(record)
            for record in records
        ]
        id_map: dict[int, int] = {}
        added = 0
        for record in batch:
            id_map[record.span_id] = self.next_span_id()
        for record in batch:
            remapped = SpanRecord(
                span_id=id_map[record.span_id],
                parent_id=(
                    id_map.get(record.parent_id)
                    if record.parent_id is not None else None
                ),
                name=record.name,
                start_s=record.start_s,
                duration_ms=record.duration_ms,
                status=record.status,
                error=record.error,
                depth=record.depth,
                tags=dict(record.tags),
                thread_id=record.thread_id,
            )
            with self._lock:
                if self.max_spans is not None and len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(remapped)
                added += 1
        return added

    def by_name(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans() if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- reporting ------------------------------------------------------------

    def stage_totals(self) -> list[StageTotal]:
        """Per-name aggregates (count, total ms), sorted by total descending."""
        counts: dict[str, int] = {}
        totals: dict[str, float] = {}
        for record in self.spans():
            counts[record.name] = counts.get(record.name, 0) + 1
            totals[record.name] = totals.get(record.name, 0.0) + record.duration_ms
        out = [StageTotal(name, counts[name], totals[name]) for name in counts]
        out.sort(key=lambda t: -t.total_ms)
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        return [record.to_dict() for record in self.spans()]

    def to_json(self, indent: int | None = 2) -> str:
        payload = {"spans": self.to_dicts(), "dropped": self.dropped}
        return json.dumps(payload, indent=indent, default=str)

    def export(self, path) -> None:
        """Write the trace dump to *path* as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

#: Context-local stack of active spans.  A ``ContextVar`` is both
#: thread-safe and async-safe: a new thread (or task) starts with the
#: default empty stack instead of inheriting a parent mid-span.
_stack: ContextVar[tuple["Span", ...]] = ContextVar("repro_obs_span_stack", default=())

_collector: TraceCollector | None = None


class Span:
    """An active span; use via :func:`span`, not directly."""

    __slots__ = (
        "name", "tags", "span_id", "parent_id", "depth",
        "duration_ms", "status", "error",
        "_collector", "_start", "_token",
    )

    def __init__(self, name: str, tags: dict[str, object], collector: TraceCollector) -> None:
        self.name = name
        self.tags = tags
        self._collector = collector
        self.span_id = collector.next_span_id()
        self.parent_id: int | None = None
        self.depth = 0
        self.duration_ms = 0.0
        self.status = "ok"
        self.error: str | None = None

    def set_tag(self, key: str, value: object) -> "Span":
        self.tags[key] = value
        return self

    def __enter__(self) -> "Span":
        stack = _stack.get()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self._token = _stack.set(stack + (self,))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        _stack.reset(self._token)
        self.duration_ms = (end - self._start) * 1000.0
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self._collector.add(
            SpanRecord(
                self.span_id, self.parent_id, self.name, self._start,
                self.duration_ms, self.status, self.error, self.depth, self.tags,
                threading.get_ident(),
            )
        )
        return False  # never swallow the exception


def span(name: str, **tags: object):
    """A context manager measuring one named unit of work.

    When tracing is disabled (the default) this returns a shared no-op
    singleton; when enabled it returns a live :class:`Span` recording wall
    time, outcome (``ok``/``error``), nesting, and *tags*.
    """
    collector = _collector
    if collector is None:
        return NULL_SPAN
    return Span(name, tags, collector)


class Timer:
    """Always-on wall-clock timer: ``with Timer() as t: ...; t.ms``.

    Unlike :func:`span` it measures even when tracing is disabled — it is
    the substrate for experiment timings (Fig. 12) that must not depend on
    observability being switched on.
    """

    __slots__ = ("_start", "ms")

    def __enter__(self) -> "Timer":
        self.ms = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ms = (time.perf_counter() - self._start) * 1000.0
        return False


class timed_span:
    """Time a block unconditionally *and* trace it when tracing is enabled.

    The single code path shared by pipeline instrumentation and the
    experiment runners: ``with timed_span("summarize") as t: ...`` always
    yields a :class:`Timer` (so ``t.ms`` is valid afterwards) and records a
    span when a collector is installed.
    """

    __slots__ = ("_span", "_timer")

    def __init__(self, name: str, **tags: object) -> None:
        self._span = span(name, **tags)
        self._timer = Timer()

    def __enter__(self) -> Timer:
        self._span.__enter__()
        return self._timer.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.__exit__(exc_type, exc, tb)
        self._span.__exit__(exc_type, exc, tb)
        return False


def enable_tracing(
    collector: TraceCollector | None = None, max_spans: int | None = None
) -> TraceCollector:
    """Install *collector* (or a fresh one) as the active trace sink."""
    global _collector
    _collector = collector or TraceCollector(max_spans=max_spans)
    return _collector


def disable_tracing() -> None:
    """Stop collecting spans; ``span()`` returns the no-op singleton again."""
    global _collector
    _collector = None


def tracing_enabled() -> bool:
    return _collector is not None


def get_collector() -> TraceCollector | None:
    """The active collector, or ``None`` while tracing is disabled."""
    return _collector
