"""Zero-dependency tracing layer for the STMaker pipeline.

A *span* measures one named unit of work (a pipeline stage, an experiment
iteration).  Spans nest: entering a span pushes it onto a context-local
stack, so a span opened inside another records that parent and its depth.
Finished spans land in a thread-safe :class:`TraceCollector` that can be
dumped as JSON (``stmaker summarize --trace``) or aggregated into a
per-stage time breakdown (the benchmark harness).

Tracing is **off by default** and the disabled path is engineered to stay
off the profile: ``span(...)`` then returns a shared no-op singleton, so
an instrumented call site costs one function call and one attribute test.
Enable it explicitly::

    from repro import obs

    collector = obs.enable_tracing()
    stmaker.summarize(raw)
    print(collector.to_json())
    obs.disable_tracing()

Stage span names used by the pipeline instrumentation are listed in
``docs/OBSERVABILITY.md``: ``summarize`` > ``calibrate``,
``extract_features``, ``partition``, ``select``, ``realize``.

Request-scoped identity rides on top of the span machinery: a
:class:`TraceContext` names one request (an item of a batch) with a
globally-unique ``trace_id`` and flows across thread and process
boundaries, so every span recorded while the context is active — in
whatever process — carries the same ``trace_id`` and can be reassembled
into one per-request tree after :meth:`TraceCollector.add_batch` grafting.
See ``docs/OBSERVABILITY.md`` ("Trace context").
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

#: Paired wall/monotonic anchor taken at import: ``perf_counter`` spans
#: are mapped onto the unix timeline via ``_ANCHOR_UNIX + (t - _ANCHOR_PERF)``.
#: One subtraction per span keeps the hot path free of ``time.time()``.
_ANCHOR_UNIX = time.time()
_ANCHOR_PERF = time.perf_counter()


def wall_clock_of(perf_s: float) -> float:
    """Map a ``time.perf_counter()`` reading onto the unix timeline."""
    return _ANCHOR_UNIX + (perf_s - _ANCHOR_PERF)


@dataclass(slots=True)
class SpanRecord:
    """One finished span, as stored by the collector."""

    span_id: int
    parent_id: int | None
    name: str
    #: ``time.perf_counter()`` at entry — a relative timeline, comparable
    #: only across spans of the same process.
    start_s: float
    duration_ms: float
    status: str  # "ok" | "error"
    error: str | None
    depth: int
    tags: dict[str, object] = field(default_factory=dict)
    #: ``threading.get_ident()`` of the recording thread — lets exporters
    #: keep concurrent spans on separate tracks instead of false-nesting.
    thread_id: int = 0
    #: Request identity: the :class:`TraceContext` trace id active when the
    #: span ran, or ``None`` for infrastructure spans outside any request.
    #: Survives ``add_batch`` id remapping untouched.
    trace_id: str | None = None
    #: Wall-clock entry time (unix seconds); ``0.0`` on records written
    #: before the anchor existed.  Unlike :attr:`start_s` this timeline is
    #: comparable across processes.
    start_unix_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "error": self.error,
            "depth": self.depth,
            "tags": dict(self.tags),
            "thread_id": self.thread_id,
            "trace_id": self.trace_id,
            "start_unix_s": self.start_unix_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SpanRecord":
        """Rebuild a record serialized by :meth:`to_dict` (worker relays)."""
        return cls(
            span_id=int(data["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(data["name"]),
            start_s=float(data["start_s"]),  # type: ignore[arg-type]
            duration_ms=float(data["duration_ms"]),  # type: ignore[arg-type]
            status=str(data["status"]),
            error=None if data.get("error") is None else str(data["error"]),
            depth=int(data.get("depth", 0)),  # type: ignore[arg-type]
            tags=dict(data.get("tags") or {}),  # type: ignore[arg-type]
            thread_id=int(data.get("thread_id", 0)),  # type: ignore[arg-type]
            trace_id=(
                None if data.get("trace_id") is None else str(data["trace_id"])
            ),
            start_unix_s=float(data.get("start_unix_s", 0.0)),  # type: ignore[arg-type]
        )


#: Process-unique prefix for trace ids: pid plus 32 random bits, so ids
#: minted concurrently in a worker pool never collide across processes.
_TRACE_PREFIX = f"{os.getpid():x}-{os.urandom(4).hex()}"
_trace_counter = itertools.count(1)


def new_trace_id() -> str:
    """A globally-unique, cheap-to-mint trace id (no uuid4 per item)."""
    return f"{_TRACE_PREFIX}-{next(_trace_counter):x}"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one request (one batch item) as it crosses boundaries.

    Created at admission, shipped through :class:`~repro.serving.ShardTask`
    to whatever thread or process executes the item, and activated with
    :func:`use_trace` around the item's work.  While active, every span
    adopts :attr:`trace_id`; a span opened on an empty stack additionally
    links to :attr:`parent_span_id` (the thread-mode batch span).

    :attr:`anchor_unix_s` is the wall-clock instant the request was
    admitted — queue wait is measured against it on whichever machine the
    item eventually runs.
    """

    trace_id: str | None
    parent_span_id: int | None = None
    parent_depth: int = 0
    anchor_unix_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "parent_depth": self.parent_depth,
            "anchor_unix_s": self.anchor_unix_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TraceContext":
        return cls(
            trace_id=(
                None if data.get("trace_id") is None else str(data["trace_id"])
            ),
            parent_span_id=(
                None if data.get("parent_span_id") is None
                else int(data["parent_span_id"])  # type: ignore[arg-type]
            ),
            parent_depth=int(data.get("parent_depth", 0)),  # type: ignore[arg-type]
            anchor_unix_s=float(data.get("anchor_unix_s", 0.0)),  # type: ignore[arg-type]
        )


#: The active request context.  Like the span stack, a ``ContextVar`` so a
#: fresh thread or task starts with no inherited request identity.
_trace_ctx: ContextVar["TraceContext | None"] = ContextVar(
    "repro_obs_trace_ctx", default=None
)


def start_trace(anchor_unix_s: float | None = None) -> TraceContext:
    """Mint a fresh request context anchored at *anchor_unix_s* (now)."""
    return TraceContext(
        trace_id=new_trace_id(),
        anchor_unix_s=time.time() if anchor_unix_s is None else anchor_unix_s,
    )


def current_trace() -> TraceContext | None:
    """The request context active in this thread/task, if any."""
    return _trace_ctx.get()


def clear_span_context() -> None:
    """Drop this thread's span stack and request context.

    A ``fork``-started worker process inherits the forking thread's
    ``ContextVar`` state — including a live span stack whose ids belong
    to the *parent's* collector.  Left in place, the worker's first span
    would claim one of those ids as its parent, and the parent-side graft
    would remap it onto an unrelated (possibly its own) span.  Workers
    call this alongside dropping the inherited sinks.
    """
    _stack.set(())
    _trace_ctx.set(None)


class use_trace:
    """Activate *ctx* for the block: ``with use_trace(ctx): ...``.

    ``use_trace(None)`` is a no-op, so call sites need no branching.  A
    tiny class rather than ``@contextmanager`` — this runs once per item
    on the always-on path.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext | None) -> None:
        self._ctx = ctx

    def __enter__(self) -> TraceContext | None:
        self._token = _trace_ctx.set(self._ctx) if self._ctx is not None else None
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _trace_ctx.reset(self._token)
        return False


@dataclass(frozen=True, slots=True)
class StageTotal:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


class TraceCollector:
    """Thread-safe sink for finished spans.

    ``max_spans`` bounds memory on long runs: once full, new spans are
    dropped (and counted in :attr:`dropped`) rather than evicting history,
    so the recorded prefix stays a faithful trace.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._next_id = 1
        self.max_spans = max_spans
        self.dropped = 0

    def next_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            if self.max_spans is not None and len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(record)

    def spans(self) -> list[SpanRecord]:
        """A snapshot copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def add_batch(self, records, *, graft_parent_id: int | None = None) -> int:
        """Merge a batch of spans from another collector into this one.

        The span half of the cross-process telemetry contract: a worker
        ships ``collector.to_dicts()`` (or the records themselves) and the
        parent folds them in here.  Span ids are **reassigned** from this
        collector's sequence so batches from many workers never collide;
        parent links *within* the batch are remapped to the new ids, while
        parents outside the batch (a worker-side root that was not
        shipped) become ``None``.  ``trace_id`` s pass through untouched —
        request identity is process-independent by construction.

        *graft_parent_id* joins the shipped fragment to a live span of
        **this** collector's tree: a batch record with no parent and no
        ``trace_id`` (the worker's infrastructure root, e.g. its ``shard``
        span), or with a parent that was not shipped, adopts it instead of
        floating as a second root.  Trace-rooted records keep ``None``
        parents — their root-ness is what makes the per-request tree
        well-formed.  Returns how many spans were added; the ``max_spans``
        cap applies and drops are counted as usual.
        """
        batch = [
            record if isinstance(record, SpanRecord) else SpanRecord.from_dict(record)
            for record in records
        ]
        id_map: dict[int, int] = {}
        added = 0
        for record in batch:
            id_map[record.span_id] = self.next_span_id()
        for record in batch:
            if record.parent_id is not None:
                parent_id = id_map.get(record.parent_id, graft_parent_id)
            elif record.trace_id is None:
                parent_id = graft_parent_id
            else:
                parent_id = None
            remapped = SpanRecord(
                span_id=id_map[record.span_id],
                parent_id=parent_id,
                name=record.name,
                start_s=record.start_s,
                duration_ms=record.duration_ms,
                status=record.status,
                error=record.error,
                depth=record.depth,
                tags=dict(record.tags),
                thread_id=record.thread_id,
                trace_id=record.trace_id,
                start_unix_s=record.start_unix_s,
            )
            with self._lock:
                if self.max_spans is not None and len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(remapped)
                added += 1
        return added

    def by_name(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans() if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- reporting ------------------------------------------------------------

    def stage_totals(self) -> list[StageTotal]:
        """Per-name aggregates (count, total ms), sorted by total descending."""
        counts: dict[str, int] = {}
        totals: dict[str, float] = {}
        for record in self.spans():
            counts[record.name] = counts.get(record.name, 0) + 1
            totals[record.name] = totals.get(record.name, 0.0) + record.duration_ms
        out = [StageTotal(name, counts[name], totals[name]) for name in counts]
        out.sort(key=lambda t: -t.total_ms)
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        return [record.to_dict() for record in self.spans()]

    def to_json(self, indent: int | None = 2) -> str:
        payload = {"spans": self.to_dicts(), "dropped": self.dropped}
        return json.dumps(payload, indent=indent, default=str)

    def export(self, path) -> None:
        """Write the trace dump to *path* as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_tag(self, key: str, value: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

#: Context-local stack of active spans.  A ``ContextVar`` is both
#: thread-safe and async-safe: a new thread (or task) starts with the
#: default empty stack instead of inheriting a parent mid-span.
_stack: ContextVar[tuple["Span", ...]] = ContextVar("repro_obs_span_stack", default=())

_collector: TraceCollector | None = None


class Span:
    """An active span; use via :func:`span`, not directly."""

    __slots__ = (
        "name", "tags", "span_id", "parent_id", "depth", "trace_id",
        "duration_ms", "status", "error",
        "_collector", "_start", "_token",
    )

    def __init__(self, name: str, tags: dict[str, object], collector: TraceCollector) -> None:
        self.name = name
        self.tags = tags
        self._collector = collector
        self.span_id = collector.next_span_id()
        self.parent_id: int | None = None
        self.depth = 0
        self.trace_id: str | None = None
        self.duration_ms = 0.0
        self.status = "ok"
        self.error: str | None = None

    def set_tag(self, key: str, value: object) -> "Span":
        self.tags[key] = value
        return self

    def __enter__(self) -> "Span":
        stack = _stack.get()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
            self.trace_id = parent.trace_id
        if self.trace_id is None:
            # Entering the traced region: the first span under an active
            # request context adopts its trace id (children inherit via
            # the stack above), and — when this thread has no local
            # ancestry — its cross-boundary parent link.
            ctx = _trace_ctx.get()
            if ctx is not None:
                self.trace_id = ctx.trace_id
                if not stack:
                    self.parent_id = ctx.parent_span_id
                    if ctx.parent_span_id is not None:
                        self.depth = ctx.parent_depth + 1
        self._token = _stack.set(stack + (self,))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        _stack.reset(self._token)
        self.duration_ms = (end - self._start) * 1000.0
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self._collector.add(
            SpanRecord(
                self.span_id, self.parent_id, self.name, self._start,
                self.duration_ms, self.status, self.error, self.depth, self.tags,
                threading.get_ident(), self.trace_id, wall_clock_of(self._start),
            )
        )
        return False  # never swallow the exception


def span(name: str, **tags: object):
    """A context manager measuring one named unit of work.

    When tracing is disabled (the default) this returns a shared no-op
    singleton; when enabled it returns a live :class:`Span` recording wall
    time, outcome (``ok``/``error``), nesting, and *tags*.
    """
    collector = _collector
    if collector is None:
        return NULL_SPAN
    return Span(name, tags, collector)


class Timer:
    """Always-on wall-clock timer: ``with Timer() as t: ...; t.ms``.

    Unlike :func:`span` it measures even when tracing is disabled — it is
    the substrate for experiment timings (Fig. 12) that must not depend on
    observability being switched on.
    """

    __slots__ = ("_start", "ms")

    def __enter__(self) -> "Timer":
        self.ms = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ms = (time.perf_counter() - self._start) * 1000.0
        return False


class timed_span:
    """Time a block unconditionally *and* trace it when tracing is enabled.

    The single code path shared by pipeline instrumentation and the
    experiment runners: ``with timed_span("summarize") as t: ...`` always
    yields a :class:`Timer` (so ``t.ms`` is valid afterwards) and records a
    span when a collector is installed.
    """

    __slots__ = ("_span", "_timer")

    def __init__(self, name: str, **tags: object) -> None:
        self._span = span(name, **tags)
        self._timer = Timer()

    def __enter__(self) -> Timer:
        self._span.__enter__()
        return self._timer.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.__exit__(exc_type, exc, tb)
        self._span.__exit__(exc_type, exc, tb)
        return False


def enable_tracing(
    collector: TraceCollector | None = None, max_spans: int | None = None
) -> TraceCollector:
    """Install *collector* (or a fresh one) as the active trace sink."""
    global _collector
    # Explicit None test: an *empty* collector is falsy (it has __len__),
    # and `collector or ...` would silently swap it for a fresh one.
    if collector is None:
        collector = TraceCollector(max_spans=max_spans)
    _collector = collector
    return _collector


def disable_tracing() -> None:
    """Stop collecting spans; ``span()`` returns the no-op singleton again."""
    global _collector
    _collector = None


def tracing_enabled() -> bool:
    return _collector is not None


def get_collector() -> TraceCollector | None:
    """The active collector, or ``None`` while tracing is disabled."""
    return _collector
