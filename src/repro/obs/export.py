"""Standard-format exporters for the observability layer.

Two interchange formats, both zero-dependency:

* :func:`render_prometheus` — the Prometheus/OpenMetrics *text exposition
  format* for a :class:`~repro.obs.metrics.MetricsRegistry` snapshot, so a
  scrape endpoint (or a file-based textfile collector) can ingest the
  pipeline's counters, gauges, and histograms without translation.
* :func:`to_chrome_trace` — Chrome *trace-event JSON* for the spans of a
  :class:`~repro.obs.trace.TraceCollector`.  The output loads directly in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and renders
  the pipeline's nested stages as a flame chart, one track per thread.

Both have ``write_*`` companions used by the CLI (``--metrics-prom``,
``--trace-chrome``) and by :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import math
import re

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import TraceCollector

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: pid used for every trace event — the trace is single-process by design.
_TRACE_PID = 1


def prometheus_name(name: str) -> str:
    """Sanitize a series name to the Prometheus grammar.

    Dots (our namespace separator) and any other invalid character become
    underscores; a leading digit gets a guard underscore.
    """
    out = _INVALID_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry | NullMetrics) -> str:
    """The registry snapshot in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le="..."}`` series (our per-bucket counts are
    disjoint, so they are accumulated here) plus ``_sum`` and ``_count``.
    Ends with a trailing newline, as the format requires.
    """
    lines: list[str] = []
    for name, data in registry.snapshot().items():
        pname = prometheus_name(name)
        kind = data["type"]
        if kind == "counter":
            lines.append(f"# HELP {pname}_total {name}")
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_format_value(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {pname} {name}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_format_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {pname} {name}")
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for label, count in data["buckets"].items():
                cumulative += count
                le = "+Inf" if label == "+inf" else label
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{pname}_sum {_format_value(data['sum'])}")
            lines.append(f"{pname}_count {data['count']}")
        else:  # pragma: no cover - registry only produces the three kinds
            raise ValueError(f"unknown metric type {kind!r} for series {name!r}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry | NullMetrics, path) -> None:
    """Write the text exposition to *path* (textfile-collector style)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(registry))


def chrome_trace_events(collector: TraceCollector) -> list[dict[str, object]]:
    """The collector's spans as a Chrome trace-event list.

    Each finished span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` on the span's own perf-counter timeline;
    span id, parent id, status, and tags ride along in ``args``.  Threads
    are renumbered 0..n in order of first appearance and announced with
    ``thread_name`` metadata events so the viewer labels the tracks.
    """
    spans = collector.spans()
    tid_map: dict[int, int] = {}
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "stmaker"},
        }
    ]
    for record in spans:
        if record.thread_id not in tid_map:
            tid = len(tid_map)
            tid_map[record.thread_id] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": f"thread-{tid}"},
            })
        args: dict[str, object] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "status": record.status,
        }
        if record.error is not None:
            args["error"] = record.error
        args.update(record.tags)
        events.append({
            "name": record.name,
            "cat": "pipeline",
            "ph": "X",
            "ts": record.start_s * 1e6,
            "dur": record.duration_ms * 1e3,
            "pid": _TRACE_PID,
            "tid": tid_map[record.thread_id],
            "args": args,
        })
    return events


def to_chrome_trace(collector: TraceCollector) -> dict[str, object]:
    """The full trace-event JSON object (``{"traceEvents": [...], ...}``)."""
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": {"dropped": collector.dropped},
    }


def write_chrome_trace(collector: TraceCollector, path) -> None:
    """Write a Perfetto-loadable trace JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(collector), fh, indent=2, default=str)
