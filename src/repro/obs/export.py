"""Standard-format exporters for the observability layer.

Two interchange formats, both zero-dependency:

* :func:`render_prometheus` — the Prometheus/OpenMetrics *text exposition
  format* for a :class:`~repro.obs.metrics.MetricsRegistry` snapshot, so a
  scrape endpoint (or a file-based textfile collector) can ingest the
  pipeline's counters, gauges, and histograms without translation.
* :func:`to_chrome_trace` — Chrome *trace-event JSON* for the spans of a
  :class:`~repro.obs.trace.TraceCollector`.  The output loads directly in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and renders
  the pipeline's nested stages as a flame chart, one track per thread.

Both have ``write_*`` companions used by the CLI (``--metrics-prom``,
``--trace-chrome``) and by :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import math
import re

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.trace import TraceCollector

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: pid used for every trace event — the trace is single-process by design.
_TRACE_PID = 1


def prometheus_name(name: str) -> str:
    """Sanitize a series name to the Prometheus grammar.

    Dots (our namespace separator) and any other invalid character become
    underscores; a leading digit gets a guard underscore.
    """
    out = _INVALID_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format.

    The format allows any UTF-8 in HELP but requires ``\\`` as ``\\\\``
    and line feeds as ``\\n`` — otherwise a multi-line help text would be
    parsed as (invalid) sample lines.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry | NullMetrics) -> str:
    """The registry snapshot in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le="..."}`` series (our per-bucket counts are
    disjoint, so they are accumulated here) plus ``_sum`` and ``_count``.
    HELP text (the original dotted series name) is escaped per the format.
    Two registry names that sanitize to the same Prometheus identifier
    would produce an exposition scrapers reject, so that raises instead.
    Ends with a trailing newline, as the format requires.
    """
    lines: list[str] = []
    seen: dict[str, str] = {}
    for name, data in registry.snapshot().items():
        pname = prometheus_name(name)
        kind = data["type"]
        exported = f"{pname}_total" if kind == "counter" else pname
        clash = seen.get(exported)
        if clash is not None:
            raise ValueError(
                f"series {name!r} and {clash!r} both export as {exported!r}; "
                f"rename one — duplicate families are invalid exposition"
            )
        seen[exported] = name
        help_text = escape_help(name)
        if kind == "counter":
            lines.append(f"# HELP {pname}_total {help_text}")
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_format_value(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {pname} {help_text}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_format_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {pname} {help_text}")
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for label, count in data["buckets"].items():
                cumulative += count
                le = "+Inf" if label == "+inf" else label
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{pname}_sum {_format_value(data['sum'])}")
            lines.append(f"{pname}_count {data['count']}")
        else:  # pragma: no cover - registry only produces the three kinds
            raise ValueError(f"unknown metric type {kind!r} for series {name!r}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry | NullMetrics, path) -> None:
    """Write the text exposition to *path* (textfile-collector style)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(registry))


_NAME_GRAMMAR = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)  # raises on garbage, which is the point


def parse_prometheus(text: str) -> dict[str, dict[str, object]]:
    """Parse text exposition back into families (the round-trip check).

    A deliberately strict reader of the subset :func:`render_prometheus`
    emits — used by the regression tests and the ops-surface integration
    test to prove the endpoint output actually parses.  Returns
    ``{family: {"type", "help", "samples": [(name, labels, value)]}}``
    where *labels* is a (possibly empty) dict.  Raises ``ValueError`` on
    any malformed line, unknown sample name, or non-cumulative histogram
    buckets.
    """
    families: dict[str, dict[str, object]] = {}

    def family_of(sample_name: str) -> dict[str, object] | None:
        for suffix in ("", "_bucket", "_sum", "_count"):
            base = sample_name[: len(sample_name) - len(suffix)] if suffix else sample_name
            if suffix and not sample_name.endswith(suffix):
                continue
            if base in families:
                return families[base]
        return None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            raise ValueError(f"line {lineno}: blank line inside exposition")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            keyword, rest = line[2:6], line[7:]
            name, _, detail = rest.partition(" ")
            if not _NAME_GRAMMAR.match(name):
                raise ValueError(f"line {lineno}: invalid family name {name!r}")
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if keyword == "HELP":
                family["help"] = detail.replace("\\n", "\n").replace("\\\\", "\\")
            else:
                if detail not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: unknown TYPE {detail!r}")
                family["type"] = detail
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            labels = {key: value for key, value in _LABEL.findall(match.group("labels"))}
        value = _parse_sample_value(match.group("value"))
        family = family_of(sample_name)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no HELP/TYPE family"
            )
        family["samples"].append((sample_name, labels, value))  # type: ignore[union-attr]

    for name, family in families.items():
        if family["type"] == "histogram":
            buckets = [
                (labels.get("le"), value)
                for sample_name, labels, value in family["samples"]  # type: ignore[union-attr]
                if sample_name.endswith("_bucket")
            ]
            counts = [value for _, value in buckets]
            if counts != sorted(counts):
                raise ValueError(f"family {name!r}: bucket counts not cumulative")
            if buckets and buckets[-1][0] != "+Inf":
                raise ValueError(f"family {name!r}: last bucket must be le=\"+Inf\"")
            count_samples = [
                value
                for sample_name, _, value in family["samples"]  # type: ignore[union-attr]
                if sample_name.endswith("_count")
            ]
            if buckets and count_samples and buckets[-1][1] != count_samples[0]:
                raise ValueError(
                    f"family {name!r}: le=\"+Inf\" bucket != _count"
                )
    return families


def chrome_trace_events(collector: TraceCollector) -> list[dict[str, object]]:
    """The collector's spans as a Chrome trace-event list.

    Each finished span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``; span id, parent id, status, and tags ride
    along in ``args``.  Threads are renumbered 0..n in order of first
    appearance and announced with ``thread_name`` metadata events so the
    viewer labels the tracks.

    Timeline: when every span carries a wall-clock anchor
    (``start_unix_s``), timestamps are that anchor minus the earliest one —
    so spans grafted from worker processes land at their true offsets
    instead of wherever each process's ``perf_counter`` epoch happened to
    sit.  A trace with any legacy anchor-less span falls back to the old
    per-process ``start_s`` timeline wholesale (mixing the two would
    interleave incomparable clocks).
    """
    spans = collector.spans()
    aligned = bool(spans) and all(record.start_unix_s > 0.0 for record in spans)
    base_unix = min(record.start_unix_s for record in spans) if aligned else 0.0
    tid_map: dict[int, int] = {}
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "stmaker"},
        }
    ]
    for record in spans:
        if record.thread_id not in tid_map:
            tid = len(tid_map)
            tid_map[record.thread_id] = tid
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": f"thread-{tid}"},
            })
        args: dict[str, object] = {
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "status": record.status,
        }
        if record.error is not None:
            args["error"] = record.error
        if record.trace_id is not None:
            args["trace_id"] = record.trace_id
        args.update(record.tags)
        events.append({
            "name": record.name,
            "cat": "pipeline",
            "ph": "X",
            "ts": (
                (record.start_unix_s - base_unix) * 1e6
                if aligned else record.start_s * 1e6
            ),
            "dur": record.duration_ms * 1e3,
            "pid": _TRACE_PID,
            "tid": tid_map[record.thread_id],
            "args": args,
        })
    return events


def to_chrome_trace(collector: TraceCollector) -> dict[str, object]:
    """The full trace-event JSON object (``{"traceEvents": [...], ...}``)."""
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
        "otherData": {"dropped": collector.dropped},
    }


def write_chrome_trace(collector: TraceCollector, path) -> None:
    """Write a Perfetto-loadable trace JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(collector), fh, indent=2, default=str)
