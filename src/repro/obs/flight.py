"""Black-box flight recorder: the last N events, dumped on failure.

Metrics tell you *that* something quarantined; the flight recorder tells
you *what led up to it*.  A :class:`FlightRecorder` is an
:class:`~repro.obs.events.EventBus` subscriber holding a bounded ring of
the most recent :class:`~repro.obs.events.PipelineEvent` s.  Whenever a
trigger event arrives — by default a ``quarantine`` or a ``degradation``,
the two points where the pipeline absorbed a failure — it freezes the ring
into a *capture*: the trigger, the surrounding event tail, and (when
tracing is live) the most recent finished spans.  Captures are kept
in memory (bounded) and, when a ``dump_dir`` is configured, written as one
JSONL file each, so a production failure is debuggable after the process
moved on.

Designed to be **always on**: the per-event cost is one lock + one deque
append, and the expensive part (serializing a capture) only runs on the
failure path.  ``BENCH_obs.json`` records the measured overhead of running
with the recorder enabled (< 5 % on the Fig. 12 workload).

::

    from repro import obs

    recorder = obs.enable_flight_recorder(dump_dir="flight/")
    stmaker.summarize_many(trips)          # failures dump themselves
    print(recorder.captures[-1]["trigger"])
    obs.disable_flight_recorder()
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from collections import deque

from repro.obs.events import PipelineEvent, enable_events, events
from repro.obs.trace import get_collector

logger = logging.getLogger("repro.obs.flight")

#: Event kinds that freeze the ring into a capture by default: the two
#: points where the pipeline absorbed a failure, plus an SLO excursion —
#: exactly when you want the event tail that led up to it.
DEFAULT_TRIGGER_KINDS: frozenset[str] = frozenset({
    "quarantine", "degradation", "slo_breach",
})

_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_slug(text: str, fallback: str = "event") -> str:
    out = _UNSAFE_FILENAME.sub("-", text).strip("-")
    return out[:80] or fallback


class FlightRecorder:
    """A bounded ring of recent events that snapshots itself on failure.

    Subscribe it to an :class:`~repro.obs.events.EventBus` (or use
    :func:`enable_flight_recorder`, which wires the active bus).  Thread
    safety: the ring and capture list are lock-guarded; captures taken
    from concurrent worker threads serialize against each other but not
    against the pipeline.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        dump_dir=None,
        trigger_kinds: frozenset[str] | set[str] = DEFAULT_TRIGGER_KINDS,
        span_tail: int = 64,
        max_captures: int = 32,
        max_dumps: int = 100,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.trigger_kinds = frozenset(trigger_kinds)
        self.span_tail = span_tail
        self.max_dumps = max_dumps
        self._lock = threading.Lock()
        self._ring: deque[PipelineEvent] = deque(maxlen=capacity)
        #: Most recent captures, oldest first (bounded by ``max_captures``).
        self.captures: deque[dict[str, object]] = deque(maxlen=max_captures)
        #: Paths of the JSONL dumps written so far, in order.
        self.dump_paths: list[str] = []
        #: Captures skipped because ``max_dumps`` was reached.
        self.suppressed = 0
        self._events_seen = 0
        self._capture_seq = 0

    # -- subscriber -------------------------------------------------------------

    def __call__(self, event: PipelineEvent) -> None:
        """The EventBus subscriber: record, and capture on a trigger."""
        with self._lock:
            self._ring.append(event)
            self._events_seen += 1
        if event.kind in self.trigger_kinds:
            self.capture(event)

    # -- reading ----------------------------------------------------------------

    def tail(self, n: int | None = None) -> list[PipelineEvent]:
        """The most recent *n* events (all retained events when ``None``)."""
        with self._lock:
            ring = list(self._ring)
        if n is None or n >= len(ring):
            return ring
        if n <= 0:
            return []
        return ring[-n:]

    @property
    def events_seen(self) -> int:
        with self._lock:
            return self._events_seen

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- capturing --------------------------------------------------------------

    def capture(self, trigger: PipelineEvent | None = None) -> dict[str, object] | None:
        """Freeze the current ring (and recent spans) into one capture.

        Called automatically on trigger events; callable manually to
        snapshot an interesting moment.  Returns the capture dict, or
        ``None`` when the ``max_dumps`` budget is exhausted (counted in
        :attr:`suppressed` — a failure storm must not fill the disk).
        """
        with self._lock:
            if self._capture_seq >= self.max_dumps:
                self.suppressed += 1
                return None
            self._capture_seq += 1
            seq = self._capture_seq
            ring = [event.to_dict() for event in self._ring]
        spans: list[dict[str, object]] = []
        collector = get_collector()
        if collector is not None:
            spans = [record.to_dict() for record in collector.spans()[-self.span_tail:]]
        capture = {
            "capture": seq,
            "captured_unix": time.time(),
            "trigger": trigger.to_dict() if trigger is not None else None,
            "events": ring,
            "spans": spans,
        }
        with self._lock:
            self.captures.append(capture)
        if self.dump_dir is not None:
            self._write_dump(capture, trigger)
        return capture

    def _write_dump(self, capture: dict[str, object], trigger: PipelineEvent | None) -> None:
        """One JSONL file per capture: header, then events, then spans."""
        import os

        label = "manual"
        if trigger is not None:
            label = _safe_slug(trigger.trajectory_id or trigger.kind)
        path = os.path.join(
            str(self.dump_dir), f"flight-{capture['capture']:04d}-{label}.jsonl"
        )
        try:
            os.makedirs(str(self.dump_dir), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                header = {
                    "record": "flight",
                    "capture": capture["capture"],
                    "captured_unix": capture["captured_unix"],
                    "trigger": capture["trigger"],
                    "events": len(capture["events"]),  # type: ignore[arg-type]
                    "spans": len(capture["spans"]),  # type: ignore[arg-type]
                }
                fh.write(json.dumps(header, default=str) + "\n")
                for event in capture["events"]:  # type: ignore[union-attr]
                    fh.write(json.dumps({"record": "event", **event}, default=str) + "\n")
                for span in capture["spans"]:  # type: ignore[union-attr]
                    fh.write(json.dumps({"record": "span", **span}, default=str) + "\n")
        except OSError as exc:
            # The black box must never take down the flight: log and move on.
            logger.warning("flight recorder could not write %s: %s", path, exc)
            return
        with self._lock:
            self.dump_paths.append(path)
        logger.info("flight recorder dump written to %s", path)


_active: FlightRecorder | None = None


def flight_recorder() -> FlightRecorder | None:
    """The active recorder, or ``None`` while disabled."""
    return _active


def enable_flight_recorder(
    recorder: FlightRecorder | None = None, **kwargs
) -> FlightRecorder:
    """Install *recorder* (or build one from *kwargs*) on the active bus.

    Enables the event stream if it is not already on — the recorder is an
    event subscriber, there is nothing to record without the bus.
    Idempotent for the active recorder.
    """
    global _active
    bus = enable_events()
    if recorder is None:
        recorder = _active if _active is not None and not kwargs else FlightRecorder(**kwargs)
    if _active is not None and _active is not recorder:
        bus.unsubscribe(_active)
    bus.unsubscribe(recorder)  # re-subscribing must not double-deliver
    bus.subscribe(recorder)
    _active = recorder
    return recorder


def disable_flight_recorder() -> None:
    """Unsubscribe and drop the active recorder (the bus stays as-is)."""
    global _active
    if _active is None:
        return
    bus = events()
    if bus is not None:
        bus.unsubscribe(_active)
    _active = None
