"""Declarative service-level objectives evaluated live on the event bus.

An :class:`SLObjective` states what "healthy" means for batch serving —
"p95 item latency stays under 500 ms", "99 % of items succeed" — and the
:class:`SLOEngine` holds the pipeline to it while it runs.  The engine is
an ordinary :class:`~repro.obs.events.EventBus` subscriber: it consumes
the ``item_end`` events every settled batch item emits (including events
relayed home from worker processes), keeps a sliding window of samples,
and evaluates each objective with the standard error-budget machinery:

* the **error budget** is the fraction of bad items the objective
  tolerates (``1 - target`` for a success-ratio objective, the implied
  5 % for a p95 latency objective);
* the **burn rate** is how fast the budget is being spent — a burn rate
  of 1.0 consumes exactly the budget over the window, 10.0 consumes it
  ten times too fast;
* evaluation is **multi-window**: a breach requires the slow window
  (sustained damage) *and* the fast window (still happening now) to both
  burn at or above :attr:`~SLObjective.burn_rate_threshold`, the classic
  guard against paging on stale or flapping signals.

State transitions are edge-triggered events on the same bus —
``slo_breach`` once per excursion (re-armed on recovery) and
``budget_exhausted`` once when the cumulative budget for the run is fully
spent — so the flight recorder can freeze the surrounding context and any
sink can alert.  Continuous health lands on the ``slo.<name>.*`` metric
series and in :meth:`SLOEngine.snapshot`, which the ops server serves
under ``/status``.

::

    from repro import obs
    from repro.obs.slo import SLObjective, enable_slo

    engine = enable_slo([
        SLObjective(name="latency", kind="latency_p95", threshold_ms=500.0),
        SLObjective(name="success", kind="success_ratio", target=0.99),
    ])
    stmaker.summarize_many(trips, workers=4)
    print(engine.snapshot())
    obs.disable_slo()
"""

from __future__ import annotations

import statistics
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigError
from repro.obs.events import EventBus, PipelineEvent, enable_events, events
from repro.obs.metrics import metrics

#: Objective kinds the engine can evaluate.
SLO_KINDS = ("latency_p95", "success_ratio")

#: The bad-item fraction a p95 latency objective tolerates by definition.
_P95_BUDGET = 0.05


@dataclass(frozen=True, slots=True)
class SLObjective:
    """One service-level objective over the ``item_end`` stream.

    ``kind="latency_p95"`` requires *threshold_ms* and means "at most 5 %
    of items in the window may exceed it" (equivalently: windowed p95 at
    or under the threshold).  ``kind="success_ratio"`` requires *target*
    in ``(0, 1)`` and tolerates a bad-item fraction of ``1 - target``.
    """

    name: str
    kind: str
    #: Latency ceiling for ``latency_p95`` objectives.
    threshold_ms: float | None = None
    #: Success-fraction floor for ``success_ratio`` objectives.
    target: float | None = None
    #: The slow (sustained-damage) evaluation window, seconds.
    window_s: float = 300.0
    #: The fast (still-happening-now) evaluation window, seconds.
    fast_window_s: float = 60.0
    #: Both windows must burn at least this fast to count as a breach.
    burn_rate_threshold: float = 1.0
    #: Below this many samples in the slow window the objective abstains.
    min_samples: int = 10

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ConfigError(
                f"unknown SLO kind {self.kind!r}; expected one of {SLO_KINDS}"
            )
        if not self.name:
            raise ConfigError("SLO objectives need a non-empty name")
        if self.kind == "latency_p95":
            if self.threshold_ms is None or self.threshold_ms <= 0.0:
                raise ConfigError(
                    f"latency_p95 objective {self.name!r} needs threshold_ms > 0"
                )
        else:
            if self.target is None or not 0.0 < self.target < 1.0:
                raise ConfigError(
                    f"success_ratio objective {self.name!r} needs "
                    f"0 < target < 1, got {self.target}"
                )
        if self.window_s <= 0.0 or self.fast_window_s <= 0.0:
            raise ConfigError(
                f"objective {self.name!r}: windows must be > 0 seconds"
            )
        if self.fast_window_s > self.window_s:
            raise ConfigError(
                f"objective {self.name!r}: fast_window_s must not exceed window_s"
            )
        if self.burn_rate_threshold <= 0.0:
            raise ConfigError(
                f"objective {self.name!r}: burn_rate_threshold must be > 0"
            )
        if self.min_samples < 1:
            raise ConfigError(
                f"objective {self.name!r}: min_samples must be >= 1"
            )

    @property
    def budget_fraction(self) -> float:
        """The tolerated bad-item fraction (the error budget)."""
        if self.kind == "latency_p95":
            return _P95_BUDGET
        return 1.0 - float(self.target)  # type: ignore[arg-type]

    def is_bad(self, duration_ms: float, ok: bool) -> bool:
        """Does one settled item spend budget under this objective?"""
        if self.kind == "latency_p95":
            return duration_ms > float(self.threshold_ms)  # type: ignore[arg-type]
        return not ok

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold_ms": self.threshold_ms,
            "target": self.target,
            "window_s": self.window_s,
            "fast_window_s": self.fast_window_s,
            "burn_rate_threshold": self.burn_rate_threshold,
            "min_samples": self.min_samples,
        }


def parse_slo(spec: str) -> SLObjective:
    """Build an objective from a compact CLI spec.

    The first clause picks the kind — ``p95_ms=<float>`` or
    ``success=<ratio>`` — and optional comma-separated clauses tune it::

        p95_ms=500
        p95_ms=500,window=60,fast=15,min=5,name=item-latency
        success=0.99,burn=2

    Clauses: ``window`` (slow window seconds), ``fast`` (fast window
    seconds), ``min`` (minimum samples), ``burn`` (burn-rate threshold),
    ``name``.
    """
    kind: str | None = None
    threshold_ms: float | None = None
    target: float | None = None
    options: dict[str, str] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ConfigError(
                f"bad SLO clause {clause!r} in {spec!r}; expected key=value"
            )
        key, _, value = clause.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "p95_ms":
            kind, threshold_ms = "latency_p95", float(value)
        elif key == "success":
            kind, target = "success_ratio", float(value)
        else:
            options[key] = value
    if kind is None:
        raise ConfigError(
            f"SLO spec {spec!r} needs a p95_ms=<ms> or success=<ratio> clause"
        )
    known = {"window", "fast", "min", "burn", "name"}
    unknown = set(options) - known
    if unknown:
        raise ConfigError(
            f"unknown SLO clause(s) {sorted(unknown)} in {spec!r}; "
            f"expected {sorted(known)}"
        )
    kwargs: dict[str, object] = {}
    if "window" in options:
        kwargs["window_s"] = float(options["window"])
    if "fast" in options:
        kwargs["fast_window_s"] = float(options["fast"])
    if "min" in options:
        kwargs["min_samples"] = int(options["min"])
    if "burn" in options:
        kwargs["burn_rate_threshold"] = float(options["burn"])
    name = options.get("name") or ("latency_p95" if kind == "latency_p95" else "success")
    return SLObjective(
        name=name, kind=kind, threshold_ms=threshold_ms, target=target,
        **kwargs,  # type: ignore[arg-type]
    )


class _ObjectiveState:
    """Mutable evaluation state the engine keeps per objective."""

    __slots__ = (
        "objective", "breached", "breaches", "budget_exhausted",
        "seen", "bad_seen", "last",
    )

    def __init__(self, objective: SLObjective) -> None:
        self.objective = objective
        self.breached = False
        #: Completed False→True transitions (the paging signal count).
        self.breaches = 0
        self.budget_exhausted = False
        #: Cumulative items / bad items since the engine started — the
        #: run-lifetime budget, as opposed to the windowed burn rate.
        self.seen = 0
        self.bad_seen = 0
        #: The most recent evaluation (the ``snapshot()`` payload).
        self.last: dict[str, object] = {}


class SLOEngine:
    """Evaluates :class:`SLObjective` s over the live ``item_end`` stream.

    Subscribe it to a bus (or use :func:`enable_slo`).  Thread-safe: item
    events arrive from whatever thread settled the item; transition
    events are emitted after the internal lock is released, so the engine
    can safely publish onto the same bus it subscribes to.
    """

    def __init__(
        self,
        objectives: Sequence[SLObjective] | Iterable[SLObjective],
        *,
        bus: EventBus | None = None,
        clock=time.perf_counter,
    ) -> None:
        objectives = list(objectives)
        if not objectives:
            raise ConfigError("SLOEngine needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO objective names in {names}")
        self._states = [_ObjectiveState(o) for o in objectives]
        self._bus = bus
        self._clock = clock
        self._lock = threading.Lock()
        #: (ts, duration_ms, ok) samples, pruned to the longest window.
        self._samples: deque[tuple[float, float, bool]] = deque()
        self._max_window_s = max(o.window_s for o in objectives)

    @property
    def objectives(self) -> list[SLObjective]:
        return [state.objective for state in self._states]

    # -- bus subscriber ---------------------------------------------------------

    def __call__(self, event: PipelineEvent) -> None:
        if event.kind != "item_end":
            return
        payload = event.payload
        try:
            duration_ms = float(payload.get("duration_ms", 0.0))  # type: ignore[arg-type]
            ok = bool(payload.get("ok", False))
        except (TypeError, ValueError):
            return
        now = self._clock()
        with self._lock:
            self._samples.append((now, duration_ms, ok))
            while self._samples and now - self._samples[0][0] > self._max_window_s:
                self._samples.popleft()
            transitions = self._evaluate_locked(now)
        self._publish(transitions)

    # -- evaluation -------------------------------------------------------------

    def _evaluate_locked(self, now: float) -> list[tuple[str, dict[str, object]]]:
        """Re-evaluate every objective; returns the transition events due."""
        transitions: list[tuple[str, dict[str, object]]] = []
        m = metrics()
        samples = list(self._samples)
        for state in self._states:
            o = state.objective
            window = [s for s in samples if now - s[0] <= o.window_s]
            fast = [s for s in window if now - s[0] <= o.fast_window_s]
            bad = sum(1 for s in window if o.is_bad(s[1], s[2]))
            fast_bad = sum(1 for s in fast if o.is_bad(s[1], s[2]))
            budget = o.budget_fraction
            burn = (bad / len(window)) / budget if window else 0.0
            fast_burn = (fast_bad / len(fast)) / budget if fast else 0.0
            evaluation: dict[str, object] = {
                "objective": o.to_dict(),
                "samples": len(window),
                "bad": bad,
                "burn_rate": burn,
                "fast_burn_rate": fast_burn,
                "breached": state.breached,
                "breaches": state.breaches,
            }
            if o.kind == "latency_p95":
                durations = sorted(s[1] for s in window)
                p95 = _p95(durations)
                evaluation["p95_ms"] = p95
                m.gauge(f"slo.{o.name}.p95_ms").set(p95 or 0.0)
            else:
                ratio = (
                    (len(window) - bad) / len(window) if window else None
                )
                evaluation["success_ratio"] = ratio
                m.gauge(f"slo.{o.name}.success_ratio").set(
                    1.0 if ratio is None else ratio
                )
            # Run-lifetime budget: every new sample is charged exactly once
            # (the newest sample is this call's — older ones were charged
            # on their own arrival).
            state.seen += 1
            newest = samples[-1]
            if o.is_bad(newest[1], newest[2]):
                state.bad_seen += 1
            spent = (
                (state.bad_seen / state.seen) / budget if state.seen else 0.0
            )
            remaining = max(0.0, 1.0 - spent)
            evaluation["budget_remaining"] = remaining
            m.gauge(f"slo.{o.name}.burn_rate").set(burn)
            m.gauge(f"slo.{o.name}.budget_remaining").set(remaining)
            if (
                remaining <= 0.0
                and not state.budget_exhausted
                and state.seen >= o.min_samples
            ):
                state.budget_exhausted = True
                m.counter(f"slo.{o.name}.budget_exhausted").inc()
                transitions.append(("budget_exhausted", {
                    "name": o.name, "objective_kind": o.kind,
                    "bad": state.bad_seen, "seen": state.seen,
                }))
            evaluation["budget_exhausted"] = state.budget_exhausted
            breached_now = (
                len(window) >= o.min_samples
                and burn >= o.burn_rate_threshold
                and fast_burn >= o.burn_rate_threshold
            )
            if breached_now and not state.breached:
                state.breached = True
                state.breaches += 1
                m.counter(f"slo.{o.name}.breaches").inc()
                transitions.append(("slo_breach", dict(
                    name=o.name, objective_kind=o.kind,
                    burn_rate=burn, fast_burn_rate=fast_burn,
                    samples=len(window), bad=bad,
                    threshold_ms=o.threshold_ms, target=o.target,
                    **(
                        {"p95_ms": evaluation["p95_ms"]}
                        if o.kind == "latency_p95"
                        else {"success_ratio": evaluation["success_ratio"]}
                    ),
                )))
            elif state.breached and not breached_now:
                # Recovery re-arms the edge trigger; no event — dashboards
                # read the gauge, pagers only care about new excursions.
                state.breached = False
            evaluation["breached"] = state.breached
            evaluation["breaches"] = state.breaches
            m.gauge(f"slo.{o.name}.breached").set(1.0 if state.breached else 0.0)
            state.last = evaluation
        return transitions

    def _publish(self, transitions: list[tuple[str, dict[str, object]]]) -> None:
        if not transitions:
            return
        bus = self._bus if self._bus is not None else events()
        if bus is None:
            return
        for kind, payload in transitions:
            bus.emit(kind, **payload)

    # -- surfaces ---------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Per-objective health for ``/status`` and reports."""
        with self._lock:
            return {
                "objectives": [dict(state.last) for state in self._states],
                "samples": len(self._samples),
            }


def _p95(ordered: list[float]) -> float | None:
    """p95 of pre-sorted values, clamped to the observed max (small-n safe)."""
    if not ordered:
        return None
    if len(ordered) == 1:
        return ordered[0]
    return min(statistics.quantiles(ordered, n=20)[-1], ordered[-1])


_active: SLOEngine | None = None


def slo_engine() -> SLOEngine | None:
    """The engine installed by :func:`enable_slo`, if any."""
    return _active


def enable_slo(
    objectives: Sequence[SLObjective] | SLOEngine,
) -> SLOEngine:
    """Subscribe an engine for *objectives* to the (enabled) event bus.

    Implies :func:`~repro.obs.events.enable_events` — objectives are
    evaluated over ``item_end`` events, so the stream must flow.  Only
    one process-wide engine is tracked; enabling another replaces it.
    """
    global _active
    bus = enable_events()
    engine = (
        objectives if isinstance(objectives, SLOEngine)
        else SLOEngine(objectives, bus=bus)
    )
    if _active is not None:
        bus.unsubscribe(_active)
    bus.subscribe(engine)
    _active = engine
    return engine


def disable_slo() -> None:
    """Unsubscribe and drop the tracked engine (no-op when none)."""
    global _active
    if _active is not None:
        bus = events()
        if bus is not None:
            bus.unsubscribe(_active)
        _active = None
