"""Typed, subscribable pipeline event stream.

Where spans answer *how long* and metrics answer *how many*, events answer
*what happened, in order*: stage starts and ends, degradations, retries,
quarantines, sanitizations, and batch progress flow through a process-wide
:class:`EventBus` that anyone can subscribe to — an in-memory
:class:`EventLog` for tests and reports, a :class:`JsonlEventSink` for
tailing a run from another terminal, or any plain callable.

Like tracing and metrics, the stream is **off by default** and the
disabled path costs one module-global ``None`` check per emission::

    from repro import obs

    with obs.JsonlEventSink("events.jsonl") as sink:
        bus = obs.enable_events()
        bus.subscribe(sink)
        stmaker.summarize_many(trips)
        obs.disable_events()

Event kinds are the closed :data:`EVENT_KINDS` vocabulary; emitting an
unknown kind raises immediately, so producers cannot silently fork the
schema consumers parse.
"""

from __future__ import annotations

import json
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: The closed vocabulary of event kinds the pipeline emits.
EVENT_KINDS: frozenset[str] = frozenset({
    "stage_start",    # a pipeline stage (or the whole summarize) began
    "stage_end",      # ... finished; payload has duration_ms + status
    "degradation",    # a stage fallback absorbed an error
    "retry",          # summarize_many retrying a TransientError
    "quarantine",     # summarize_many gave up on an item
    "sanitization",   # input needed repair before the pipeline
    "batch_start",    # summarize_many began; payload has items
    "batch_end",      # ... finished; payload has ok/quarantined/duration_ms
    "progress",       # batch throughput heartbeat (items/s, ETA)
    "shard_start",    # a serving pool shard began; payload has shard_id/items
    "shard_end",      # ... finished; payload has ok/quarantined/duration_ms
    "shard_retry",    # supervisor handled a lost shard (retry/bisect/quarantine)
    "breaker_open",   # a circuit breaker tripped; payload has failure_rate
    "breaker_close",  # ... recovered after a successful half-open probe
    "load_shed",      # admission control rejected or degraded an intake
    "request_enqueued",  # the serving front-end queued an admitted request
    "request_done",   # ... settled it; payload has status/ok/duration_ms
    "item_end",       # one batch item settled; payload has ok/duration_ms/
                      # trace_id + the latency breakdown (feeds the SLO engine)
    "slo_breach",     # an SLO objective left its target; payload names it
    "budget_exhausted",  # an objective's error budget is fully spent
})


@dataclass(frozen=True, slots=True)
class PipelineEvent:
    """One pipeline occurrence, ordered by ``seq`` within its bus."""

    #: Monotonic sequence number, unique per bus.
    seq: int
    #: ``time.perf_counter()`` at emission — same clock as span ``start_s``.
    ts_s: float
    #: One of :data:`EVENT_KINDS`.
    kind: str
    #: Pipeline stage name when the event is stage-scoped, else ``None``.
    stage: str | None = None
    #: Trajectory the event concerns, when known.
    trajectory_id: str | None = None
    #: Kind-specific details (duration, error text, counts, ...).
    payload: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "ts_s": self.ts_s,
            "kind": self.kind,
            "stage": self.stage,
            "trajectory_id": self.trajectory_id,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PipelineEvent":
        """Rebuild an event serialized by :meth:`to_dict` (worker relays)."""
        return cls(
            seq=int(data["seq"]),  # type: ignore[arg-type]
            ts_s=float(data["ts_s"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            stage=None if data.get("stage") is None else str(data["stage"]),
            trajectory_id=(
                None if data.get("trajectory_id") is None
                else str(data["trajectory_id"])
            ),
            payload=dict(data.get("payload") or {}),  # type: ignore[arg-type]
        )


Subscriber = Callable[[PipelineEvent], None]


class EventBus:
    """Thread-safe fan-out of :class:`PipelineEvent` s to subscribers.

    Subscriber exceptions are swallowed and counted in :attr:`errors` —
    a broken sink must never take down the pipeline it is watching.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: list[Subscriber] = []
        self._seq = 0
        self.errors = 0

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register *subscriber*; returns it so it can be unsubscribed."""
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def emit(
        self,
        kind: str,
        stage: str | None = None,
        trajectory_id: str | None = None,
        **payload: object,
    ) -> PipelineEvent:
        """Build, sequence, and deliver one event."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )
        with self._lock:
            self._seq += 1
            event = PipelineEvent(
                self._seq, time.perf_counter(), kind, stage, trajectory_id, payload
            )
            subscribers = list(self._subscribers)
        self._deliver(event, subscribers)
        return event

    def _deliver(self, event: PipelineEvent, subscribers: list[Subscriber]) -> None:
        """Fan *event* out, isolating each subscriber's failures.

        One raising subscriber must neither abort the emitting pipeline
        nor starve the subscribers after it; every failure is counted in
        :attr:`errors` and the ``obs.events.subscriber_errors`` counter so
        a silently broken sink still shows up on the ops surface.
        """
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:
                with self._lock:
                    self.errors += 1
                # Imported lazily: repro.obs.metrics must stay importable
                # without this module, and the counter is only needed on
                # the (rare) failure path.
                from repro.obs.metrics import metrics

                metrics().counter("obs.events.subscriber_errors").inc()

    def relay(
        self, events, *, source: str | None = None
    ) -> list[PipelineEvent]:
        """Re-emit events recorded on another bus (the relay contract).

        The event half of the cross-process telemetry contract: a worker
        ships ``[event.to_dict() for event in log]`` and the parent folds
        them onto its own bus here.  Each event is **re-sequenced** on
        this bus (its original ``seq``/``ts_s`` come from another process'
        timeline and are preserved in the payload as ``relay_seq`` /
        ``relay_ts_s``); *source* tags the payload as ``relay_source`` so
        consumers can tell worker streams apart.  Unknown kinds raise, as
        in :meth:`emit` — relaying cannot fork the closed vocabulary.
        """
        out: list[PipelineEvent] = []
        for data in events:
            incoming = (
                data if isinstance(data, PipelineEvent)
                else PipelineEvent.from_dict(data)
            )
            if incoming.kind not in EVENT_KINDS:
                raise ValueError(
                    f"unknown event kind {incoming.kind!r}; expected one of "
                    f"{sorted(EVENT_KINDS)}"
                )
            payload = dict(incoming.payload)
            payload["relay_seq"] = incoming.seq
            payload["relay_ts_s"] = incoming.ts_s
            if source is not None:
                payload["relay_source"] = source
            with self._lock:
                self._seq += 1
                event = PipelineEvent(
                    self._seq, time.perf_counter(), incoming.kind,
                    incoming.stage, incoming.trajectory_id, payload,
                )
                subscribers = list(self._subscribers)
            self._deliver(event, subscribers)
            out.append(event)
        return out


class EventLog:
    """An in-memory subscriber that keeps every event (tests, reports)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[PipelineEvent] = []

    def __call__(self, event: PipelineEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, kind: str | None = None) -> list[PipelineEvent]:
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def counts(self) -> dict[str, int]:
        """Events per kind, for quick assertions and report roll-ups."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[PipelineEvent]:
        return iter(self.events())


class JsonlEventSink:
    """A subscriber that appends one JSON object per event to a file.

    Lines are flushed as they are written so ``tail -f events.jsonl``
    follows a live run.  Usable as a context manager; :meth:`close` is
    idempotent and events arriving after close are dropped silently.
    """

    def __init__(self, path) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self.written = 0

    def __call__(self, event: PipelineEvent) -> None:
        line = json.dumps(event.to_dict(), default=str)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_active: EventBus | None = None


def events() -> EventBus | None:
    """The active bus, or ``None`` while the event stream is disabled."""
    return _active


def enable_events(bus: EventBus | None = None) -> EventBus:
    """Install *bus* (or keep/create one) as the active event stream."""
    global _active
    if bus is not None:
        _active = bus
    elif _active is None:
        _active = EventBus()
    return _active


def disable_events() -> None:
    """Stop delivering events; emission reverts to the free no-op path."""
    global _active
    _active = None


def events_enabled() -> bool:
    return _active is not None


def emit_event(
    kind: str,
    stage: str | None = None,
    trajectory_id: str | None = None,
    **payload: object,
) -> None:
    """Emit onto the active bus; a no-op (one ``None`` test) when disabled."""
    bus = _active
    if bus is not None:
        bus.emit(kind, stage, trajectory_id, **payload)


class _NullStageScope:
    """Shared do-nothing scope returned while the stream is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStageScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_STAGE_SCOPE = _NullStageScope()

#: A per-stage duration listener: ``fn(stage, duration_s, ok)``.  Unlike a
#: bus subscriber this is context-local and always-on capable — it is how
#: :class:`~repro.resilience.LatencyBreakdown` collects per-stage time for
#: every item without requiring the event stream (or tracing) to be
#: enabled.
StageSink = Callable[[str, float, bool], None]

_stage_sink: ContextVar[StageSink | None] = ContextVar(
    "repro_obs_stage_sink", default=None
)


class stage_sink:
    """Install *fn* as the context-local stage listener for the block.

    While active, every :func:`stage_scope` in this thread/task calls
    ``fn(stage, duration_s, ok)`` on exit — even with the event stream
    disabled.  ``stage_sink(None)`` is a no-op.
    """

    __slots__ = ("_fn", "_token")

    def __init__(self, fn: StageSink | None) -> None:
        self._fn = fn

    def __enter__(self) -> StageSink | None:
        self._token = _stage_sink.set(self._fn) if self._fn is not None else None
        return self._fn

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _stage_sink.reset(self._token)
        return False


def clear_stage_sink() -> None:
    """Drop an inherited context-local stage listener (forked workers).

    The sibling of :func:`repro.obs.trace.clear_span_context`: a listener
    captured over ``fork`` would accumulate the worker's stage times into
    the *parent's* breakdown object (a copy, so the data would be lost
    twice over).
    """
    _stage_sink.set(None)


class _StageScope:
    """Emits ``stage_start`` on entry, ``stage_end`` (+duration/status) on
    exit, and feeds the context-local :class:`stage_sink` listener."""

    __slots__ = ("_bus", "_stage", "_trajectory_id", "_sink", "_start")

    def __init__(
        self,
        bus: EventBus | None,
        stage: str,
        trajectory_id: str | None,
        sink: StageSink | None = None,
    ) -> None:
        self._bus = bus
        self._stage = stage
        self._trajectory_id = trajectory_id
        self._sink = sink

    def __enter__(self) -> "_StageScope":
        if self._bus is not None:
            self._bus.emit("stage_start", self._stage, self._trajectory_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_s = time.perf_counter() - self._start
        if self._sink is not None:
            try:
                self._sink(self._stage, duration_s, exc_type is None)
            except Exception:
                pass  # a broken listener must not take down the stage
        if self._bus is not None:
            payload: dict[str, object] = {
                "duration_ms": duration_s * 1000.0,
                "status": "ok" if exc_type is None else "error",
            }
            if exc_type is not None:
                payload["error"] = f"{exc_type.__name__}: {exc}"
            self._bus.emit("stage_end", self._stage, self._trajectory_id, **payload)
        return False  # never swallow the exception


def stage_scope(stage: str, trajectory_id: str | None = None):
    """A context manager bracketing one stage with start/end events.

    Mirrors :func:`repro.obs.span`: when the stream is disabled *and* no
    context-local :class:`stage_sink` listener is installed, this returns
    a shared no-op singleton, so instrumented stages stay free by default.
    """
    bus = _active
    sink = _stage_sink.get()
    if bus is None and sink is None:
        return _NULL_STAGE_SCOPE
    return _StageScope(bus, stage, trajectory_id, sink)
