"""Cross-process telemetry aggregation: the worker-boundary contract.

A worker that cannot share memory with its parent (a
``ProcessPoolExecutor`` worker, a remote shard) still has to deliver its
telemetry.  The contract is one serializable bundle per worker:

* **metrics** — the worker records into a *fresh*
  :class:`~repro.obs.metrics.MetricsRegistry` (installed for its item loop
  via :func:`~repro.obs.metrics.scoped_metrics`); its ``snapshot()`` is a
  delta from zero that the parent folds in with
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` — an
  associative, commutative merge, so deltas may arrive in any order;
* **spans** — the worker's :class:`~repro.obs.trace.TraceCollector`
  contents, re-identified on arrival by
  :meth:`~repro.obs.trace.TraceCollector.add_batch`;
* **events** — the worker's :class:`~repro.obs.events.EventLog` contents,
  re-sequenced onto the parent bus by
  :meth:`~repro.obs.events.EventBus.relay`.

:class:`TelemetrySnapshot` carries all three across the boundary as plain
dicts (JSON- and pickle-safe); :func:`capture_telemetry` builds one on the
worker side and :func:`apply_telemetry` folds it in on the parent side.
The thread-pool shard boundary in :mod:`repro.serving.pool` already runs
the metrics half of this contract today, so the ROADMAP's process-parallel
executor only has to swap the transport, not the semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.events import EventBus, EventLog, PipelineEvent
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.trace import TraceCollector


@dataclass(slots=True)
class TelemetrySnapshot:
    """One worker's telemetry delta, as plain serializable dicts."""

    #: Identifies the producing worker (``"shard-3"``, ``"pid-4711"``).
    source: str | None = None
    metrics: MetricsSnapshot = field(default_factory=dict)
    spans: list[dict[str, object]] = field(default_factory=list)
    events: list[dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "metrics": self.metrics,
            "spans": self.spans,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TelemetrySnapshot":
        return cls(
            source=None if data.get("source") is None else str(data["source"]),
            metrics=dict(data.get("metrics") or {}),  # type: ignore[arg-type]
            spans=list(data.get("spans") or []),  # type: ignore[arg-type]
            events=list(data.get("events") or []),  # type: ignore[arg-type]
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        return cls.from_dict(json.loads(text))

    @property
    def empty(self) -> bool:
        return not (self.metrics or self.spans or self.events)


def capture_telemetry(
    *,
    registry: MetricsRegistry | None = None,
    collector: TraceCollector | None = None,
    events: EventLog | list[PipelineEvent] | None = None,
    source: str | None = None,
) -> TelemetrySnapshot:
    """Bundle a worker's sinks into one shippable snapshot.

    Every input is optional — a worker that only records metrics ships a
    metrics-only bundle.  The sinks are not cleared; the caller owns their
    lifecycle (fresh sinks per delta window is the intended shape).
    """
    event_list = list(events) if events is not None else []
    return TelemetrySnapshot(
        source=source,
        metrics=registry.snapshot() if registry is not None else {},
        spans=collector.to_dicts() if collector is not None else [],
        events=[event.to_dict() for event in event_list],
    )


def apply_telemetry(
    snapshot: TelemetrySnapshot | dict[str, object],
    *,
    registry: MetricsRegistry | None = None,
    collector: TraceCollector | None = None,
    bus: EventBus | None = None,
    graft_parent_id: int | None = None,
) -> TelemetrySnapshot:
    """Fold a worker's snapshot into the parent-side sinks.

    Only the sinks that are passed receive their half of the bundle, so a
    parent that does not trace simply drops the span batch.
    *graft_parent_id* names a live parent-side span (the batch's
    ``summarize_many`` span) that the worker's infrastructure root spans
    attach to instead of floating — see
    :meth:`~repro.obs.trace.TraceCollector.add_batch`.  Returns the
    (normalized) snapshot so callers can log what arrived.
    """
    if not isinstance(snapshot, TelemetrySnapshot):
        snapshot = TelemetrySnapshot.from_dict(snapshot)
    if registry is not None and snapshot.metrics:
        registry.merge_snapshot(snapshot.metrics)
    if collector is not None and snapshot.spans:
        collector.add_batch(snapshot.spans, graft_parent_id=graft_parent_id)
    if bus is not None and snapshot.events:
        bus.relay(snapshot.events, source=snapshot.source)
    return snapshot
