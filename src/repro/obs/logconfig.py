"""Structured logging setup shared by the CLI and library consumers.

Diagnostics go through named ``repro.*`` loggers to **stderr**, leaving
stdout to the actual command output (summary text, tables).  Verbosity
maps ``0 -> WARNING``, ``1 -> INFO``, ``>= 2 -> DEBUG`` — the CLI's
``-v``/``-vv`` flags.
"""

from __future__ import annotations

import logging
import sys

#: Marker attribute so repeated configuration replaces our handler instead
#: of stacking duplicates (or clobbering handlers installed by the host app).
_HANDLER_FLAG = "_repro_obs_handler"

LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root logger.

    Idempotent: calling again adjusts the level and stream of the handler
    installed earlier rather than adding a second one.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG

    logger = logging.getLogger("repro")
    logger.setLevel(level)

    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_FLAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        setattr(handler, _HANDLER_FLAG, True)
        handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    # Don't double-log through the root logger if the host app configured it.
    logger.propagate = False
    return logger
