"""Zero-dependency metrics registry: counters, gauges, histograms.

The pipeline reports what it does through a process-wide registry —
``metrics().counter("summarize.calls").inc()`` — that is a shared no-op
singleton until explicitly enabled, so instrumented hot paths cost one
function call and one method dispatch when observability is off.

Enable, run, snapshot::

    from repro import obs

    registry = obs.enable_metrics()
    stmaker.summarize(raw)
    print(registry.render_text())
    obs.disable_metrics()

Series names follow ``<stage>.<quantity>[_<unit>]`` — see
``docs/OBSERVABILITY.md`` for the catalogue the pipeline emits.
"""

from __future__ import annotations

import contextlib
import json
import math
import threading
from contextvars import ContextVar

#: Default histogram bucket upper bounds — tuned for millisecond latencies
#: and small counts alike (a value lands in the first bucket whose bound
#: it does not exceed).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, math.inf,
)

#: A registry snapshot: plain JSON-serializable dicts, one per series, as
#: produced by :meth:`MetricsRegistry.snapshot` and consumed by
#: :meth:`MetricsRegistry.merge_snapshot`.  A snapshot taken from a fresh
#: registry *is* a delta from zero — the cross-process telemetry contract
#: is "worker records into a fresh registry, ships ``snapshot()``, parent
#: calls ``merge_snapshot()``".
MetricsSnapshot = dict[str, dict[str, object]]


def _bounds_from_labels(labels) -> tuple[float, ...]:
    """Recover histogram bucket bounds from their snapshot labels."""
    return tuple(
        math.inf if label == "+inf" else float(label) for label in labels
    )


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are ascending upper bounds; an observation is counted in
    the first bucket whose bound is ``>=`` the value (cumulative-style
    ``le`` semantics, one count per observation).  A final ``+inf`` bound
    is appended when missing so no observation is ever lost.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None) -> None:
        bounds = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be ascending: {bounds}")
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.name = name
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _snapshot(self) -> tuple[int, float, float, float, list[int]]:
        """A mutually consistent (count, sum, min, max, counts) quintuple.

        Taken under the lock: reading the fields piecemeal from a reader
        thread while a pool worker observes would tear the snapshot (a
        count that includes an observation whose bucket increment it
        misses), which the serving concurrency suite caught.
        """
        with self._lock:
            return self.count, self.sum, self.min, self.max, list(self._counts)

    def _percentile_from(
        self, q: float, count: int, lo: float, hi: float, counts: list[int]
    ) -> float | None:
        if count == 0:
            return None
        if q == 0.0:
            return lo
        rank = q * count
        cumulative = 0.0
        lower = 0.0
        for bound, in_bucket in zip(self.buckets, counts):
            before = cumulative
            cumulative += in_bucket
            if in_bucket and cumulative >= rank:
                if bound == math.inf:
                    return hi
                estimate = lower + (bound - lower) * (rank - before) / in_bucket
                return min(max(estimate, lo), hi)
            if bound != math.inf:
                lower = bound
        return hi  # pragma: no cover - rank <= count always hits a bucket

    def percentile(self, q: float) -> float | None:
        """Estimate the *q*-quantile (``0.0 <= q <= 1.0``) from the buckets.

        Uses linear interpolation inside the bucket holding the target rank
        (the ``histogram_quantile`` estimator), clamped to the observed
        ``[min, max]`` — so a single observation reports itself exactly and
        the ``+inf`` bucket never produces an infinite estimate.  Returns
        ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        count, _, lo, hi, counts = self._snapshot()
        return self._percentile_from(q, count, lo, hi, counts)

    def bucket_counts(self) -> dict[str, int]:
        _, _, _, _, counts = self._snapshot()
        return {
            ("+inf" if bound == math.inf else f"{bound:g}"): count
            for bound, count in zip(self.buckets, counts)
        }

    def merge_dict(self, data: dict[str, object]) -> None:
        """Fold another histogram's snapshot dict into this one.

        The donor must share this histogram's bucket bounds (merging
        incompatible layouts would silently misplace observations, so it
        raises instead).  Counts and sums add, min/max take the extremes —
        an associative, commutative fold, which is what lets per-worker
        deltas arrive in any order and any grouping.
        """
        buckets: dict[str, int] = data["buckets"]  # type: ignore[assignment]
        bounds = _bounds_from_labels(buckets.keys())
        if bounds != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge bucket layout "
                f"{bounds} into {self.buckets}"
            )
        count = int(data["count"])  # type: ignore[arg-type]
        if count == 0:
            return
        total = float(data["sum"])  # type: ignore[arg-type]
        lo = float(data["min"])  # type: ignore[arg-type]
        hi = float(data["max"])  # type: ignore[arg-type]
        incoming = list(buckets.values())
        with self._lock:
            self.count += count
            self.sum += total
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi
            for i, c in enumerate(incoming):
                self._counts[i] += c

    def to_dict(self) -> dict[str, object]:
        # One snapshot for the whole dict, so count/sum/percentiles/buckets
        # describe the same moment even while workers keep observing.
        count, total, lo, hi, counts = self._snapshot()
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if count else None,
            "max": hi if count else None,
            "p50": self._percentile_from(0.50, count, lo, hi, counts),
            "p95": self._percentile_from(0.95, count, lo, hi, counts),
            "p99": self._percentile_from(0.99, count, lo, hi, counts),
            "buckets": {
                ("+inf" if bound == math.inf else f"{bound:g}"): c
                for bound, c in zip(self.buckets, counts)
            },
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use registry of named series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- cross-process aggregation ---------------------------------------------

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot *delta* into this registry.

        The contract for crossing a worker boundary (a shard thread today,
        a ``ProcessPoolExecutor`` worker tomorrow): the worker records into
        a **fresh** registry, serializes ``snapshot()`` (plain dicts, so it
        survives JSON or pickle), and the parent merges it here.  The fold
        is associative and commutative — per-worker deltas may arrive in
        any order and any grouping and the result is the same registry a
        serial run would have produced:

        * **counters** add;
        * **histograms** add bucket-wise (sum/count accumulate, min/max
          take the extremes) — bucket layouts must match;
        * **gauges** add as *signed offsets*.  A fresh worker registry's
          gauge value is its offset from zero, so disjointly-named gauges
          (the ``serving.shard.<id>.*`` convention) merge exactly; a gauge
          written by several workers under one name sums, which is why
          shared last-write-wins gauges (pool size, live rates) must be
          written on the parent registry, not inside the worker delta.

        Thread-safe: concurrent merges interleave per-series but never
        tear an individual counter/histogram update.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(float(data["value"]))  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(name).inc(float(data["value"]))  # type: ignore[arg-type]
            elif kind == "histogram":
                bounds = _bounds_from_labels(data["buckets"].keys())  # type: ignore[union-attr]
                self.histogram(name, bounds).merge_dict(data)
            else:
                raise ValueError(
                    f"unknown metric type {kind!r} for series {name!r}"
                )

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """All series as plain dicts, sorted by name (JSON-serializable)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in items}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def export(self, path) -> None:
        """Write the snapshot to *path* as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def render_text(self) -> str:
        """A human-readable one-line-per-series report."""
        lines = []
        for name, data in self.snapshot().items():
            if data["type"] == "histogram":
                quantiles = " ".join(
                    f"{key}={data[key]:.3f}" if data[key] is not None else f"{key}=-"
                    for key in ("p50", "p95", "p99")
                )
                lines.append(
                    f"{name:<40} histogram  count={data['count']:<8g} "
                    f"mean={data['mean']:<10.3f} {quantiles} "
                    f"min={data['min']} max={data['max']}"
                )
            else:
                lines.append(f"{name:<40} {data['type']:<9}  value={data['value']:g}")
        return "\n".join(lines)


class _NullMetric:
    """Accepts any recording call and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullMetrics:
    """Registry stand-in while metrics are disabled: all no-ops."""

    __slots__ = ()
    _METRIC = _NullMetric()

    def counter(self, name: str) -> _NullMetric:
        return self._METRIC

    def gauge(self, name: str) -> _NullMetric:
        return self._METRIC

    def histogram(self, name: str, buckets=None) -> _NullMetric:
        return self._METRIC

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {}


NULL_METRICS = NullMetrics()

_active: MetricsRegistry | NullMetrics = NULL_METRICS

#: Context-local registry override.  A worker that must keep its telemetry
#: separable (a shard thread recording a mergeable delta) installs its own
#: registry here via :func:`scoped_metrics`; new threads and tasks start
#: with the default ``None`` and fall through to the process-wide sink.
_scoped: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_scoped_metrics", default=None
)


def metrics() -> MetricsRegistry | NullMetrics:
    """The active registry — the no-op singleton unless enabled.

    A :func:`scoped_metrics` override on the current thread/task wins over
    the process-wide registry; instrumented call sites need not know
    whether they run serially or inside an isolated worker.
    """
    scoped = _scoped.get()
    if scoped is not None:
        return scoped
    return _active


@contextlib.contextmanager
def scoped_metrics(registry: MetricsRegistry):
    """Route this thread/task's ``metrics()`` calls into *registry*.

    The isolation half of the worker-delta contract: wrap the worker's
    item loop, then ship ``registry.snapshot()`` across the boundary and
    :meth:`MetricsRegistry.merge_snapshot` it into the parent.  The
    override is a ``ContextVar``, so sibling workers and the main thread
    are unaffected.
    """
    token = _scoped.set(registry)
    try:
        yield registry
    finally:
        _scoped.reset(token)


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install *registry* (or a fresh one) as the active metrics sink."""
    global _active
    if not isinstance(_active, MetricsRegistry) or registry is not None:
        # Explicit None test: an empty registry is falsy (it has __len__),
        # and `registry or ...` would silently swap it for a fresh one.
        _active = MetricsRegistry() if registry is None else registry
    return _active


def disable_metrics() -> None:
    """Swap the no-op registry back in."""
    global _active
    _active = NULL_METRICS


def metrics_enabled() -> bool:
    return isinstance(_active, MetricsRegistry)
