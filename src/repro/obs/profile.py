"""Profiling hooks: a cProfile context manager with a rendered report.

``stmaker summarize --profile`` wraps the whole command in
:func:`profiled`; libraries can wrap any suspect block the same way::

    from repro.obs import profiled

    with profiled(limit=15) as report:
        stmaker.summarize(raw)
    print(report.text)

Zero third-party dependencies — built on :mod:`cProfile`/:mod:`pstats`.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Iterator


class ProfileReport:
    """Filled in when the ``profiled`` block exits."""

    __slots__ = ("text", "stats")

    def __init__(self) -> None:
        self.text = ""
        self.stats: pstats.Stats | None = None

    def top_functions(self, limit: int = 10) -> list[tuple[str, int, float]]:
        """``(function, calls, cumulative_s)`` rows, heaviest first."""
        if self.stats is None:
            return []
        rows = []
        for func, (cc, nc, tt, ct, callers) in self.stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, name = func
            rows.append((f"{filename}:{lineno}({name})", nc, ct))
        rows.sort(key=lambda r: -r[2])
        return rows[:limit]


@contextmanager
def profiled(sort: str = "cumulative", limit: int = 25) -> Iterator[ProfileReport]:
    """Profile the block with cProfile; the yielded report is populated on exit.

    The report is rendered even when the block raises, so a profile of the
    work done up to a failure is never lost.
    """
    report = ProfileReport()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats(sort).print_stats(limit)
        report.stats = stats
        report.text = buffer.getvalue()
