"""ASCII rendering of the city, trajectories, and summaries.

A terminal-native stand-in for the paper's map figures (Fig. 1(a), Fig. 6):
roads render as a faint grid, the trajectory as a bold track, and the
landmarks the summary mentions as lettered markers with a legend.  Used by
the CLI demo and handy for debugging calibration and partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import GeometryError
from repro.geo import BoundingBox, GeoPoint, resample_polyline
from repro.roadnet import RoadNetwork
from repro.trajectory import RawTrajectory

_ROAD_CHAR = "."
_MAJOR_CHAR = ":"
_TRACK_CHAR = "*"


@dataclass(frozen=True, slots=True)
class AsciiCanvas:
    """A rendered character grid plus its legend lines."""

    rows: list[str]
    legend: list[str]

    def text(self) -> str:
        return "\n".join(self.rows + self.legend)


class _Grid:
    def __init__(self, bbox: BoundingBox, width: int, height: int) -> None:
        if width < 10 or height < 5:
            raise GeometryError("canvas too small to render anything useful")
        self.bbox = bbox
        self.width = width
        self.height = height
        self.cells = [[" "] * width for _ in range(height)]

    def plot(self, point: GeoPoint, char: str, overwrite: bool = True) -> None:
        lat_span = self.bbox.max_lat - self.bbox.min_lat or 1e-9
        lon_span = self.bbox.max_lon - self.bbox.min_lon or 1e-9
        col = int((point.lon - self.bbox.min_lon) / lon_span * (self.width - 1))
        row = int((self.bbox.max_lat - point.lat) / lat_span * (self.height - 1))
        if 0 <= row < self.height and 0 <= col < self.width:
            if overwrite or self.cells[row][col] == " ":
                self.cells[row][col] = char

    def rows(self) -> list[str]:
        return ["".join(row) for row in self.cells]


def render_trajectory(
    network: RoadNetwork,
    trajectory: RawTrajectory,
    mentioned: list[tuple[str, GeoPoint]] | None = None,
    width: int = 72,
    height: int = 28,
    margin_deg: float = 0.002,
) -> AsciiCanvas:
    """Render *trajectory* over the road network around its extent.

    *mentioned* pairs (name, location) — typically the summary's landmarks
    — are drawn as letters ``A, B, C, ...`` with a legend.
    """
    bbox = trajectory.bounding_box().expanded(margin_deg)
    grid = _Grid(bbox, width, height)
    projector = network.projector

    # Roads: sample each edge inside the viewport.
    for edge in network.edges():
        a = network.node(edge.u).point
        b = network.node(edge.v).point
        edge_box = BoundingBox.from_points([a, b])
        if not bbox.intersects(edge_box):
            continue
        char = _MAJOR_CHAR if int(edge.grade) <= 2 else _ROAD_CHAR
        for p in resample_polyline([a, b], 60.0, projector):
            grid.plot(p, char, overwrite=False)

    # The trajectory track.
    for p in resample_polyline(trajectory.coordinates(), 40.0, projector):
        grid.plot(p, _TRACK_CHAR)

    # Mentioned landmarks, lettered in order.
    legend = []
    for i, (name, location) in enumerate(mentioned or []):
        letter = chr(ord("A") + i % 26)
        grid.plot(location, letter)
        legend.append(f"  {letter} = {name}")
    if legend:
        legend.insert(0, "landmarks:")
    return AsciiCanvas(grid.rows(), legend)


def render_summary_map(scenario_network, trajectory, summary, landmarks) -> AsciiCanvas:
    """Convenience wrapper: render a trajectory with its summary landmarks."""
    seen: list[tuple[str, GeoPoint]] = []
    names_seen = set()
    for name in summary.mentioned_landmark_names():
        if name in names_seen:
            continue
        names_seen.add(name)
        match = next((lm for lm in landmarks if lm.name == name), None)
        if match is not None:
            seen.append((name, match.point))
    return render_trajectory(scenario_network, trajectory, mentioned=seen)
