"""Terminal visualization of trajectories and summaries."""

from repro.viz.ascii_map import AsciiCanvas, render_summary_map, render_trajectory

__all__ = ["AsciiCanvas", "render_trajectory", "render_summary_map"]
