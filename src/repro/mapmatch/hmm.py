"""Hidden-Markov-model map matching (after Newson & Krumm, SIGSPATIAL'09).

States are road-position candidates per GPS sample; emissions model GPS
noise as a zero-mean Gaussian over the perpendicular distance; transitions
penalize the difference between on-network route distance and straight-line
distance (drivers rarely detour between consecutive samples).  Viterbi
decoding yields the most probable road sequence.

Route distances between consecutive candidates are computed with bounded
Dijkstra searches launched from the distinct exit nodes of the current
candidate set, which keeps matching fast on city-length trajectories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import MapMatchError
from repro.mapmatch.candidates import Candidate, candidates_for_point
from repro.roadnet import (
    EdgeId,
    NodeId,
    RoadEdge,
    RoadNetwork,
    TrafficDirection,
    dijkstra_all,
)
from repro.trajectory.model import TrajectoryPoint


@dataclass(frozen=True, slots=True)
class MapMatchConfig:
    """HMM parameters; the defaults follow Newson & Krumm's calibration."""

    sigma_z_m: float = 15.0
    beta_m: float = 40.0
    candidate_radius_m: float = 60.0
    max_candidates: int = 5
    #: Route searches are abandoned beyond ``scale * straight_line + slack``.
    route_bound_scale: float = 3.0
    route_bound_slack_m: float = 400.0

    def __post_init__(self) -> None:
        if self.sigma_z_m <= 0.0 or self.beta_m <= 0.0:
            raise MapMatchError("sigma_z and beta must be positive")
        if self.max_candidates < 1:
            raise MapMatchError("need at least one candidate per point")


@dataclass(frozen=True, slots=True)
class MatchedPoint:
    """The decoded road position for one input sample."""

    point_index: int
    edge_id: EdgeId
    fraction: float
    distance_m: float


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Viterbi decode of a sample sequence.

    ``breaks`` lists the sample indexes where the chain had to restart
    (no candidates, or no feasible transition).
    """

    matched: list[MatchedPoint]
    breaks: list[int]

    def edge_sequence(self, network: RoadNetwork) -> list[RoadEdge]:
        """Distinct consecutive edges along the match, in travel order."""
        out: list[RoadEdge] = []
        for m in self.matched:
            if not out or out[-1].edge_id != m.edge_id:
                out.append(network.edge(m.edge_id))
        return out

    def edge_traversals(self, network: RoadNetwork) -> list[tuple[RoadEdge, float]]:
        """Edges in travel order with the distance travelled on each.

        Samples that snap to a node are ambiguous between the incident
        edges; weighting by travelled length (difference of the projected
        fractions of the first and last sample on the edge) makes such
        zero-length touches harmless to downstream feature aggregation.
        """
        # Group matched points into runs of consecutive same-edge samples.
        runs: list[list[float | RoadEdge]] = []  # [edge, first_frac, last_frac]
        for m in self.matched:
            if runs and runs[-1][0].edge_id == m.edge_id:  # type: ignore[union-attr]
                runs[-1][2] = m.fraction
            else:
                runs.append([network.edge(m.edge_id), m.fraction, m.fraction])

        # Extend adjacent runs to the node their edges share, attributing the
        # stretch between the last sample on one edge and the first sample on
        # the next to the edges actually driven.
        def node_fraction(edge: RoadEdge, node: NodeId) -> float | None:
            if node == edge.u:
                return 0.0
            if node == edge.v:
                return 1.0
            return None

        for a, b in zip(runs, runs[1:]):
            edge_a, edge_b = a[0], b[0]
            shared = {edge_a.u, edge_a.v} & {edge_b.u, edge_b.v}
            if not shared:
                continue  # discontinuous match (break); leave as observed
            node = next(iter(shared))
            frac_a = node_fraction(edge_a, node)
            frac_b = node_fraction(edge_b, node)
            if frac_a is not None:
                a[2] = frac_a
            if frac_b is not None:
                b[1] = frac_b

        return [
            (edge, abs(last - first) * edge.length_m)
            for edge, first, last in runs
        ]


class HMMMapMatcher:
    """Matches GPS sample sequences onto the road network."""

    def __init__(self, network: RoadNetwork, config: MapMatchConfig | None = None) -> None:
        self.network = network
        self.config = config or MapMatchConfig()

    def match(self, points: Sequence[TrajectoryPoint]) -> MatchResult:
        """Decode the most probable road positions for *points*.

        Raises :class:`MapMatchError` when no sample has any candidate road.
        """
        if not points:
            raise MapMatchError("cannot match an empty sample sequence")
        stages: list[tuple[int, list[Candidate]]] = []
        breaks: list[int] = []
        for i, sample in enumerate(points):
            cands = candidates_for_point(
                self.network, sample.point,
                self.config.candidate_radius_m, self.config.max_candidates,
            )
            if cands:
                stages.append((i, cands))
            else:
                breaks.append(i)
        if not stages:
            raise MapMatchError("no sample lies near any road")

        matched: list[MatchedPoint] = []
        chain_start = 0
        k = 1
        while k <= len(stages):
            if k == len(stages):
                matched.extend(self._decode(points, stages[chain_start:k]))
                break
            feasible = self._viterbi_step_feasible(
                points, stages[k - 1], stages[k]
            )
            if not feasible:
                matched.extend(self._decode(points, stages[chain_start:k]))
                breaks.append(stages[k][0])
                chain_start = k
            k += 1
        matched.sort(key=lambda m: m.point_index)
        return MatchResult(matched, sorted(set(breaks)))

    # -- internals ----------------------------------------------------------

    def _emission_logp(self, candidate: Candidate) -> float:
        z = candidate.distance_m / self.config.sigma_z_m
        return -0.5 * z * z

    def _transition_logp(self, route_m: float, straight_m: float) -> float:
        return -abs(route_m - straight_m) / self.config.beta_m

    def _route_distances(
        self,
        from_cands: list[Candidate],
        to_cands: list[Candidate],
        straight_m: float,
    ) -> list[list[float]]:
        """Route distance matrix between two candidate sets (inf = no route)."""
        network = self.network
        bound = self.config.route_bound_scale * straight_m + self.config.route_bound_slack_m

        # Exit options per from-candidate: (node, cost to reach that node).
        exits: list[list[tuple[NodeId, float]]] = []
        exit_nodes: set[NodeId] = set()
        for c in from_cands:
            edge = network.edge(c.edge_id)
            options = [(edge.v, (1.0 - c.fraction) * edge.length_m)]
            if edge.direction is TrafficDirection.TWO_WAY:
                options.append((edge.u, c.fraction * edge.length_m))
            exits.append(options)
            exit_nodes.update(node for node, _ in options)

        costs_from = {
            node: dijkstra_all(network, node, max_cost=bound) for node in exit_nodes
        }

        # Entry options per to-candidate: (node, cost from that node).
        entries: list[list[tuple[NodeId, float]]] = []
        for c in to_cands:
            edge = network.edge(c.edge_id)
            options = [(edge.u, c.fraction * edge.length_m)]
            if edge.direction is TrafficDirection.TWO_WAY:
                options.append((edge.v, (1.0 - c.fraction) * edge.length_m))
            entries.append(options)

        matrix: list[list[float]] = []
        for a, exit_opts in zip(from_cands, exits):
            row: list[float] = []
            edge_a = network.edge(a.edge_id)
            for b, entry_opts in zip(to_cands, entries):
                best = math.inf
                if a.edge_id == b.edge_id:
                    delta = b.fraction - a.fraction
                    if edge_a.direction is TrafficDirection.TWO_WAY or delta >= 0.0:
                        best = abs(delta) * edge_a.length_m
                for exit_node, exit_cost in exit_opts:
                    from_costs = costs_from[exit_node]
                    for entry_node, entry_cost in entry_opts:
                        mid = from_costs.get(entry_node)
                        if mid is None:
                            continue
                        best = min(best, exit_cost + mid + entry_cost)
                row.append(best)
            matrix.append(row)
        return matrix

    def _viterbi_step_feasible(
        self,
        points: Sequence[TrajectoryPoint],
        stage_a: tuple[int, list[Candidate]],
        stage_b: tuple[int, list[Candidate]],
    ) -> bool:
        ia, cands_a = stage_a
        ib, cands_b = stage_b
        straight = self.network.projector.distance_m(
            points[ia].point, points[ib].point
        )
        matrix = self._route_distances(cands_a, cands_b, straight)
        return any(
            cell < math.inf for row in matrix for cell in row
        )

    def _decode(
        self,
        points: Sequence[TrajectoryPoint],
        stages: list[tuple[int, list[Candidate]]],
    ) -> list[MatchedPoint]:
        """Viterbi over one unbroken chain of stages."""
        if not stages:
            return []
        first_idx, first_cands = stages[0]
        scores = [self._emission_logp(c) for c in first_cands]
        backptr: list[list[int]] = [[-1] * len(first_cands)]

        for (ia, cands_a), (ib, cands_b) in zip(stages, stages[1:]):
            straight = self.network.projector.distance_m(
                points[ia].point, points[ib].point
            )
            matrix = self._route_distances(cands_a, cands_b, straight)
            new_scores: list[float] = []
            pointers: list[int] = []
            for j, cand_b in enumerate(cands_b):
                best_score = -math.inf
                best_i = 0
                for i in range(len(cands_a)):
                    route = matrix[i][j]
                    if route == math.inf:
                        continue
                    s = scores[i] + self._transition_logp(route, straight)
                    if s > best_score:
                        best_score = s
                        best_i = i
                if best_score == -math.inf:
                    # Unreachable candidate: keep it decodable with a heavy
                    # penalty so a chain never silently loses samples.
                    best_score = max(scores) - 1e6
                    best_i = int(max(range(len(scores)), key=scores.__getitem__))
                new_scores.append(best_score + self._emission_logp(cand_b))
                pointers.append(best_i)
            scores = new_scores
            backptr.append(pointers)

        # Backtrack.
        best = int(max(range(len(scores)), key=scores.__getitem__))
        chosen = [best]
        for pointers in reversed(backptr[1:]):
            chosen.append(pointers[chosen[-1]])
        chosen.reverse()
        out = []
        for (idx, cands), pick in zip(stages, chosen):
            c = cands[pick]
            out.append(MatchedPoint(idx, c.edge_id, c.fraction, c.distance_m))
        return out


class NearestEdgeMatcher:
    """Baseline matcher: every sample snaps to its nearest edge.

    Used by the map-matching ablation benchmark; it ignores continuity and
    therefore flip-flops between parallel roads under noise.
    """

    def __init__(self, network: RoadNetwork, search_radius_m: float = 60.0) -> None:
        self.network = network
        self.search_radius_m = search_radius_m

    def match(self, points: Sequence[TrajectoryPoint]) -> MatchResult:
        if not points:
            raise MapMatchError("cannot match an empty sample sequence")
        matched = []
        breaks = []
        for i, sample in enumerate(points):
            hit = self.network.nearest_edge(sample.point, self.search_radius_m)
            if hit is None:
                breaks.append(i)
                continue
            dist, edge = hit
            from repro.geo import point_segment_distance_m

            _, fraction = point_segment_distance_m(
                sample.point,
                self.network.node(edge.u).point,
                self.network.node(edge.v).point,
                self.network.projector,
            )
            matched.append(MatchedPoint(i, edge.edge_id, fraction, dist))
        if not matched:
            raise MapMatchError("no sample lies near any road")
        return MatchResult(matched, breaks)
