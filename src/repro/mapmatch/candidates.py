"""Candidate generation for map matching."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import GeoPoint, point_segment_distance_m
from repro.roadnet import EdgeId, RoadNetwork


@dataclass(frozen=True, slots=True)
class Candidate:
    """A possible road position for one GPS sample.

    ``fraction`` locates the projection along the edge, measured from the
    edge's ``u`` endpoint toward ``v``.
    """

    edge_id: EdgeId
    fraction: float
    distance_m: float


def candidates_for_point(
    network: RoadNetwork,
    point: GeoPoint,
    radius_m: float,
    max_candidates: int,
) -> list[Candidate]:
    """The *max_candidates* nearest edges within *radius_m* of *point*."""
    hits = network.edges_near(point, radius_m)
    hits.sort(key=lambda pair: pair[0])
    out = []
    for dist, edge in hits[:max_candidates]:
        _, fraction = point_segment_distance_m(
            point, network.node(edge.u).point, network.node(edge.v).point,
            network.projector,
        )
        out.append(Candidate(edge.edge_id, fraction, dist))
    return out
