"""HMM map matching and the nearest-edge baseline."""

from repro.mapmatch.candidates import Candidate, candidates_for_point
from repro.mapmatch.hmm import (
    HMMMapMatcher,
    MapMatchConfig,
    MatchedPoint,
    MatchResult,
    NearestEdgeMatcher,
)

__all__ = [
    "Candidate",
    "candidates_for_point",
    "MapMatchConfig",
    "MatchedPoint",
    "MatchResult",
    "HMMMapMatcher",
    "NearestEdgeMatcher",
]
