"""Weighted cosine similarity between segment feature vectors (Eq. 3).

``S(TS_i, TS_{i+1})`` is the weighted cosine of the two normalized feature
vectors, affinely mapped from ``[-1, 1]`` to ``[0, 1]``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import FeatureError


def _peak_scaled(values: Sequence[float]) -> Sequence[float]:
    peak = max((abs(x) for x in values), default=0.0)
    if peak > 0.0 and math.isfinite(peak):
        return [x / peak for x in values]
    return values


def weighted_cosine_similarity(
    u: Sequence[float], v: Sequence[float], weights: Sequence[float]
) -> float:
    """Eq. 3 of the paper: ``0.5 * (weighted_cos(u, v) + 1)`` in ``[0, 1]``.

    Conventions for degenerate vectors (all features zero under the given
    weights): two zero vectors are identical (similarity 1); a zero vector
    against a non-zero one is treated as uncorrelated (cosine 0, similarity
    0.5).
    """
    if not (len(u) == len(v) == len(weights)):
        raise FeatureError(
            f"dimension mismatch: |u|={len(u)}, |v|={len(v)}, |w|={len(weights)}"
        )
    if any(w < 0.0 for w in weights):
        raise FeatureError("feature weights must be non-negative")
    # The cosine is invariant under positive rescaling of u, v, and the
    # weights; normalizing each by its peak keeps the products below out
    # of the subnormal range, where rounding is coarse enough to break
    # symmetry (w=5e-324 made S(u,v) != S(v,u) before this).
    u = _peak_scaled(u)
    v = _peak_scaled(v)
    weights = _peak_scaled(weights)
    dot = sum(w * a * b for w, a, b in zip(weights, u, v))
    norm_u = math.sqrt(sum(w * a * a for w, a in zip(weights, u)))
    norm_v = math.sqrt(sum(w * b * b for w, b in zip(weights, v)))
    if norm_u == 0.0 and norm_v == 0.0:
        cosine = 1.0
    elif norm_u == 0.0 or norm_v == 0.0:
        cosine = 0.0
    else:
        cosine = dot / (norm_u * norm_v)
        cosine = max(-1.0, min(1.0, cosine))
    return 0.5 * (cosine + 1.0)


def segment_similarities(
    vectors: Sequence[Sequence[float]], weights: Sequence[float]
) -> list[float]:
    """``S(TS_i, TS_{i+1})`` for every consecutive pair of segment vectors."""
    return [
        weighted_cosine_similarity(a, b, weights)
        for a, b in zip(vectors, vectors[1:])
    ]
