"""Core contribution: partition, feature selection, templates, STMaker."""

from repro.core.config import SummarizerConfig
from repro.core.types import (
    FeatureAssessment,
    PartitionSpan,
    PartitionSummary,
    TrajectorySummary,
)
from repro.core.similarity import segment_similarities, weighted_cosine_similarity
from repro.core.partition import (
    brute_force_k_partition,
    optimal_k_partition,
    optimal_partition,
    partition_potential,
    spans_from_boundaries,
)
from repro.core.selection import (
    FeatureSelector,
    PartitionAssessment,
    moving_irregular_rate,
    routing_feature_distance,
    routing_irregular_rate,
)
from repro.core.templates import (
    number_word,
    partition_sentence,
    phrase_for,
    pluralize,
    summary_text,
)
from repro.core.summarizer import STMaker
from repro.core.group import GroupMember, GroupSummarizer, GroupSummary
from repro.core.store import FeaturePredicate, SummaryStore
from repro.core.persistence import (
    load_stmaker,
    save_stmaker,
    stmaker_from_dict,
    stmaker_to_dict,
)

__all__ = [
    "SummarizerConfig",
    "PartitionSpan",
    "FeatureAssessment",
    "PartitionSummary",
    "TrajectorySummary",
    "weighted_cosine_similarity",
    "segment_similarities",
    "optimal_partition",
    "optimal_k_partition",
    "brute_force_k_partition",
    "partition_potential",
    "spans_from_boundaries",
    "routing_feature_distance",
    "routing_irregular_rate",
    "moving_irregular_rate",
    "FeatureSelector",
    "PartitionAssessment",
    "number_word",
    "pluralize",
    "phrase_for",
    "partition_sentence",
    "summary_text",
    "STMaker",
    "GroupSummarizer",
    "GroupSummary",
    "GroupMember",
    "SummaryStore",
    "FeaturePredicate",
    "stmaker_to_dict",
    "stmaker_from_dict",
    "save_stmaker",
    "load_stmaker",
]
