"""Core result types: partitions, feature assessments, summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PartitionError
from repro.features.base import FeatureKind
from repro.resilience.degradation import DegradationReport


@dataclass(frozen=True, slots=True)
class PartitionSpan:
    """One trajectory partition: an inclusive range of segment indexes.

    A span covering segments ``start_seg .. end_seg`` runs from symbolic
    landmark index ``start_seg`` to landmark index ``end_seg + 1``.
    """

    start_seg: int
    end_seg: int

    def __post_init__(self) -> None:
        if self.start_seg < 0 or self.end_seg < self.start_seg:
            raise PartitionError(
                f"invalid span: segments {self.start_seg}..{self.end_seg}"
            )

    @property
    def segment_count(self) -> int:
        return self.end_seg - self.start_seg + 1

    @property
    def start_landmark_index(self) -> int:
        """Index of the span's source landmark in the symbolic trajectory."""
        return self.start_seg

    @property
    def end_landmark_index(self) -> int:
        """Index of the span's destination landmark in the symbolic trajectory."""
        return self.end_seg + 1

    def segment_indexes(self) -> range:
        return range(self.start_seg, self.end_seg + 1)


@dataclass(frozen=True, slots=True)
class FeatureAssessment:
    """One feature's observed-vs-regular comparison on one partition."""

    key: str
    kind: FeatureKind
    #: Representative observed value (e.g. mean speed, total stay count).
    observed: float
    #: Regular/expected value from history (popular route or feature map).
    regular: float
    #: Irregular rate Γ_f(TP); the selection criterion.
    irregular_rate: float
    #: Extraction by-products the templates may embed (names, places, ...).
    extras: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class PartitionSummary:
    """The summary of one trajectory partition."""

    span: PartitionSpan
    source_name: str
    destination_name: str
    assessments: list[FeatureAssessment]
    selected: list[FeatureAssessment]
    sentence: str


@dataclass(frozen=True, slots=True)
class TrajectorySummary:
    """The full summary of a trajectory: text plus per-partition detail."""

    trajectory_id: str
    text: str
    partitions: list[PartitionSummary]
    #: Which fallbacks (if any) the pipeline needed to produce this summary;
    #: empty for a pristine run.  See ``docs/ROBUSTNESS.md``.
    degradation: DegradationReport = field(default_factory=DegradationReport)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def selected_feature_keys(self) -> set[str]:
        """Keys of every feature mentioned anywhere in the summary."""
        return {
            assessment.key
            for partition in self.partitions
            for assessment in partition.selected
        }

    def mentioned_landmark_names(self) -> list[str]:
        """Source/destination landmark names in reading order."""
        names = []
        for partition in self.partitions:
            if not names or names[-1] != partition.source_name:
                names.append(partition.source_name)
            names.append(partition.destination_name)
        return names
