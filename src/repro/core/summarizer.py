"""STMaker: the end-to-end partition-and-summarization facade.

``STMaker.train`` learns the historical knowledge (transfer network for
popular routes, historical feature map for regular moving behaviour) from a
training corpus of raw trajectories; ``STMaker.summarize`` then runs the
full pipeline of Fig. 3 on a single trajectory:

1. calibrate the raw trajectory into a symbolic trajectory;
2. extract routing and moving features per segment;
3. partition the symbolic trajectory (CRF potential + dynamic programming);
4. select the most irregular features per partition;
5. realize the summary text from the templates.
"""

from __future__ import annotations

from typing import Iterable

from repro.calibration import AnchorCalibrator, CalibrationConfig
from repro.core.config import SummarizerConfig
from repro.core.partition import optimal_k_partition, optimal_partition
from repro.core.selection import FeatureSelector
from repro.core.similarity import segment_similarities
from repro.core.templates import partition_sentence, summary_text
from repro.core.types import PartitionSpan, PartitionSummary, TrajectorySummary
from repro.exceptions import CalibrationError, PartitionError
from repro.features import (
    FeaturePipeline,
    FeatureRegistry,
    SegmentFeatures,
    default_registry,
    normalized_vectors,
)
from repro.landmarks import LandmarkIndex
from repro.obs import metrics, span, timed_span
from repro.roadnet import RoadNetwork
from repro.routes import HistoricalFeatureMap, PopularRouteMiner, TransferNetwork
from repro.trajectory import RawTrajectory, SymbolicTrajectory


class STMaker:
    """Summarizes raw trajectories into short descriptive texts."""

    def __init__(
        self,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        transfers: TransferNetwork,
        feature_map: HistoricalFeatureMap,
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
        pipeline: FeaturePipeline | None = None,
    ) -> None:
        self.network = network
        self.landmarks = landmarks
        self.transfers = transfers
        self.feature_map = feature_map
        self.config = config or SummarizerConfig()
        self.registry = registry or default_registry()
        self.calibrator = calibrator or AnchorCalibrator(landmarks)
        self.pipeline = pipeline or FeaturePipeline(network, landmarks, self.registry)
        self.popular_routes = PopularRouteMiner(
            transfers, min_support=self.config.popular_route_min_support
        )
        self.selector = FeatureSelector(
            self.registry, self.config, self.pipeline,
            self.popular_routes, feature_map, landmarks,
        )

    # -- training -----------------------------------------------------------------

    @classmethod
    def train(
        cls,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        training: Iterable[RawTrajectory],
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
        calibration_config: CalibrationConfig | None = None,
    ) -> "STMaker":
        """Build an STMaker whose historical knowledge comes from *training*.

        Every training trajectory is calibrated; its landmark transitions
        feed the transfer network (popular routes) and its per-segment
        moving features feed the historical feature map.  Trajectories that
        fail calibration (too far from every landmark) are skipped — real
        GPS corpora always contain some junk.
        """
        registry = registry or default_registry()
        calibrator = calibrator or AnchorCalibrator(landmarks, calibration_config)

        def calibrated() -> Iterable[tuple[RawTrajectory, SymbolicTrajectory]]:
            for raw in training:
                try:
                    yield raw, calibrator.calibrate(raw)
                except CalibrationError:
                    continue  # junk trajectory: real corpora contain them too

        return cls.train_calibrated(
            network, landmarks, calibrated(),
            config=config, registry=registry, calibrator=calibrator,
        )

    @classmethod
    def train_calibrated(
        cls,
        network: RoadNetwork,
        landmarks: LandmarkIndex,
        training: Iterable[tuple[RawTrajectory, SymbolicTrajectory]],
        config: SummarizerConfig | None = None,
        registry: FeatureRegistry | None = None,
        calibrator: AnchorCalibrator | None = None,
    ) -> "STMaker":
        """Like :meth:`train`, for trajectories already calibrated upstream."""
        registry = registry or default_registry()
        pipeline = FeaturePipeline(network, landmarks, registry)
        transfers = TransferNetwork()
        feature_map = HistoricalFeatureMap()
        n_trajectories = 0
        n_segments = 0
        with span("train"):
            for raw, symbolic in training:
                transfers.add_trajectory(symbolic)
                n_trajectories += 1
                for segment in symbolic.segments():
                    values, _ = pipeline.extract_moving(raw, segment)
                    feature_map.add_observation(
                        segment.start_landmark, segment.end_landmark, values
                    )
                    n_segments += 1
        m = metrics()
        m.counter("train.trajectories").inc(n_trajectories)
        m.counter("train.segments").inc(n_segments)
        return cls(
            network, landmarks, transfers, feature_map,
            config=config, registry=registry, calibrator=calibrator,
            pipeline=pipeline,
        )

    def with_config(self, config: SummarizerConfig) -> "STMaker":
        """A sibling STMaker sharing all trained state but using *config*.

        Cheap: the historical structures are shared, not copied.  Used by
        the parameter-sweep experiments (Fig. 10).
        """
        return STMaker(
            self.network, self.landmarks, self.transfers, self.feature_map,
            config=config, registry=self.registry, calibrator=self.calibrator,
            pipeline=self.pipeline,
        )

    # -- summarization ---------------------------------------------------------------

    def summarize(self, raw: RawTrajectory, k: int | None = None) -> TrajectorySummary:
        """Summarize one raw trajectory.

        With ``k=None`` the CRF-optimal partition is used (Sec. IV-C);
        otherwise the trajectory is split into exactly ``k`` partitions
        (Sec. IV-D).  A requested ``k`` larger than the number of segments
        is clamped — the finest possible granularity is one partition per
        segment.
        """
        with timed_span(
            "summarize", trajectory_id=raw.trajectory_id, k=k
        ) as timer:
            symbolic = self.calibrator.calibrate(raw)
            summary = self.summarize_calibrated(raw, symbolic, k=k)
        m = metrics()
        m.counter("summarize.calls").inc()
        m.histogram("summarize.latency_ms").observe(timer.ms)
        m.histogram(
            "summarize.partitions", buckets=(1, 2, 3, 5, 8, 13, 21)
        ).observe(summary.partition_count)
        return summary

    def summarize_calibrated(
        self,
        raw: RawTrajectory,
        symbolic: SymbolicTrajectory,
        k: int | None = None,
    ) -> TrajectorySummary:
        """Summarize a trajectory whose calibration is already available."""
        segment_features = self.pipeline.extract(raw, symbolic)
        spans = self.partition(symbolic, segment_features, k=k)
        partitions = []
        for i, part_span in enumerate(spans):
            partitions.append(
                self._summarize_partition(symbolic, segment_features, part_span, i == 0)
            )
        return TrajectorySummary(
            raw.trajectory_id, summary_text(partitions), partitions
        )

    def partition(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        k: int | None = None,
    ) -> list[PartitionSpan]:
        """The partition step alone (useful for analysis and tests)."""
        n_segments = len(segment_features)
        if n_segments != symbolic.segment_count:
            raise PartitionError(
                f"{n_segments} feature rows for {symbolic.segment_count} segments"
            )
        with span("partition", segments=n_segments, k=k):
            if n_segments == 1:
                return [PartitionSpan(0, 0)]
            vectors = normalized_vectors(segment_features, self.registry)
            weights = [self.config.weight(key) for key in self.registry.keys()]
            similarities = segment_similarities(vectors.tolist(), weights)
            boundary_scores = [
                self.config.ca
                * self.landmarks.get(symbolic[i + 1].landmark).significance
                for i in range(n_segments - 1)
            ]
            if k is None:
                return optimal_partition(similarities, boundary_scores)
            k = max(1, min(k, n_segments))
            return optimal_k_partition(similarities, boundary_scores, k)

    # -- internals ----------------------------------------------------------------------

    def _summarize_partition(
        self,
        symbolic: SymbolicTrajectory,
        segment_features: list[SegmentFeatures],
        part_span: PartitionSpan,
        is_first: bool,
    ) -> PartitionSummary:
        assessment = self.selector.assess(symbolic, segment_features, part_span)
        with span("realize", selected=len(assessment.selected)):
            source = self.landmarks.get(
                symbolic[part_span.start_landmark_index].landmark
            ).name
            destination = self.landmarks.get(
                symbolic[part_span.end_landmark_index].landmark
            ).name
            sentence = partition_sentence(
                source, destination, assessment.selected, self.registry, is_first
            )
        metrics().counter("realize.sentences").inc()
        return PartitionSummary(
            part_span, source, destination,
            assessment.assessments, assessment.selected, sentence,
        )
